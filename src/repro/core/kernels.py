"""Batched estimator kernels over the array-backed overlay twin.

Every estimator of the paper is a random-walk or gossip process; this
module re-expresses their inner loops as data-parallel vector operations
over :class:`~repro.overlay.arraygraph.ArrayOverlayGraph` flat arrays, the
shape a later numba/GPU backend can adopt without an algorithm rewrite:

* :func:`advance_walkers` — thousands of Sample&Collide continuous-time
  timer walkers advanced in lock step.  Each step draws one exponential
  block (the TTL decrement ``Exp(1)/deg``) and one uniform block (the
  neighbour selection, scaled by the degree vector) for the whole frontier,
  then *compacts* the frontier so late rounds with few survivors cost
  narrow — not batch-width — array operations.
* :func:`collision_cutoff` — vectorized pairwise collision counting: a
  stable argsort turns each draw's number of earlier equal draws into a
  rank inside its sorted run, and the running sum of those ranks is exactly
  the serial loop's pairwise-with-multiplicity collision count.
* :func:`sample_collide_sweep` — the full Sample&Collide sampling loop
  (analytically sized batches, adaptive top-up, cutoff at ``l``
  collisions) built from the two kernels above.
* :func:`gossip_spread_kernel` / :func:`bfs_frontier_distances` — the
  HopsSampling spread and the oracle-distance BFS as frontier-array
  kernels.

**RNG-lineage caveat** (docs/KERNELS.md): the kernels draw the same
*distributions* as the serial reference but consume generator output in a
different order and quantity (whole pre-drawn blocks per step instead of
per-walk draws), so array-backend estimates are not bit-identical to dict
-backend ones.  They are exchangeable samples of the same estimator law —
the property ``tests/core/test_kernel_distributions.py`` verifies with
KS/bootstrap-CI gates against ``baselines/kernel_tolerances.json``.

Kernel work is profiled under the ``kernel`` phase when a recorder is
installed (the trial runtime wires :func:`set_phase_recorder` to
:func:`repro.runtime.obs.phase`); outside the runtime the hook is a no-op,
keeping this module free of any runtime-layer import.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from ..overlay.arraygraph import ArrayOverlayGraph
from .base import EstimatorError
from .birthday import sample_collide_estimate

__all__ = [
    "GRAPH_BACKENDS",
    "advance_walkers",
    "bfs_frontier_distances",
    "collision_cutoff",
    "gossip_spread_kernel",
    "kernel_phase",
    "sample_collide_sweep",
    "set_phase_recorder",
]

#: Graph representations a kernel-capable estimator can run on: the
#: dict-of-dicts reference, or the batched-kernel array twin.
GRAPH_BACKENDS = ("dict", "array")


#: Optional phase recorder — ``repro.runtime.trials`` installs
#: ``repro.runtime.obs.phase`` here so kernel time shows up as the
#: ``kernel`` phase in chunk profiles without this module importing the
#: runtime layer (which imports this package).
_PHASE_RECORDER: Optional[Callable[[str], Iterator[None]]] = None


def set_phase_recorder(recorder: Optional[Callable[[str], Iterator[None]]]) -> None:
    """Install (or clear, with ``None``) the ``kernel``-phase recorder."""
    global _PHASE_RECORDER
    _PHASE_RECORDER = recorder


@contextmanager
def kernel_phase() -> Iterator[None]:
    """Attribute the enclosed block to the ``kernel`` phase, if wired."""
    if _PHASE_RECORDER is None:
        yield
    else:
        with _PHASE_RECORDER("kernel"):
            yield


# ----------------------------------------------------------------------
# Sample&Collide: batched continuous-time timer walkers
# ----------------------------------------------------------------------


def advance_walkers(
    graph: ArrayOverlayGraph,
    init_pos: int,
    count: int,
    timer: float,
    rng: np.random.Generator,
    max_hops: int = 10_000,
) -> Tuple[np.ndarray, np.ndarray]:
    """Advance ``count`` timer walks from row ``init_pos``; returns
    ``(final_positions, hops)``.

    Protocol semantics match :class:`~repro.core.sampling.UniformWalkSampler`
    exactly: the initiator forwards ``T`` to a uniform neighbour without
    decrementing (isolated initiator ⇒ the walk ends on it with 0 hops);
    every visited node then decrements by ``Exp(1)/deg`` — infinite at a
    dead end, which absorbs the walk — and forwards while ``T > 0``; walks
    exceeding ``max_hops`` stop in place.

    Each loop iteration handles one hop for the whole surviving frontier:
    an exponential block scaled by the cached inverse-degree gather
    decrements every walker's TTL (``inf`` rows absorb dead-end walks), a
    uniform block drawn *only for the survivors* selects their next
    neighbour, and the frontier arrays are compacted to those survivors.
    All live walkers advance in lock step, so a walker's hop count is
    simply the round it stopped in — written once at stop time instead of
    incremented across the frontier every round.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    indptr, indices = graph.indptr, graph.indices
    final_pos = np.full(count, init_pos, dtype=np.int64)
    hops = np.zeros(count, dtype=np.int64)
    if count == 0:
        return final_pos, hops
    start0 = int(indptr[init_pos])
    deg0 = int(indptr[init_pos + 1]) - start0
    if deg0 == 0:
        return final_pos, hops

    with kernel_phase():
        inv_deg = graph.inv_degrees()
        first = (rng.random(count) * deg0).astype(np.int64)
        cur = indices[start0 + first]
        ids = np.arange(count, dtype=np.int64)
        budget = np.full(count, float(timer))
        hop_round = 1
        while True:
            budget -= rng.standard_exponential(ids.size) * inv_deg[cur]
            cont = budget > 0.0
            if hop_round >= max_hops:
                cont[:] = False
            stopped = ids[~cont]
            final_pos[stopped] = cur[~cont]
            hops[stopped] = hop_round
            ids = ids[cont]
            if not ids.size:
                break
            cur = cur[cont]
            starts = indptr[cur]
            deg = indptr[cur + 1] - starts
            offsets = (rng.random(ids.size) * deg).astype(np.int64)
            cur = indices[starts + offsets]
            budget = budget[cont]
            hop_round += 1
    return final_pos, hops


def collision_cutoff(samples: np.ndarray, l: int) -> Tuple[int, int, int]:
    """Pairwise collision count over the draw-ordered ``samples`` prefix.

    Returns ``(draws_used, collisions, distinct)`` where ``draws_used`` is
    the length of the shortest prefix whose cumulative pairwise collision
    count reaches ``l`` (the whole array when it never does — callers
    check ``collisions >= l``), ``collisions`` that prefix's count, and
    ``distinct`` its number of distinct samples.

    The count is pairwise *with multiplicity*: a draw equal to ``k``
    earlier draws contributes ``k``.  Vectorized via a stable argsort —
    within each run of equal values the stable order preserves draw order,
    so a draw's rank inside its run *is* its number of earlier copies.
    """
    n = int(samples.shape[0])
    if n == 0:
        return 0, 0, 0
    order = np.argsort(samples, kind="stable")
    sorted_s = samples[order]
    new_run = np.empty(n, dtype=bool)
    new_run[0] = True
    np.not_equal(sorted_s[1:], sorted_s[:-1], out=new_run[1:])
    run_starts = np.nonzero(new_run)[0]
    run_ids = np.cumsum(new_run) - 1
    ranks = np.arange(n, dtype=np.int64) - run_starts[run_ids]
    occ = np.empty(n, dtype=np.int64)
    occ[order] = ranks
    cum = np.cumsum(occ)
    reached = np.nonzero(cum >= l)[0]
    cut = int(reached[0]) + 1 if reached.size else n
    collisions = int(cum[cut - 1])
    distinct = int(np.count_nonzero(occ[:cut] == 0))
    return cut, collisions, distinct


def sample_collide_sweep(
    graph: ArrayOverlayGraph,
    init_pos: int,
    l: int,
    timer: float,
    rng: np.random.Generator,
    hint: int,
    max_hops: int = 10_000,
) -> Tuple[float, int, int, int, int]:
    """The full Sample&Collide sampling loop on the array backend.

    Draws walker batches sized by the analytic prediction
    ``sqrt(2·l·N̂)``, scans for the ``l``-th pairwise collision, and
    returns ``(value, draws, collisions, distinct, walk_hops)``.  Unlike
    the serial estimator (first batch at 60% of the prediction), the first
    batch covers 115% of it: over-drawing costs a slightly wider vector
    op instead of a second kernel dispatch, the ``(cut, collisions)`` law
    is batch-size invariant (samples are i.i.d. regardless of batching),
    and only the walks before the cutoff are charged to ``walk_hops`` —
    unconsumed pre-drawn walks model messages never sent.  Top-up batches
    sized from the running point estimate cover bad hints.
    """
    samples: List[np.ndarray] = []
    walk_hops: List[np.ndarray] = []
    batch = max(int(1.15 * math.sqrt(2.0 * l * max(hint, 1))), 16)
    guard = 0
    while True:
        guard += 1
        if guard > 10_000:  # pragma: no cover - defensive
            raise EstimatorError("sample_collide: failed to accumulate collisions")
        pos, hops = advance_walkers(graph, init_pos, batch, timer, rng, max_hops)
        samples.append(pos)
        walk_hops.append(hops)
        drawn = np.concatenate(samples) if len(samples) > 1 else samples[0]
        with kernel_phase():
            cut, collisions, distinct = collision_cutoff(drawn, l)
        if collisions >= l:
            break
        n_guess = max(distinct, 1)
        if collisions > 0:
            n_guess = max(
                n_guess,
                int(sample_collide_estimate(max(int(drawn.shape[0]), 2), collisions)),
            )
        remaining = math.sqrt(2.0 * l * n_guess) - int(drawn.shape[0])
        batch = max(int(remaining * 1.2), 16)
    hops_all = np.concatenate(walk_hops) if len(walk_hops) > 1 else walk_hops[0]
    total_hops = int(hops_all[:cut].sum())
    value = sample_collide_estimate(cut, collisions)
    return value, cut, collisions, distinct, total_hops


# ----------------------------------------------------------------------
# HopsSampling: gossip spread and BFS as frontier kernels
# ----------------------------------------------------------------------


def gossip_spread_kernel(
    graph: ArrayOverlayGraph,
    init_pos: int,
    gossip_to: int,
    gossip_for: int,
    gossip_until: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, int, int]:
    """The §III-B push-gossip spread over the array twin.

    Same per-round semantics as the reference spread in
    :mod:`repro.core.hops_sampling` (fanout copies to uniform neighbours,
    ``gossip_for`` active rounds, duplicate-receipt re-activation up to
    ``gossip_until`` times, first-infection-minimum hop recording), with
    every round one set of frontier-array operations.  Returns
    ``(hops, spread_messages, rounds)`` with ``hops[pos] = -1`` for nodes
    the spread never reached.
    """
    n = graph.n
    hops = np.full(n, -1, dtype=np.int64)
    hops[init_pos] = 0
    active = np.array([init_pos], dtype=np.int64)
    rounds_left = np.zeros(n, dtype=np.int64)
    rounds_left[init_pos] = gossip_for
    regossip_left = np.full(n, gossip_until, dtype=np.int64)
    spread_messages = 0
    rounds = 0
    big = np.iinfo(np.int64).max

    with kernel_phase():
        while active.size:
            rounds += 1
            senders = np.repeat(active, gossip_to)
            targets = graph.sample_neighbors(senders, rng)
            ok = targets >= 0
            spread_messages += int(ok.sum())
            senders, targets = senders[ok], targets[ok]
            cand = hops[senders] + 1
            tmp = np.full(n, big, dtype=np.int64)
            np.minimum.at(tmp, targets, cand)
            hit = tmp < big
            newly = hit & (hops < 0)
            hops[newly] = tmp[newly]
            better = hit & (hops >= 0) & (tmp < hops)
            hops[better] = tmp[better]
            dup = hit & ~newly & (rounds_left <= 0) & (regossip_left > 0)
            regossip_left[dup] -= 1
            rounds_left[active] -= 1
            rounds_left[newly] = gossip_for
            rounds_left[dup] = np.maximum(rounds_left[dup], 1)
            active = np.nonzero(rounds_left > 0)[0]

    return hops, spread_messages, rounds


def bfs_frontier_distances(graph: ArrayOverlayGraph, source_pos: int) -> np.ndarray:
    """Hop distances from ``source_pos`` (``-1``: unreachable), frontier BFS.

    Unlike :meth:`CsrView.bfs_distances` (a Python loop per frontier
    node), neighbour expansion here is a single gather per level: repeat
    each frontier row's start by its degree and add a per-row ramp to
    enumerate every incident slot at C speed.
    """
    indptr, indices = graph.indptr, graph.indices
    n = graph.n
    dist = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return dist
    with kernel_phase():
        dist[source_pos] = 0
        frontier = np.array([source_pos], dtype=np.int64)
        d = 0
        while frontier.size:
            d += 1
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            bases = np.repeat(starts, counts)
            ramp = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            flat = indices[bases + ramp]
            fresh = flat[dist[flat] < 0]
            if fresh.size == 0:
                break
            fresh = np.unique(fresh)
            dist[fresh] = d
            frontier = fresh
    return dist
