"""Identifier-density size estimators — the structured-overlay class.

The paper's introduction contrasts its three *generally applicable*
candidates with algorithms for structured (DHT-style) overlays that
"exploit the fact that node identifiers are uniformly assigned at random.
The size estimation may then be directly inferred from the observation of
the density of identifiers that fall into a given subset of the global
identifier space" (§I, citing [17], [11], [13], [14]).  The comparative
study excludes them because "their applicability is strictly limited to
those identifier-based overlay networks" — but a library user on a Pastry/
Chord-like overlay will reach for exactly these, so we implement the class
as an optional extra, with its substrate.

Substrate: :class:`IdentifierSpace` assigns each overlay node an id drawn
uniformly from the unit circle ``[0, 1)`` (the standard DHT abstraction of
a hashed 128-bit id).

Estimators:

* :class:`IntervalDensityEstimator` — measure the arc length covered by the
  ``k`` nearest ids around the initiator's position; with uniform ids the
  expected arc for ``k`` of ``N`` nodes is ``k/N``, giving
  ``N̂ = (k−1)/arc`` (the ``k−1`` makes the inverse-arc estimator unbiased
  for uniform order statistics, Kostoulas et al.'s "interval density"
  approach).
* :class:`NeighborDistanceEstimator` — the Viceroy-style rule the paper
  cites for parameter setting: the distance ``d`` from a node to its
  successor id satisfies ``E[d] = 1/N``, so averaging ``s`` successive gaps
  yields ``N̂ = s / Σ gaps``.

Cost model: both need only lookups in the initiator's routing
neighbourhood; we charge one WALK message per id consulted (the DHT lookup
traffic a real deployment would pay).

Caveat mirrored from the paper: these estimators *assume id uniformity* —
an adversarial or skewed id assignment biases them arbitrarily, which is
exactly why the study's three candidates avoid the assumption.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..overlay.graph import OverlayGraph
from ..sim.messages import MessageKind, MessageMeter
from ..sim.rng import RngHub, RngLike, as_generator
from .base import Estimate, EstimatorError, SizeEstimator

__all__ = [
    "ID_TRANSFORMS",
    "IdSpaceSpec",
    "IdentifierSpace",
    "IntervalDensityEstimator",
    "NeighborDistanceEstimator",
    "make_transform",
]


#: transform name -> factory(**params) -> position map on the unit circle.
#: The declarative vocabulary of :class:`IdSpaceSpec`: "uniform" is the
#: honest DHT assignment (identity), "power" concentrates density near 0
#: (``pos**exponent`` — the idspace ablation's skewed/adversarial join
#: pattern).  Register new names here to open new id-assignment workloads.
ID_TRANSFORMS: Dict[str, Callable[..., Callable[[float], float]]] = {
    "uniform": lambda: (lambda pos: pos),
    "power": lambda exponent=3.0: (lambda pos, _e=float(exponent): pos**_e),
}


def make_transform(kind: str, **params: Any) -> Callable[[float], float]:
    """Instantiate a registered id transform by name."""
    try:
        factory = ID_TRANSFORMS[kind]
    except KeyError:
        raise ValueError(
            f"unknown id transform {kind!r}; have {sorted(ID_TRANSFORMS)}"
        ) from None
    return factory(**params)


class IdentifierSpace:
    """Uniform node ids on the unit circle, kept in sync with an overlay.

    Ids are assigned lazily: any node present in the overlay gets a
    persistent uniform id on first access; departed nodes drop out of the
    sorted index on :meth:`refresh`.
    """

    def __init__(self, graph: OverlayGraph, rng: RngLike = None) -> None:
        self.graph = graph
        self._rng = as_generator(rng, "idspace")
        self._ids: Dict[int, float] = {}
        self._sorted: List[float] = []
        self._sorted_nodes: List[int] = []
        self._stale = True

    def id_of(self, node: int) -> float:
        """The node's position on the unit circle (assigned on demand)."""
        if node not in self.graph:
            raise EstimatorError(f"idspace: node {node} is not alive")
        pos = self._ids.get(node)
        if pos is None:
            pos = float(self._rng.random())
            self._ids[node] = pos
            self._stale = True
        return pos

    def with_transform(self, fn: Callable[[float], float]) -> "IdentifierSpace":
        """A copy of this space with ``fn`` applied to every node's id.

        Materializes an id for every alive node first (drawing from this
        space's generator in ``graph.nodes()`` order), then maps each
        position through ``fn`` — the public route to non-uniform id
        assignments (skewed/adversarial join patterns) that previously
        required rewriting the private ``_ids`` dict.  ``fn`` must map
        ``[0, 1)`` into ``[0, 1)``; the clone shares this space's
        generator, so nodes joining later continue the same stream.
        """
        clone = IdentifierSpace(self.graph, rng=self._rng)
        for u in self.graph.nodes():
            clone._ids[u] = float(fn(self.id_of(u)))
        clone._stale = True
        return clone

    def refresh(self) -> None:
        """Rebuild the sorted id index against the current membership."""
        alive = [(self.id_of(u), u) for u in self.graph.nodes()]
        alive.sort()
        self._sorted = [p for p, _ in alive]
        self._sorted_nodes = [u for _, u in alive]
        self._stale = False

    @property
    def size(self) -> int:
        """Number of alive, id-assigned nodes in the current index."""
        if self._stale:
            self.refresh()
        return len(self._sorted)

    def arc_of_k_nearest(self, center: float, k: int) -> float:
        """Circular arc length spanned by the ``k`` ids nearest ``center``.

        "Nearest" is by circular distance; the returned arc is the span
        from the leftmost to the rightmost of those ids, measured the short
        way around through ``center``.
        """
        if self._stale:
            self.refresh()
        n = len(self._sorted)
        if k < 1:
            raise ValueError("k must be >= 1")
        if k > n:
            raise EstimatorError(f"idspace: asked for {k} ids, only {n} alive")
        if k == n:
            return 1.0
        # Gather k nearest by walking outward from the insertion point.
        idx = bisect.bisect_left(self._sorted, center % 1.0)
        lo, hi = idx - 1, idx  # candidates on each side (circular)
        chosen: List[float] = []
        for _ in range(k):
            lo_pos = self._sorted[lo % n]
            hi_pos = self._sorted[hi % n]
            d_lo = (center - lo_pos) % 1.0
            d_hi = (hi_pos - center) % 1.0
            if d_lo <= d_hi:
                chosen.append(-d_lo)
                lo -= 1
            else:
                chosen.append(d_hi)
                hi += 1
        return max(chosen) - min(chosen) if len(chosen) > 1 else abs(chosen[0])

    def successor_gaps(self, node: int, count: int) -> List[float]:
        """Circular gaps between ``count`` successive ids starting at
        ``node``'s position (the DHT successor-list view)."""
        if self._stale:
            self.refresh()
        n = len(self._sorted)
        if count < 1:
            raise ValueError("count must be >= 1")
        if count >= n:
            raise EstimatorError(
                f"idspace: {count} successor gaps need > {count} alive nodes"
            )
        start = self._sorted_nodes.index(node)
        gaps = []
        for i in range(count):
            a = self._sorted[(start + i) % n]
            b = self._sorted[(start + i + 1) % n]
            gaps.append((b - a) % 1.0)
        return gaps


@dataclass(frozen=True)
class IdSpaceSpec:
    """Declarative, picklable description of an id-space build.

    Pure data standing in for a live :class:`IdentifierSpace`: the
    transform name (a key of :data:`ID_TRANSFORMS`), its parameters, and
    the hub channel the ids draw from.  Workers rebuild the exact same id
    assignment from ``(hub seed, stream, transform)`` alone, which is what
    lets the idspace ablation's shared-space trials run in any process.
    """

    transform: str = "uniform"
    params: Dict[str, Any] = field(default_factory=dict)
    stream: str = "ids"

    def __post_init__(self) -> None:
        if self.transform not in ID_TRANSFORMS:
            raise ValueError(
                f"unknown id transform {self.transform!r}; "
                f"have {sorted(ID_TRANSFORMS)}"
            )

    def build(self, graph: OverlayGraph, hub: RngHub) -> IdentifierSpace:
        """Materialize the id space on ``graph`` drawing from ``hub``.

        The uniform assignment stays lazy (ids appear on first use, as the
        serial experiments always had it); transformed assignments are
        materialized eagerly via :meth:`IdentifierSpace.with_transform` —
        both consume the stream in ``graph.nodes()`` order, so the draws
        are identical either way.
        """
        space = IdentifierSpace(graph, rng=hub.stream(self.stream))
        if self.transform == "uniform" and not self.params:
            return space
        return space.with_transform(make_transform(self.transform, **self.params))

    def as_config(self) -> Dict[str, Any]:
        """Plain-dict form for content addressing."""
        return {
            "transform": self.transform,
            "params": dict(self.params),
            "stream": self.stream,
        }

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "IdSpaceSpec":
        """Rebuild a spec from its :meth:`as_config` form (worker side)."""
        return cls(
            transform=str(config.get("transform", "uniform")),
            params=dict(config.get("params") or {}),
            stream=str(config.get("stream", "ids")),
        )


class IntervalDensityEstimator(SizeEstimator):
    """Interval-density size estimation on an :class:`IdentifierSpace`.

    Parameters
    ----------
    space:
        The id assignment substrate (shared across estimators so ids are
        stable).
    k:
        Number of nearest ids measured; relative std scales as
        ``1/sqrt(k)`` like Sample&Collide's ``l`` (both invert a uniform
        order statistic).
    """

    name = "interval_density"

    def __init__(
        self,
        graph: OverlayGraph,
        space: Optional[IdentifierSpace] = None,
        k: int = 50,
        rng: RngLike = None,
        meter: Optional[MessageMeter] = None,
    ) -> None:
        super().__init__(graph, rng=rng, meter=meter)
        if k < 2:
            raise ValueError("k must be >= 2 (one gap needs two ids)")
        self.k = int(k)
        self.space = space if space is not None else IdentifierSpace(graph, rng=self.rng)

    def estimate(self) -> Estimate:
        """Measure the k-nearest arc around a random point; ``N̂=(k−1)/arc``."""
        self._require_nonempty()
        before = self.meter.total
        self.space.refresh()
        if self.space.size <= self.k:
            raise EstimatorError(
                f"interval_density: k={self.k} needs more than k alive nodes"
            )
        center = float(self.rng.random())
        arc = self.space.arc_of_k_nearest(center, self.k)
        if arc <= 0.0:  # pragma: no cover - ids are continuous
            raise EstimatorError("interval_density: degenerate zero arc")
        # One lookup message per id consulted.
        self.meter.add(MessageKind.WALK, self.k)
        value = (self.k - 1) / arc
        return Estimate(
            value=value,
            messages=self.meter.total - before,
            algorithm=self.name,
            meta={"k": self.k, "arc": arc, "center": center},
        )


class NeighborDistanceEstimator(SizeEstimator):
    """Successor-gap size estimation (the Viceroy-style rule).

    ``N̂ = s / (sum of s successive id gaps)`` — with ``s = 1`` this is the
    classic "distance to your successor ≈ 1/N" parameter-setting rule the
    paper's introduction cites (Viceroy's level choice).
    """

    name = "neighbor_distance"

    def __init__(
        self,
        graph: OverlayGraph,
        space: Optional[IdentifierSpace] = None,
        gaps: int = 16,
        rng: RngLike = None,
        meter: Optional[MessageMeter] = None,
    ) -> None:
        super().__init__(graph, rng=rng, meter=meter)
        if gaps < 1:
            raise ValueError("gaps must be >= 1")
        self.gaps = int(gaps)
        self.space = space if space is not None else IdentifierSpace(graph, rng=self.rng)

    def estimate(self) -> Estimate:
        """Average ``gaps`` successor gaps from a random node; invert."""
        self._require_nonempty()
        before = self.meter.total
        self.space.refresh()
        if self.space.size <= self.gaps:
            raise EstimatorError(
                f"neighbor_distance: {self.gaps} gaps need more alive nodes"
            )
        node = self.graph.random_node(self.rng)
        gap_list = self.space.successor_gaps(node, self.gaps)
        total = sum(gap_list)
        if total <= 0.0:  # pragma: no cover - ids are continuous
            raise EstimatorError("neighbor_distance: degenerate gaps")
        self.meter.add(MessageKind.WALK, self.gaps)
        value = self.gaps / total
        return Estimate(
            value=value,
            messages=self.meter.total - before,
            algorithm=self.name,
            meta={"gaps": self.gaps, "start_node": node, "total_arc": total},
        )
