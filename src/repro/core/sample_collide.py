"""Sample&Collide size estimator (§III-A) and the inverted-birthday baseline.

The estimator repeatedly draws (asymptotically) uniform node samples via
:class:`~repro.core.sampling.UniformWalkSampler` and counts *collisions* —
samples that hit a node already seen during this estimation.  Sampling stops
once ``l`` collisions have accumulated; with ``C`` total samples the
estimate is ``N̂ = C·(C−1)/(2·l)`` (see :mod:`repro.core.birthday`).

The control parameter ``l`` is the paper's accuracy/overhead dial:

======  ===================  ==========================================
``l``   relative std ≈       paper's observation
======  ===================  ==========================================
10      32%                  cheap (≈10⁵ msgs at N=10⁵), noisy (Fig 18)
100     10%                  3.27× the cost of l=10
200     7%                   ±10% one-shot window, ≈4.8·10⁵ msgs (Figs 1-2)
======  ===================  ==========================================

``InvertedBirthdayEstimator`` is the Bawa et al. baseline the method builds
upon: stop at the *first* collision and return ``X²/2``.  It is implemented
both for completeness and because the paper's §II uses it to motivate why
Sample&Collide "uses samples more efficiently".

Implementation notes: samples are drawn from the walk sampler in vectorized
batches sized by the analytic prediction ``sqrt(2·l·N̂_guess)``; only the
walks actually *consumed* before the ``l``-th collision are charged to the
message meter (unconsumed pre-drawn walks model messages never sent).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..overlay.graph import OverlayGraph
from ..sim.messages import MessageKind, MessageMeter
from ..sim.rng import RngLike
from .base import Estimate, EstimatorError, SizeEstimator
from .birthday import invert_first_collision, sample_collide_estimate
from .kernels import GRAPH_BACKENDS, sample_collide_sweep
from .sampling import UniformWalkSampler

__all__ = ["SampleCollideEstimator", "InvertedBirthdayEstimator"]


class SampleCollideEstimator(SizeEstimator):
    """One-shot Sample&Collide estimation.

    Parameters
    ----------
    graph:
        Overlay to measure.
    l:
        Collision target (paper values: 10, 100, 200).
    timer:
        Walk budget ``T`` (paper value: 10).
    initiator:
        Fixed initiating node id; a uniformly random alive node is chosen
        per estimation when omitted (as in the paper's "perpetual
        monitoring" usage).
    batch_hint:
        Initial guess of the system size used only to size the first batch
        of pre-drawn walks; wrong guesses cost a little extra batching, not
        correctness.
    backend:
        ``"dict"`` (reference, per-sample Python accounting) or
        ``"array"`` — the batched walker kernels of
        :mod:`repro.core.kernels` over the overlay's array twin.  The two
        backends are distributionally — not draw-for-draw — equivalent
        (docs/KERNELS.md).
    """

    name = "sample_collide"

    def __init__(
        self,
        graph: OverlayGraph,
        l: int = 200,
        timer: float = 10.0,
        initiator: Optional[int] = None,
        rng: RngLike = None,
        meter: Optional[MessageMeter] = None,
        batch_hint: Optional[int] = None,
        backend: str = "dict",
    ) -> None:
        super().__init__(graph, rng=rng, meter=meter)
        if l < 1:
            raise ValueError(f"collision target l must be >= 1, got {l}")
        if backend not in GRAPH_BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; have {GRAPH_BACKENDS}"
            )
        self.l = int(l)
        self.timer = float(timer)
        self.initiator = initiator
        self.batch_hint = batch_hint
        self.backend = backend
        self._sampler = UniformWalkSampler(graph, timer=timer, rng=self.rng)

    # ------------------------------------------------------------------

    def estimate(self) -> Estimate:
        """Draw samples until ``l`` collisions; return ``C(C−1)/(2l)``."""
        if self.backend == "array":
            return self._estimate_array()
        self._require_nonempty()
        before = self.meter.total
        initiator = self._pick_initiator()

        # Collision counting is PAIRWISE (with multiplicity): a draw that
        # matches k earlier copies contributes k collisions.  This is what
        # makes E[collisions | C draws] = C(C-1)/(2N) exact and the
        # C(C-1)/(2l) inversion unbiased; counting mere set-membership
        # instead inflates the estimate by ≈ 2l/sqrt(2lN) (measurable:
        # ≈ +7% at N=2·10⁴, l=200).
        seen: Dict[int, int] = {}
        collisions = 0
        draws = 0
        walk_hops = 0

        hint = self.batch_hint if self.batch_hint is not None else self.graph.size
        hint = max(int(hint), 1)
        # Expected total draws is sqrt(2 l N); first batch covers ~60% of it,
        # later batches top up adaptively.
        batch = max(int(0.6 * math.sqrt(2.0 * self.l * hint)), 16)

        guard = 0
        while collisions < self.l:
            guard += 1
            if guard > 10_000:  # pragma: no cover - defensive
                raise EstimatorError("sample_collide: failed to accumulate collisions")
            result = self._sampler.sample_batch(initiator, batch, meter=None)
            consumed = 0
            for node, hops in zip(result.samples, result.hops):
                consumed += 1
                draws += 1
                walk_hops += int(hops)
                node = int(node)
                copies = seen.get(node, 0)
                seen[node] = copies + 1
                if copies:
                    collisions += copies
                    if collisions >= self.l:
                        break
            # Charge only the walks actually consumed: hops already summed
            # per-walk above, one reply per consumed walk.
            if collisions >= self.l:
                break
            # Next batch sized from the current point estimate of N.
            n_guess = max(len(seen), 1)
            if collisions > 0:
                n_guess = max(n_guess, int(sample_collide_estimate(max(draws, 2), collisions)))
            remaining = math.sqrt(2.0 * self.l * n_guess) - draws
            batch = max(int(remaining * 1.2), 16)

        self.meter.add(MessageKind.WALK, walk_hops)
        self.meter.add(MessageKind.REPLY, draws)
        value = sample_collide_estimate(draws, collisions)
        return Estimate(
            value=value,
            messages=self.meter.total - before,
            algorithm=self.name,
            meta={
                "draws": draws,
                "collisions": collisions,
                "distinct": len(seen),
                "walk_hops": walk_hops,
                "initiator": initiator,
                "l": self.l,
                "timer": self.timer,
            },
        )

    # ------------------------------------------------------------------

    def _estimate_array(self) -> Estimate:
        """Array-backend estimation via the batched walker kernels.

        Same protocol, sizing policy and meta keys as the reference path;
        walker advancement and collision counting run as vector kernels on
        the overlay's insertion-ordered CSR twin.  The initiator draw
        consumes one uniform integer either way, but over insertion — not
        sorted — node order, part of the documented RNG-lineage split.
        """
        self._require_nonempty()
        before = self.meter.total
        view = self.graph.to_array()
        if self.initiator is not None:
            init_pos = view.position_of.get(int(self.initiator))
            if init_pos is None:
                raise EstimatorError(
                    f"sample_collide: initiator {self.initiator} departed"
                )
            initiator = self.initiator
        else:
            init_pos = int(self.rng.integers(view.n))
            initiator = int(view.nodes[init_pos])
        hint = self.batch_hint if self.batch_hint is not None else self.graph.size
        value, draws, collisions, distinct, walk_hops = sample_collide_sweep(
            view,
            init_pos,
            self.l,
            self.timer,
            self.rng,
            max(int(hint), 1),
            max_hops=self._sampler.max_hops,
        )
        self.meter.add(MessageKind.WALK, walk_hops)
        self.meter.add(MessageKind.REPLY, draws)
        return Estimate(
            value=value,
            messages=self.meter.total - before,
            algorithm=self.name,
            meta={
                "draws": draws,
                "collisions": collisions,
                "distinct": distinct,
                "walk_hops": walk_hops,
                "initiator": initiator,
                "l": self.l,
                "timer": self.timer,
            },
        )

    def _pick_initiator(self) -> int:
        if self.initiator is not None:
            if self.initiator not in self.graph:
                raise EstimatorError(
                    f"sample_collide: initiator {self.initiator} departed"
                )
            return self.initiator
        return self.graph.random_node(self.rng)


class InvertedBirthdayEstimator(SizeEstimator):
    """Bawa et al.'s inverted birthday paradox: stop at the first repeat.

    ``N̂ = X²/2`` where ``X`` is the index of the first colliding sample.
    High variance (relative std ≈ 100%) — the baseline Sample&Collide
    improves on by reusing every sample across ``l`` collisions.
    """

    name = "inverted_birthday"

    def __init__(
        self,
        graph: OverlayGraph,
        timer: float = 10.0,
        initiator: Optional[int] = None,
        rng: RngLike = None,
        meter: Optional[MessageMeter] = None,
    ) -> None:
        super().__init__(graph, rng=rng, meter=meter)
        self.timer = float(timer)
        self.initiator = initiator
        self._sampler = UniformWalkSampler(graph, timer=timer, rng=self.rng)

    def estimate(self) -> Estimate:
        """Sample until the first collision; return ``X²/2``."""
        self._require_nonempty()
        before = self.meter.total
        if self.initiator is not None:
            if self.initiator not in self.graph:
                raise EstimatorError(
                    f"inverted_birthday: initiator {self.initiator} departed"
                )
            initiator = self.initiator
        else:
            initiator = self.graph.random_node(self.rng)

        seen: Set[int] = set()
        draws = 0
        walk_hops = 0
        batch = max(int(math.sqrt(2.0 * self.graph.size)), 8)
        guard = 0
        while True:
            guard += 1
            if guard > 10_000:  # pragma: no cover - defensive
                raise EstimatorError("inverted_birthday: no collision found")
            result = self._sampler.sample_batch(initiator, batch, meter=None)
            collided = False
            for node, hops in zip(result.samples, result.hops):
                draws += 1
                walk_hops += int(hops)
                node = int(node)
                if node in seen:
                    collided = True
                    break
                seen.add(node)
            if collided:
                break
            batch = max(batch // 2, 8)

        self.meter.add(MessageKind.WALK, walk_hops)
        self.meter.add(MessageKind.REPLY, draws)
        return Estimate(
            value=invert_first_collision(draws),
            messages=self.meter.total - before,
            algorithm=self.name,
            meta={
                "draws": draws,
                "walk_hops": walk_hops,
                "initiator": initiator,
                "timer": self.timer,
            },
        )
