"""Size-estimation algorithms — the paper's primary subject matter.

Three candidates (one per class of generic counting approach, §III):

* :class:`SampleCollideEstimator` — random-walk class (inverted birthday
  paradox on unbiased timer-walk samples);
* :class:`HopsSamplingEstimator` — probabilistic-polling class
  (minHopsReporting heuristic);
* :class:`AggregationProtocol` — epidemic class (push-pull averaging).

Plus the baselines the paper discusses: :class:`InvertedBirthdayEstimator`,
:class:`RandomTourEstimator` and :class:`GossipSampleEstimator`.
"""

from .adaptive import (
    AdaptiveMonitor,
    EstimationPlan,
    choose_l,
    choose_l_for_budget,
    plan_estimation,
)
from .aggregation import AggregationMonitor, AggregationProtocol
from .base import Estimate, EstimatorError, SizeEstimator
from .convergence import (
    aggregation_contraction_rate,
    aggregation_rounds_needed,
    epidemic_fixed_point,
    epidemic_rounds_to_saturation,
    sample_collide_expected_messages,
    sample_collide_expected_samples,
)
from .birthday import (
    collision_probability,
    expected_collisions,
    expected_draws_for_collisions,
    expected_first_collision,
    first_collision_pmf,
    invert_first_collision,
    relative_std,
    sample_collide_estimate,
)
from .hops_sampling import GossipSampleEstimator, HopsSamplingEstimator
from .idspace import (
    IdentifierSpace,
    IntervalDensityEstimator,
    NeighborDistanceEstimator,
)
from .random_tour import RandomTourEstimator
from .registry import available, create, register
from .sample_collide import InvertedBirthdayEstimator, SampleCollideEstimator
from .sampling import UniformWalkSampler, WalkBatch

__all__ = [
    "AdaptiveMonitor",
    "AggregationMonitor",
    "AggregationProtocol",
    "Estimate",
    "EstimationPlan",
    "EstimatorError",
    "GossipSampleEstimator",
    "HopsSamplingEstimator",
    "IdentifierSpace",
    "IntervalDensityEstimator",
    "InvertedBirthdayEstimator",
    "NeighborDistanceEstimator",
    "RandomTourEstimator",
    "SampleCollideEstimator",
    "SizeEstimator",
    "UniformWalkSampler",
    "WalkBatch",
    "aggregation_contraction_rate",
    "aggregation_rounds_needed",
    "available",
    "choose_l",
    "choose_l_for_budget",
    "plan_estimation",
    "collision_probability",
    "create",
    "epidemic_fixed_point",
    "epidemic_rounds_to_saturation",
    "expected_collisions",
    "expected_draws_for_collisions",
    "expected_first_collision",
    "first_collision_pmf",
    "invert_first_collision",
    "register",
    "relative_std",
    "sample_collide_estimate",
    "sample_collide_expected_messages",
    "sample_collide_expected_samples",
]
