"""Uniform peer sampling via timer-budget random walks (§III-A).

Sample&Collide's key ingredient is an *asymptotically unbiased* uniform
sampler that works on arbitrary graphs, including ones with heterogeneous
degrees where naive random walks over-sample high-degree nodes.

Protocol (quoted from the paper): "the initiator node sets a predefined
value ``T > 0``.  This value is then sent to a neighbor chosen uniformly at
random.  Each node receiving the message first picks a random number ``U``,
uniformly distributed on [0, 1]; it then simply decrements ``T`` by
``−log(U)/di`` (``di`` is the degree of the current node), and forwards the
message to a neighbor, if ``T > 0``.  Otherwise the current node is the
sample node, and it returns its id to the initiator."

Why it is unbiased: the walk is the jump chain of a continuous-time random
walk whose per-node holding time is ``Exp(d_i)`` — i.e. rate proportional to
degree — whose stationary distribution is *uniform*.  Stopping at a fixed
time budget ``T`` therefore lands uniformly as ``T`` grows (mixing governed
by graph expansion; the paper uses ``T = 10``).

Implementation notes (per the HPC guides): walks are advanced in vectorized
lock-step batches over the CSR snapshot — one NumPy pass per hop for the
whole batch — instead of one Python loop per walk.  Expected hops per walk
is ``T · d̄`` (each visited node consumes ``Exp(1)/d_i`` of budget and the
degree-biased jump chain spends ``1/d̄`` per hop on average), so a batch of
``B`` walks costs ``O(T · d̄)`` NumPy operations of width ``≈ B``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..overlay.graph import CsrView, OverlayGraph
from ..sim.messages import MessageKind, MessageMeter
from ..sim.rng import RngLike, as_generator

__all__ = ["WalkBatch", "UniformWalkSampler"]


@dataclass(frozen=True)
class WalkBatch:
    """Result of a batch of timer walks.

    Attributes
    ----------
    samples:
        Sampled node *ids* (one per walk).
    hops:
        Number of forwarding messages each walk used (>= 1 unless the
        initiator was isolated, in which case 0 and the sample is the
        initiator itself).
    """

    samples: np.ndarray
    hops: np.ndarray

    def __len__(self) -> int:
        return int(self.samples.shape[0])

    @property
    def total_hops(self) -> int:
        """Total forwarding messages across the batch."""
        return int(self.hops.sum())


class UniformWalkSampler:
    """Batched timer-walk sampler bound to one overlay snapshot.

    Parameters
    ----------
    graph:
        Overlay to sample from.  The CSR snapshot is taken lazily per batch,
        so the sampler survives churn between batches (matching the paper's
        perpetual monitoring mode) while each walk sees a consistent view.
    timer:
        The budget ``T`` (paper default 10 — "sufficient for an accurate
        sampling").
    max_hops:
        Safety valve against pathological walks (e.g. a near-disconnected
        overlay with a degree-1 pendant chain); walks exceeding it stop in
        place and are still counted honestly.
    """

    def __init__(
        self,
        graph: OverlayGraph,
        timer: float = 10.0,
        rng: RngLike = None,
        max_hops: int = 10_000,
    ) -> None:
        if timer <= 0:
            raise ValueError(f"timer budget must be positive, got {timer}")
        if max_hops < 1:
            raise ValueError("max_hops must be >= 1")
        self.graph = graph
        self.timer = float(timer)
        self.max_hops = int(max_hops)
        self.rng = as_generator(rng, "sampler")

    # ------------------------------------------------------------------

    def sample_batch(
        self,
        initiator: int,
        count: int,
        meter: Optional[MessageMeter] = None,
    ) -> WalkBatch:
        """Run ``count`` independent timer walks from ``initiator``.

        Every forwarding hop is metered as :data:`MessageKind.WALK` and each
        walk's final report to the initiator as one
        :data:`MessageKind.REPLY` (how Sample&Collide's overhead is defined
        in §IV-E).  Walks that start at an isolated initiator return the
        initiator itself with zero hops.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        view = self.graph.csr()
        if initiator not in view.index_of:
            raise ValueError(f"initiator {initiator} is not alive")
        if count == 0:
            return WalkBatch(
                samples=np.empty(0, dtype=np.int64), hops=np.empty(0, dtype=np.int64)
            )
        init_pos = view.index_of[initiator]
        pos, hops = self._advance(view, init_pos, count)
        samples = view.nodes[pos]
        if meter is not None:
            meter.add(MessageKind.WALK, int(hops.sum()))
            meter.add(MessageKind.REPLY, count)
        return WalkBatch(samples=samples, hops=hops)

    # ------------------------------------------------------------------

    def _advance(
        self, view: CsrView, init_pos: int, count: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Lock-step advance ``count`` walks; returns (positions, hops)."""
        rng = self.rng
        degrees = view.degrees()

        pos = np.full(count, init_pos, dtype=np.int64)
        hops = np.zeros(count, dtype=np.int64)
        budget = np.full(count, self.timer, dtype=np.float64)

        # First hop: the initiator sends T to a uniform neighbour (no
        # decrement at the initiator itself).  Isolated initiator => the
        # walk terminates immediately on itself.
        first = view.sample_neighbors(pos, rng)
        movable = first >= 0
        pos[movable] = first[movable]
        hops[movable] = 1
        active = movable.copy()

        hop_round = 1
        while np.any(active):
            idx = np.nonzero(active)[0]
            cur = pos[idx]
            deg = degrees[cur]
            # Current node decrements the budget by Exp(1)/degree.  A
            # degree-0 node (possible mid-churn) absorbs the walk: treat its
            # decrement as infinite.
            draw = rng.standard_exponential(idx.shape[0])
            dec = np.where(deg > 0, draw / np.maximum(deg, 1), np.inf)
            budget[idx] -= dec
            cont = budget[idx] > 0.0
            if hop_round >= self.max_hops:
                cont[:] = False
            movers = idx[cont]
            if movers.size:
                nxt = view.sample_neighbors(pos[movers], rng)
                ok = nxt >= 0
                pos[movers[ok]] = nxt[ok]
                hops[movers[ok]] += 1
                # walks whose current node somehow lost all neighbours stop
                stopped = movers[~ok]
                active[stopped] = False
            done = idx[~cont]
            active[done] = False
            hop_round += 1
        return pos, hops

    # ------------------------------------------------------------------

    def expected_hops_per_walk(self) -> float:
        """Analytic expectation ``T · d̄`` used by the overhead model.

        The jump chain's stationary measure is degree-proportional, so the
        mean budget consumed per hop is ``E_π[1/d] = N/(2·m) = 1/d̄``.
        """
        avg = self.graph.average_degree()
        return self.timer * avg if avg > 0 else 0.0
