"""Birthday-paradox mathematics behind the random-walk estimators.

The paper (§III-A) grounds Sample&Collide in the *inverted birthday
paradox* of Bawa et al.: when drawing uniform samples with replacement from
a population of unknown size ``N``, the number of draws ``X(N)`` needed to
see the first repeat concentrates around ``sqrt(2N)``; observing ``X``
therefore yields the estimate ``N̂ = X²/2``.

Sample&Collide generalizes to ``l`` collisions: draws continue until ``l``
samples have hit an already-seen node, and with ``C`` total draws the
method-of-moments estimator is ``N̂ = C·(C−1)/(2·l)`` (the expected number
of collisions among ``C`` uniform draws is ``C·(C−1)/(2N)``).  The standard
deviation of the resulting estimate scales as ``1/sqrt(l)``, which is the
accuracy/overhead dial discussed throughout §IV-C/§V (l=10 noisy & cheap,
l=200 tight & ≈480k messages on a 100k overlay).

All probabilities use log-space accumulation for numerical robustness at
``N`` up to 10⁶ and beyond.
"""

from __future__ import annotations

import math
import numpy as np

__all__ = [
    "collision_probability",
    "first_collision_pmf",
    "expected_first_collision",
    "invert_first_collision",
    "expected_collisions",
    "expected_draws_for_collisions",
    "sample_collide_estimate",
    "relative_std",
]


def collision_probability(n: int, k: int) -> float:
    """``p(N, K)``: probability that ``k`` uniform draws (with replacement)
    from ``n`` items contain at least one repeat.

    This is the quantity the paper tabulates for the birthday paradox
    (``p(365, 23) >= 1/2``).  Computed as ``1 - exp(Σ log(1 - i/n))`` for
    stability.
    """
    if n <= 0:
        raise ValueError(f"population must be positive, got {n}")
    if k < 0:
        raise ValueError(f"draw count must be non-negative, got {k}")
    if k <= 1:
        return 0.0
    if k > n:
        return 1.0
    i = np.arange(1, k, dtype=np.float64)
    log_no_collision = np.log1p(-i / n).sum()
    return float(-np.expm1(log_no_collision))


def first_collision_pmf(n: int, k: int) -> float:
    """``P[X(N) = k]``: the first repeat occurs exactly at draw ``k``.

    Equals ``p(N, K) − p(N, K−1)`` (the paper's §III-A identity).
    """
    if k < 2:
        return 0.0
    return collision_probability(n, k) - collision_probability(n, k - 1)


def expected_first_collision(n: int, exact_limit: int = 100_000) -> float:
    """``E[X(N)]``: expected draws until the first repeat.

    For small ``n`` the exact sum ``Σ_{k>=0} P[X > k]`` is used
    (``P[X > k] = Π_{i<k}(1 - i/n)``); beyond ``exact_limit`` the classic
    asymptotic ``sqrt(πN/2) + 2/3`` applies (Ramanujan's Q-function).
    """
    if n <= 0:
        raise ValueError(f"population must be positive, got {n}")
    if n > exact_limit:
        return math.sqrt(math.pi * n / 2.0) + 2.0 / 3.0
    # E[X] = sum_{k=0}^{n} P[X > k]; survival decays super-exponentially
    # past sqrt(n), so we truncate once negligible.
    total = 1.0  # k = 0 term (always need at least one draw)
    log_surv = 0.0
    for k in range(1, n + 1):
        log_surv += math.log1p(-(k - 1) / n)
        surv = math.exp(log_surv)
        total += surv
        if surv < 1e-15:
            break
    return total


def invert_first_collision(x: int) -> float:
    """Inverted-birthday-paradox estimate from the first-collision index:
    ``N̂ = X²/2`` (Bawa et al., used as-is by the basic method)."""
    if x < 2:
        raise ValueError(f"a collision needs at least 2 draws, got {x}")
    return x * x / 2.0


def expected_collisions(n: int, c: int) -> float:
    """Expected number of pairwise repeats among ``c`` uniform draws:
    ``C·(C−1)/(2N)``.

    Collisions are counted *with multiplicity*: a draw matching ``k``
    earlier copies contributes ``k``.  Under that convention the identity
    is exact for uniform sampling, which is what makes the
    :func:`sample_collide_estimate` inversion unbiased.
    """
    if n <= 0:
        raise ValueError(f"population must be positive, got {n}")
    if c < 0:
        raise ValueError(f"draw count must be non-negative, got {c}")
    return c * (c - 1) / (2.0 * n)


def expected_draws_for_collisions(n: int, l: int) -> float:
    """Approximate draws needed to accumulate ``l`` collisions:
    ``sqrt(2·l·N)`` (inverting :func:`expected_collisions`).

    This drives Sample&Collide's overhead model: cost per estimation is
    roughly ``sqrt(2·l·N) · (T·avg_degree + 1)`` messages, which for
    ``l=200, N=10⁵, T=10, deg≈7.2`` gives the paper's ≈480,000.
    """
    if l < 1:
        raise ValueError(f"collision target must be >= 1, got {l}")
    if n <= 0:
        raise ValueError(f"population must be positive, got {n}")
    return math.sqrt(2.0 * l * n)


def sample_collide_estimate(draws: int, collisions: int) -> float:
    """Sample&Collide method-of-moments estimator ``N̂ = C·(C−1)/(2·l)``.

    ``draws`` is the total number of samples taken (``C``), ``collisions``
    the number that repeated an earlier sample (``l``).
    """
    if collisions < 1:
        raise ValueError(f"need at least one collision, got {collisions}")
    if draws < 2:
        raise ValueError(f"need at least two draws, got {draws}")
    return draws * (draws - 1) / (2.0 * collisions)


def relative_std(l: int) -> float:
    """First-order relative standard deviation of the ``l``-collision
    estimator, ``≈ 1/sqrt(l)``.

    Matches the paper's observed bands: l=200 → ≈7% (one-shot points within
    ~10% with 2σ peaks to 20%, Figs 1-2), l=10 → ≈32% (Fig 18's noise).
    """
    if l < 1:
        raise ValueError(f"collision target must be >= 1, got {l}")
    return 1.0 / math.sqrt(l)
