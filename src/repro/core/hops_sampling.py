"""HopsSampling — probabilistic polling with the minHopsReporting heuristic.

The polling candidate of the study (§III-B), following Kostoulas, Psaltoulis,
Gupta, Birman & Demers (NCA'05 / PODC'04) with the parameter values the
paper fixed after discussion with the authors: ``gossipTo=2, gossipFor=1,
gossipUntil=1, minHopsReporting=5``.

The protocol has two phases:

1. **Spread** — the initiator gossips a poll across the overlay.  The
   message carries a ``hopCount`` (0 at the initiator) incremented at each
   traversed node; every node remembers the *lowest* hopCount it received —
   its estimated distance to the initiator.  Each newly informed node
   forwards the poll to ``gossipTo`` uniformly random neighbours for
   ``gossipFor`` rounds; the spread stops after ``gossipUntil`` consecutive
   rounds with no newly informed node.
2. **Report** — a node at recorded distance ``h`` replies with probability
   1 if ``h < minHopsReporting`` and ``gossipTo^-(h − minHopsReporting)``
   otherwise (avoiding a reply flood near the initiator).  The initiator
   de-biases: each reply from distance ``h`` is counted with weight
   ``1/p(h)``, and the weighted sum (plus 1 for itself) is the estimate.

**Known bias, reproduced here**: the fanout-2 spread misses a fraction of
the overlay (the paper measured ≈11% of 100,000 nodes unreached), and
missed nodes never reply, so HopsSampling *under-estimates* consistently
(Figs 3-4) — worse on scale-free topologies (Fig 8).  The paper verified
the polling math itself is unbiased by feeding every node its exact
distance (§V); pass ``oracle_distances=True`` to reproduce that experiment
(every node is considered reached, at its true BFS distance).

Overhead: the spread costs ``gossipTo`` messages per informed node per
gossip round (Θ(2N) with the paper's parameters) plus one message per
reply — the paper's "O(2N)" single-shot cost.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..overlay.graph import OverlayGraph
from ..sim.messages import MessageKind, MessageMeter
from ..sim.rng import RngLike
from .base import Estimate, EstimatorError, SizeEstimator
from .kernels import GRAPH_BACKENDS, bfs_frontier_distances, gossip_spread_kernel

__all__ = ["HopsSamplingEstimator", "GossipSampleEstimator", "SpreadResult"]


class SpreadResult:
    """Outcome of one gossip spread: per-node recorded distances.

    Attributes
    ----------
    hops:
        Recorded min hopCount per CSR position (``-1`` = never reached).
    spread_messages:
        Gossip messages sent during the spread.
    rounds:
        Gossip rounds the spread lasted.
    """

    __slots__ = ("hops", "spread_messages", "rounds")

    def __init__(self, hops: np.ndarray, spread_messages: int, rounds: int) -> None:
        self.hops = hops
        self.spread_messages = spread_messages
        self.rounds = rounds

    @property
    def reached(self) -> int:
        """Number of nodes that received the poll (initiator included)."""
        return int((self.hops >= 0).sum())

    def coverage(self) -> float:
        """Fraction of the overlay reached by the spread."""
        return self.reached / self.hops.shape[0] if self.hops.shape[0] else 0.0


def _gossip_spread(
    view,
    init_pos: int,
    gossip_to: int,
    gossip_for: int,
    gossip_until: int,
    rng: np.random.Generator,
) -> SpreadResult:
    """Run the synchronous push-gossip spread, vectorized per round.

    Semantics (our reading of [17]/[11] with the paper's parameters):

    * each round, every *active* node emits ``gossip_to`` copies to
      uniformly random neighbours (with replacement — real gossip does not
      coordinate targets);
    * a node is active for the ``gossip_for`` rounds after it is first
      informed;
    * a node that receives a *duplicate* while inactive re-activates for
      one round, up to ``gossip_until`` times — this is the re-gossip knob
      that pushes coverage from the bare branching-process fixed point
      (≈80% at fanout 2) up to the ≈89% the paper measured ("11% of
      non-reached nodes out of 100,000");
    * the spread terminates when no node is active.
    """
    n = view.n
    hops = np.full(n, -1, dtype=np.int64)
    hops[init_pos] = 0
    active = np.array([init_pos], dtype=np.int64)
    rounds_left = np.zeros(n, dtype=np.int64)
    rounds_left[init_pos] = gossip_for
    regossip_left = np.full(n, gossip_until, dtype=np.int64)
    spread_messages = 0
    rounds = 0
    big = np.iinfo(np.int64).max

    while active.size:
        rounds += 1
        senders = np.repeat(active, gossip_to)
        targets = view.sample_neighbors(senders, rng)
        ok = targets >= 0
        spread_messages += int(ok.sum())
        senders, targets = senders[ok], targets[ok]
        cand = hops[senders] + 1
        # First-infection wins with the minimum hop among this round's hits.
        tmp = np.full(n, big, dtype=np.int64)
        np.minimum.at(tmp, targets, cand)
        hit = tmp < big
        newly = hit & (hops < 0)
        hops[newly] = tmp[newly]
        # Already-informed nodes still lower their recorded distance when a
        # shorter path arrives later (the "lowest hopCount received" rule).
        better = hit & (hops >= 0) & (tmp < hops)
        hops[better] = tmp[better]

        # Duplicate receipt by an informed, inactive node: re-activate for
        # one round while its gossipUntil budget lasts.
        dup = hit & ~newly & (rounds_left <= 0) & (regossip_left > 0)
        regossip_left[dup] -= 1

        rounds_left[active] -= 1
        rounds_left[newly] = gossip_for
        rounds_left[dup] = np.maximum(rounds_left[dup], 1)
        active = np.nonzero(rounds_left > 0)[0]

    return SpreadResult(hops=hops, spread_messages=spread_messages, rounds=rounds)


class HopsSamplingEstimator(SizeEstimator):
    """One-shot HopsSampling estimation (minHopsReporting heuristic).

    Parameters (defaults are the paper's §IV-C values)
    ----------
    gossip_to:
        Fanout of the spread (2).
    gossip_for:
        Rounds each node keeps gossiping after first informed (1).
    gossip_until:
        Consecutive quiet rounds that terminate the spread (1).
    min_hops_reporting:
        Distance below which nodes always reply (5).
    initiator:
        Fixed initiator id; random alive node when omitted.
    oracle_distances:
        §V's verification mode: every node is reached at its exact BFS
        distance (the spread still runs — and is billed — but its recorded
        distances are replaced by ground truth).  Removes the bias.
    backend:
        ``"dict"`` (reference: spread over the sorted-id CSR view) or
        ``"array"`` — the frontier kernels of :mod:`repro.core.kernels`
        over the overlay's insertion-ordered array twin.  Distributionally
        — not draw-for-draw — equivalent (docs/KERNELS.md).
    """

    name = "hops_sampling"

    def __init__(
        self,
        graph: OverlayGraph,
        gossip_to: int = 2,
        gossip_for: int = 1,
        gossip_until: int = 1,
        min_hops_reporting: int = 5,
        initiator: Optional[int] = None,
        rng: RngLike = None,
        meter: Optional[MessageMeter] = None,
        oracle_distances: bool = False,
        backend: str = "dict",
    ) -> None:
        super().__init__(graph, rng=rng, meter=meter)
        if gossip_to < 1:
            raise ValueError(f"gossip_to must be >= 1, got {gossip_to}")
        if gossip_for < 1:
            raise ValueError(f"gossip_for must be >= 1, got {gossip_for}")
        if gossip_until < 1:
            raise ValueError(f"gossip_until must be >= 1, got {gossip_until}")
        if min_hops_reporting < 0:
            raise ValueError(
                f"min_hops_reporting must be >= 0, got {min_hops_reporting}"
            )
        if backend not in GRAPH_BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; have {GRAPH_BACKENDS}")
        self.gossip_to = int(gossip_to)
        self.gossip_for = int(gossip_for)
        self.gossip_until = int(gossip_until)
        self.min_hops_reporting = int(min_hops_reporting)
        self.initiator = initiator
        self.oracle_distances = bool(oracle_distances)
        self.backend = backend

    # ------------------------------------------------------------------

    def estimate(self) -> Estimate:
        """Spread the poll, collect probabilistic replies, extrapolate."""
        self._require_nonempty()
        before = self.meter.total

        if self.backend == "array":
            view = self.graph.to_array()
            init_pos = self._initiator_pos_array(view)
            hops, spread_messages, rounds = gossip_spread_kernel(
                view,
                init_pos,
                self.gossip_to,
                self.gossip_for,
                self.gossip_until,
                self.rng,
            )
            spread = SpreadResult(
                hops=hops, spread_messages=spread_messages, rounds=rounds
            )
            if self.oracle_distances:
                hops = bfs_frontier_distances(view, init_pos)
        else:
            view = self.graph.csr()
            init_pos = self._initiator_pos(view)
            spread = _gossip_spread(
                view,
                init_pos,
                self.gossip_to,
                self.gossip_for,
                self.gossip_until,
                self.rng,
            )
            hops = spread.hops
            if self.oracle_distances:
                hops = view.bfs_distances(init_pos)
        self.meter.add(MessageKind.SPREAD, spread.spread_messages)

        # Report phase: every reached non-initiator node flips its coin.
        mask = (hops >= 1)
        distances = hops[mask]
        excess = np.maximum(distances - self.min_hops_reporting, 0)
        reply_prob = np.power(float(self.gossip_to), -excess.astype(np.float64))
        coins = self.rng.random(distances.shape[0])
        replied = coins < reply_prob
        replies = int(replied.sum())
        self.meter.add(MessageKind.REPLY, replies)

        # Initiator extrapolates: each reply from distance h stands for
        # gossipTo^(h - minHops) nodes (1 for h < minHops), plus itself.
        weights = np.power(float(self.gossip_to), excess[replied].astype(np.float64))
        value = 1.0 + float(weights.sum())

        return Estimate(
            value=value,
            messages=self.meter.total - before,
            algorithm=self.name,
            meta={
                "reached": spread.reached,
                "coverage": spread.coverage(),
                "replies": replies,
                "spread_rounds": spread.rounds,
                "spread_messages": spread.spread_messages,
                "initiator": int(view.nodes[init_pos]),
                "oracle_distances": self.oracle_distances,
                "max_recorded_distance": int(distances.max()) if distances.size else 0,
            },
        )

    # ------------------------------------------------------------------

    def _initiator_pos(self, view) -> int:
        if self.initiator is not None:
            pos = view.index_of.get(self.initiator)
            if pos is None:
                raise EstimatorError(
                    f"hops_sampling: initiator {self.initiator} departed"
                )
            return pos
        return int(self.rng.integers(view.n))

    def _initiator_pos_array(self, view) -> int:
        if self.initiator is not None:
            pos = view.position_of.get(int(self.initiator))
            if pos is None:
                raise EstimatorError(
                    f"hops_sampling: initiator {self.initiator} departed"
                )
            return pos
        return int(self.rng.integers(view.n))


class GossipSampleEstimator(SizeEstimator):
    """Fixed-probability polling — the *gossipSample*-style heuristic.

    The alternative PODC'04 flavour the paper implemented but found "less
    accurate" and set aside (§III-B).  Our rendition represents the simple
    probabilistic-response class of §II ([2], [6]): the same gossip spread
    disseminates a poll carrying a fixed reply probability ``p``; every
    reached node replies with probability ``p``; the initiator estimates
    ``N̂ = 1 + replies/p``.

    Compared to minHopsReporting this wastes the distance information and —
    for the small ``p`` needed to keep the reply flood manageable — has
    higher relative variance at equal overhead, which is the qualitative
    deficiency the paper reports.
    """

    name = "gossip_sample"

    def __init__(
        self,
        graph: OverlayGraph,
        reply_probability: float = 0.02,
        gossip_to: int = 2,
        gossip_for: int = 1,
        gossip_until: int = 1,
        initiator: Optional[int] = None,
        rng: RngLike = None,
        meter: Optional[MessageMeter] = None,
    ) -> None:
        super().__init__(graph, rng=rng, meter=meter)
        if not (0.0 < reply_probability <= 1.0):
            raise ValueError(
                f"reply_probability must be in (0, 1], got {reply_probability}"
            )
        self.reply_probability = float(reply_probability)
        self.gossip_to = int(gossip_to)
        self.gossip_for = int(gossip_for)
        self.gossip_until = int(gossip_until)
        self.initiator = initiator

    def estimate(self) -> Estimate:
        """Spread the poll; count fixed-probability replies; extrapolate."""
        self._require_nonempty()
        before = self.meter.total
        view = self.graph.csr()
        if self.initiator is not None:
            pos = view.index_of.get(self.initiator)
            if pos is None:
                raise EstimatorError(
                    f"gossip_sample: initiator {self.initiator} departed"
                )
            init_pos = pos
        else:
            init_pos = int(self.rng.integers(view.n))

        spread = _gossip_spread(
            view, init_pos, self.gossip_to, self.gossip_for, self.gossip_until, self.rng
        )
        self.meter.add(MessageKind.SPREAD, spread.spread_messages)

        reached_others = spread.reached - 1
        replies = int(
            (self.rng.random(reached_others) < self.reply_probability).sum()
        ) if reached_others > 0 else 0
        self.meter.add(MessageKind.REPLY, replies)

        value = 1.0 + replies / self.reply_probability
        return Estimate(
            value=value,
            messages=self.meter.total - before,
            algorithm=self.name,
            meta={
                "reached": spread.reached,
                "coverage": spread.coverage(),
                "replies": replies,
                "reply_probability": self.reply_probability,
                "spread_rounds": spread.rounds,
                "initiator": int(view.nodes[init_pos]),
            },
        )
