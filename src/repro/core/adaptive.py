"""Adaptive configuration — turning §V's tradeoff discussion into an API.

The paper closes with: "A strength of this algorithm [Sample&Collide] is
thus to adapt to the application performance needs by simply modifying one
parameter."  This module operationalizes that: a user states an accuracy
or budget target and gets the parameter and the projected cost back, plus
a self-tuning monitor that keeps a running estimate at a target accuracy
while the overlay churns.

* :func:`choose_l` — smallest collision target achieving a requested
  one-shot relative standard deviation (``rel_std ≈ 1/sqrt(l)``).
* :func:`choose_l_for_budget` — largest ``l`` whose projected message cost
  fits a per-estimation budget (cost model
  ``sqrt(2·l·N̂)·(T·d̄+1)``, validated against Table I).
* :func:`plan_estimation` — compare all three candidates for a target and
  report the cheapest that meets it (the §V decision table as a function).
* :class:`AdaptiveMonitor` — continuous Sample&Collide monitoring that
  re-tunes ``l`` from its own running size estimate as the overlay grows
  or shrinks, so the *relative* accuracy stays constant under churn.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..overlay.graph import OverlayGraph
from ..sim.messages import MessageMeter
from ..sim.metrics import RollingAverage
from ..sim.rng import RngLike, as_generator
from .base import Estimate
from .sample_collide import SampleCollideEstimator

__all__ = [
    "choose_l",
    "choose_l_for_budget",
    "EstimationPlan",
    "plan_estimation",
    "AdaptiveMonitor",
]


def choose_l(target_rel_std: float, l_max: int = 100_000) -> int:
    """Smallest ``l`` with one-shot relative std <= ``target_rel_std``.

    Inverts ``rel_std ≈ 1/sqrt(l)`` (see :func:`repro.core.birthday.relative_std`).
    """
    if not (0.0 < target_rel_std < 10.0):
        raise ValueError(f"target_rel_std out of range: {target_rel_std}")
    l = math.ceil(1.0 / target_rel_std**2)
    if l > l_max:
        raise ValueError(
            f"target {target_rel_std:.4f} needs l={l} > l_max={l_max}"
        )
    return max(l, 1)


def choose_l_for_budget(
    budget_messages: int,
    size_hint: int,
    timer: float = 10.0,
    avg_degree: float = 7.2,
) -> int:
    """Largest ``l`` whose projected per-estimation cost fits the budget.

    Cost model: ``sqrt(2·l·N) · (T·d̄ + 1)`` messages (validated against the
    paper's Table I in the overhead benchmarks).  Returns at least 1; a
    budget too small even for l=1 raises.
    """
    if budget_messages < 1:
        raise ValueError("budget must be >= 1 message")
    if size_hint < 1:
        raise ValueError("size_hint must be >= 1")
    per_sample = timer * avg_degree + 1.0
    samples_affordable = budget_messages / per_sample
    l = math.floor(samples_affordable**2 / (2.0 * size_hint))
    if l < 1:
        raise ValueError(
            f"budget of {budget_messages} messages cannot fund even l=1 "
            f"(needs ≈{math.ceil(math.sqrt(2 * size_hint) * per_sample)})"
        )
    return l


@dataclass(frozen=True)
class EstimationPlan:
    """Recommended configuration for a stated accuracy target."""

    algorithm: str
    parameters: dict
    projected_messages: float
    projected_rel_error: float
    rationale: str


def plan_estimation(
    size_hint: int,
    target_rel_error: float,
    timer: float = 10.0,
    avg_degree: float = 7.2,
    aggregation_rounds: int = 50,
) -> EstimationPlan:
    """Pick the cheapest candidate meeting ``target_rel_error`` (§V logic).

    Considers Sample&Collide (cost ``sqrt(2lN)·(T·d̄+1)``, error
    ``1/sqrt(l)``) and Aggregation (cost ``2·N·rounds``, error ≈0 after
    convergence).  HopsSampling is excluded from *accuracy-targeted*
    plans because its reach bias (≈ −10%) is not tunable — matching the
    paper's conclusion that it competes on delay, not accuracy.
    """
    if size_hint < 1:
        raise ValueError("size_hint must be >= 1")
    if not (0.0 < target_rel_error < 1.0):
        raise ValueError("target_rel_error must be in (0, 1)")
    agg_cost = 2.0 * size_hint * aggregation_rounds
    try:
        l = choose_l(target_rel_error)
        sc_cost = math.sqrt(2.0 * l * size_hint) * (timer * avg_degree + 1.0)
    except ValueError:
        l, sc_cost = None, math.inf
    if sc_cost <= agg_cost:
        return EstimationPlan(
            algorithm="sample_collide",
            parameters={"l": l, "timer": timer},
            projected_messages=sc_cost,
            projected_rel_error=1.0 / math.sqrt(l),
            rationale=(
                f"S&C with l={l} meets {target_rel_error:.1%} at "
                f"~{sc_cost:,.0f} msgs vs Aggregation's {agg_cost:,.0f}"
            ),
        )
    return EstimationPlan(
        algorithm="aggregation",
        parameters={"rounds": aggregation_rounds},
        projected_messages=agg_cost,
        projected_rel_error=0.0,
        rationale=(
            f"target {target_rel_error:.1%} needs l={l} costing "
            f"~{sc_cost:,.0f} msgs; Aggregation is exact for {agg_cost:,.0f}"
        ),
    )


class AdaptiveMonitor:
    """Self-tuning continuous Sample&Collide monitor.

    Maintains a rolling size estimate and re-derives ``l`` before each probe
    from the stated accuracy target and the *current* estimate, so that the
    accuracy target keeps holding as the overlay grows or shrinks (the cost
    auto-scales as sqrt(N̂)).

    Parameters
    ----------
    graph:
        The (possibly churning) overlay.
    target_rel_std:
        One-shot accuracy target (e.g. 0.07 == l≈200).
    window:
        last-k-runs smoothing applied to the exposed estimate.
    """

    def __init__(
        self,
        graph: OverlayGraph,
        target_rel_std: float = 0.1,
        timer: float = 10.0,
        window: int = 10,
        rng: RngLike = None,
        meter: Optional[MessageMeter] = None,
    ) -> None:
        self.graph = graph
        self.l = choose_l(target_rel_std)
        self.timer = float(timer)
        self.rng = as_generator(rng, "adaptive")
        self.meter = meter if meter is not None else MessageMeter()
        self._roll = RollingAverage(window)
        self.history: List[Estimate] = []

    @property
    def current_estimate(self) -> float:
        """Smoothed running size estimate (NaN before the first probe)."""
        return self._roll.mean

    def probe(self) -> Estimate:
        """Run one estimation, feed the smoother, adapt the batch hint."""
        hint = self.current_estimate
        est = SampleCollideEstimator(
            self.graph,
            l=self.l,
            timer=self.timer,
            rng=self.rng,
            meter=self.meter,
            batch_hint=int(hint) if hint == hint and hint >= 1 else None,
        ).estimate()
        self._roll.push(est.value)
        self.history.append(est)
        return est

    def probe_many(self, count: int) -> List[Estimate]:
        """Run ``count`` successive probes (convenience for monitors)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.probe() for _ in range(count)]

    def total_cost(self) -> int:
        """Messages spent by all probes so far."""
        return self.meter.total
