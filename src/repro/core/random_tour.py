"""Random Tour size estimator — the random-walk baseline of Massoulié et al.

The paper's §II describes it as the first method of [15]: "based on an
emulation of the return time of a random walk to the initiating node", and
reports that Sample&Collide's overhead "is much lower than the one of
Random Tour", which is why S&C was chosen as the random-walk-class
candidate.  We implement Random Tour so the claimed cost gap is measurable
in this framework (see ``benchmarks/test_ablation_random_tour.py``).

Estimator.  Start a simple random walk at initiator ``i`` and accumulate
``Φ = Σ_t 1/deg(X_t)`` over the visited nodes (including the start), until
the walk first *returns* to ``i``.  For a stationary reversible walk
``π_j = deg(j)/(2m)``, the expected accumulated value over one return cycle
is ``(1/π_i)·Σ_j π_j/deg(j) = N/deg(i)``, so

    ``N̂ = deg(i) · Φ``.

The expected tour length is ``2m/deg(i)`` hops — Θ(N) messages per
estimation versus Sample&Collide's Θ(sqrt(l·N)·T·d̄); that Θ(N) is exactly
the overhead gap the paper cites.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..overlay.graph import OverlayGraph
from ..sim.messages import MessageKind, MessageMeter
from ..sim.rng import RngLike
from .base import Estimate, EstimatorError, SizeEstimator

__all__ = ["RandomTourEstimator"]


class RandomTourEstimator(SizeEstimator):
    """One-shot Random Tour estimation.

    Parameters
    ----------
    graph:
        Overlay to measure; must contain the initiator, which must have at
        least one neighbour (a tour from an isolated node is undefined).
    initiator:
        Fixed initiating node id; random alive node when omitted.
    max_hops:
        Abort bound for degenerate topologies (the walk on a disconnected
        or near-disconnected overlay may effectively never return).  On
        abort an :class:`EstimatorError` is raised — callers treat it as a
        failed probe, which is also what a timeout would mean in practice.
    """

    name = "random_tour"

    def __init__(
        self,
        graph: OverlayGraph,
        initiator: Optional[int] = None,
        rng: RngLike = None,
        meter: Optional[MessageMeter] = None,
        max_hops: Optional[int] = None,
    ) -> None:
        super().__init__(graph, rng=rng, meter=meter)
        self.initiator = initiator
        self.max_hops = max_hops

    def estimate(self) -> Estimate:
        """Walk until first return; ``N̂ = deg(i)·Σ 1/deg(X_t)``."""
        self._require_nonempty()
        before = self.meter.total
        view = self.graph.csr()
        if self.initiator is not None:
            if self.initiator not in view.index_of:
                raise EstimatorError(f"random_tour: initiator {self.initiator} departed")
            init_pos = view.index_of[self.initiator]
        else:
            init_pos = int(self.rng.integers(view.n))
        degrees = view.degrees()
        d_init = int(degrees[init_pos])
        if d_init == 0:
            raise EstimatorError("random_tour: initiator is isolated")

        # Tours average 2m/deg(i) hops; the default abort bound is two
        # orders of magnitude above that to stay out of honest tours' way.
        limit = self.max_hops if self.max_hops is not None else max(200 * view.m, 1000)

        inv_deg = 1.0 / np.maximum(degrees, 1)
        phi = float(inv_deg[init_pos])  # the start visit counts
        hops = 0
        pos = init_pos
        rng = self.rng
        indptr, indices = view.indptr, view.indices
        # Draw uniforms in chunks to keep RNG overhead out of the hop loop.
        chunk = 4096
        buf = rng.random(chunk)
        buf_i = 0
        while True:
            start = indptr[pos]
            deg = indptr[pos + 1] - start
            if deg == 0:
                # Mid-tour dead end can only happen under concurrent churn
                # (not during a static estimate); treat as failure.
                raise EstimatorError("random_tour: walk reached an isolated node")
            if buf_i >= chunk:
                buf = rng.random(chunk)
                buf_i = 0
            pos = int(indices[start + int(buf[buf_i] * deg)])
            buf_i += 1
            hops += 1
            if pos == init_pos:
                break
            phi += float(inv_deg[pos])
            if hops >= limit:
                raise EstimatorError(
                    f"random_tour: no return after {hops} hops (disconnected?)"
                )

        self.meter.add(MessageKind.WALK, hops)
        # The returning hop delivers the result to the initiator; no extra
        # reply message is needed (the tour ends at the initiator).
        value = d_init * phi
        return Estimate(
            value=value,
            messages=self.meter.total - before,
            algorithm=self.name,
            meta={
                "hops": hops,
                "phi": phi,
                "initiator_degree": d_init,
                "initiator": int(view.nodes[init_pos]),
            },
        )
