"""Gossip-based Aggregation (Jelasity & Montresor) — the epidemic candidate.

§III-C: "if exactly one node of the system holds a value equal to 1, and all
the other values are equal to 0, the average is 1/N".  Each round (cycle),
every node picks a random neighbour and the pair replaces both values with
their mean (the push/pull heuristic — 2 messages per contact, footnote 1).
Values converge to the average ``1/N₀`` where ``N₀`` is the size when the
epoch started; reading any node then yields ``N̂ = 1/value``.

Key properties reproduced here:

* **Mass conservation** — in a static overlay the sum of all values is
  invariant (up to FP rounding), so the protocol converges to *exactly*
  ``N₀`` — "This method converges toward exact system size in a stable
  system".  This is the property-tested core invariant.
* **Convergence speed** — variance contracts by a constant factor per
  round, so ≈40 rounds suffice at 100k nodes and ≈50 at 1M (Figs 5-6).
* **The conservative effect under churn** (§IV-D) — departures delete mass
  and arrivals join with value 0 (mass preserving), so within one epoch the
  estimate tracks *growth* but stays stale under *shrinkage*; periodic
  restarts (new epoch tags) are required, and heavy departures can
  disconnect the overlay and prevent convergence entirely (Fig 17's
  breakdown past ≈30% departures).

Two interfaces are provided:

* :class:`AggregationProtocol` — the raw round-based protocol: start an
  epoch, run rounds, read values; used by the static experiments (Figs 5-6)
  and by the tests.
* :class:`AggregationMonitor` — the continuous monitoring deployment used
  in the dynamic experiments (Figs 15-17): subscribes to a
  :class:`~repro.sim.rounds.RoundDriver`, restarts an epoch every
  ``restart_interval`` rounds (epoch tags), and records the end-of-epoch
  estimates.

Performance: the pairwise-averaging round is inherently sequential (each
contact must see the current values of both parties or mass conservation —
and with it exactness — is lost).  Per the HPC guides we vectorize what can
be vectorized (partner selection over the CSR snapshot, value remapping
after churn) and run the contact loop over plain Python lists, which are
≈5× faster than NumPy scalar indexing for this access pattern.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..overlay.graph import CsrView, OverlayGraph
from ..sim.messages import MessageKind, MessageMeter
from ..sim.rng import RngLike, as_generator, generator_from_state, generator_state
from ..sim.rounds import PRIORITY_PROTOCOL, RoundDriver
from .base import Estimate, EstimatorError

__all__ = ["AggregationProtocol", "AggregationMonitor"]


class AggregationProtocol:
    """The push-pull averaging protocol on one overlay.

    Parameters
    ----------
    graph:
        The overlay; may churn between rounds (values follow node ids:
        departed nodes take their value with them, joiners enter at 0).
    rng, meter:
        Random source and message accounting.
    """

    name = "aggregation"

    def __init__(
        self,
        graph: OverlayGraph,
        rng: RngLike = None,
        meter: Optional[MessageMeter] = None,
    ) -> None:
        self.graph = graph
        self.rng = as_generator(rng, self.name)
        self.meter = meter if meter is not None else MessageMeter()
        self._values: Dict[int, float] = {}
        self._epoch = 0
        self._rounds_in_epoch = 0
        self._initiator: Optional[int] = None
        # Per-round fast path: values aligned with a cached CSR view so the
        # dict round-trip is only paid when the overlay actually changed.
        self._cached_view: Optional[CsrView] = None
        self._cached_vals: Optional[List[float]] = None
        self._values_stale = False

    # ------------------------------------------------------------------
    # epoch lifecycle
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Current epoch tag (0 before the first :meth:`start_epoch`)."""
        return self._epoch

    @property
    def rounds_in_epoch(self) -> int:
        """Rounds executed since the current epoch started."""
        return self._rounds_in_epoch

    @property
    def initiator(self) -> Optional[int]:
        """The node that holds the 1 at epoch start."""
        return self._initiator

    def start_epoch(self, initiator: Optional[int] = None) -> int:
        """Begin a new counting epoch (a fresh tag, §IV-D).

        The initiator's value is set to 1, every other alive node to 0.
        Nodes reached later by messages of this tag — including nodes that
        join mid-epoch — participate starting from 0, which preserves mass.
        Returns the new epoch number.
        """
        if self.graph.size == 0:
            raise EstimatorError("aggregation: overlay is empty")
        if initiator is None:
            initiator = self.graph.random_node(self.rng)
        elif initiator not in self.graph:
            raise EstimatorError(f"aggregation: initiator {initiator} not alive")
        self._epoch += 1
        self._rounds_in_epoch = 0
        self._initiator = initiator
        self._values = {u: 0.0 for u in self.graph.nodes()}
        self._values[initiator] = 1.0
        self._cached_view = None
        self._cached_vals = None
        self._values_stale = False
        return self._epoch

    # ------------------------------------------------------------------
    # rounds
    # ------------------------------------------------------------------

    def run_round(self) -> int:
        """Execute one push-pull cycle; returns the number of contacts.

        Every alive node, in random order, contacts one uniformly random
        live neighbour; both adopt the mean of their values.  Each contact
        is metered as 2 :data:`~repro.sim.messages.MessageKind.EXCHANGE`
        messages (push + pull).
        """
        if self._epoch == 0:
            raise EstimatorError("aggregation: call start_epoch() first")
        view = self.graph.csr()
        n = view.n
        if n == 0:
            return 0
        vals = self._sync_values(view)

        # Vectorized partner choice, then the sequential averaging sweep.
        order = self.rng.permutation(n)
        partners = view.sample_neighbors(order, self.rng)
        contacts = 0
        order_list = order.tolist()
        partner_list = partners.tolist()
        for i, j in zip(order_list, partner_list):
            if j < 0:
                continue  # isolated node: nobody to exchange with this round
            mean = (vals[i] + vals[j]) * 0.5
            vals[i] = mean
            vals[j] = mean
            contacts += 1

        self.meter.add(MessageKind.EXCHANGE, 2 * contacts)
        self._values_stale = True  # the dict no longer mirrors the cache
        self._rounds_in_epoch += 1
        return contacts

    def run_rounds(self, rounds: int) -> int:
        """Run ``rounds`` cycles; returns total contacts."""
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        return sum(self.run_round() for _ in range(rounds))

    # ------------------------------------------------------------------
    # reading estimates
    # ------------------------------------------------------------------

    def value_of(self, node: int) -> float:
        """Current local value at ``node`` (its share of the unit mass).

        The node must be alive: a departed node's value is gone with it
        (even if the protocol state has not been projected onto the
        post-churn membership yet).
        """
        if node not in self.graph:
            raise EstimatorError(f"aggregation: node {node} is not alive")
        self._flush_cache()
        try:
            return self._values[node]
        except KeyError:
            raise EstimatorError(f"aggregation: node {node} not participating") from None

    def read(self, node: Optional[int] = None) -> Estimate:
        """Estimate ``N̂ = 1/value`` read at ``node``.

        Defaults to the epoch initiator; falls back to the best-informed
        alive node (largest value) when the initiator has departed — the
        natural deployment choice since "eventually the size estimation is
        available at each node" (§V).  Raises when the read node's value is
        not yet positive (the epidemic has not reached it).
        """
        self._flush_cache()
        if node is None:
            node = self._initiator
            if node is None or node not in self._values or node not in self.graph:
                node = self._best_informed()
        v = self.value_of(node)
        if v <= 0.0:
            raise EstimatorError(
                f"aggregation: node {node} has value {v}; epidemic has not reached it"
            )
        return Estimate(
            value=1.0 / v,
            messages=self.meter.total,
            algorithm=self.name,
            meta={
                "epoch": self._epoch,
                "rounds": self._rounds_in_epoch,
                "read_node": node,
                "value": v,
            },
        )

    def read_all(self) -> np.ndarray:
        """Per-node estimates (``inf`` where the value is still 0).

        Ordered by the current CSR snapshot's node order.
        """
        self._flush_cache()
        view = self.graph.csr()
        vals = np.array([self._values.get(int(u), 0.0) for u in view.nodes])
        with np.errstate(divide="ignore"):
            return np.where(vals > 0, 1.0 / np.maximum(vals, 1e-300), np.inf)

    def total_mass(self) -> float:
        """Sum of all alive values — 1.0 in a static epoch (conservation)."""
        self._flush_cache()
        return float(sum(self._values.values()))

    def estimate(self, rounds: int = 50, initiator: Optional[int] = None) -> Estimate:
        """Convenience one-shot: fresh epoch, ``rounds`` cycles, read.

        ``rounds=50`` is the paper's dynamic-setting choice ("we took 50
        ... for a fair comparison" — the 99%-convergence point at 1M
        nodes; 100k converges by ≈40).
        """
        before = self.meter.total
        self.start_epoch(initiator)
        self.run_rounds(rounds)
        est = self.read()
        return Estimate(
            value=est.value,
            messages=self.meter.total - before,
            algorithm=self.name,
            meta=est.meta,
        )

    # ------------------------------------------------------------------
    # state hand-off (docs/SNAPSHOTS.md)
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Pure-data capture of the epoch state, including the generator.

        The meter is an injected dependency captured by the caller (in the
        ``repair_replay`` hand-off the relevant meter is the repair one;
        the protocol's internal exchange meter does not influence any
        recorded result).  Values are listed in the flushed dict's
        iteration order so a restored protocol's value dict iterates
        identically — keeping even order-sensitive reductions
        (:meth:`total_mass`) bit-stable.
        """
        self._flush_cache()
        return {
            "epoch": self._epoch,
            "rounds_in_epoch": self._rounds_in_epoch,
            "initiator": self._initiator,
            "rng": generator_state(self.rng),
            "nodes": list(self._values.keys()),
            "values": list(self._values.values()),
        }

    @classmethod
    def restore(
        cls,
        graph: OverlayGraph,
        snap: Mapping[str, Any],
        meter: Optional[MessageMeter] = None,
    ) -> "AggregationProtocol":
        """Rebuild a protocol mid-epoch from a :meth:`snapshot` payload.

        ``graph`` (and ``meter``, when accounting matters) must themselves
        be restored to the captured instant — the replay-state classes in
        ``repro.runtime.snapshots`` orchestrate that.  The generator is
        rebuilt from the captured state, so future rounds proceed
        bit-identically to the uninterrupted run.
        """
        proto = cls(graph, rng=generator_from_state(snap["rng"]), meter=meter)
        proto._epoch = int(snap["epoch"])
        proto._rounds_in_epoch = int(snap["rounds_in_epoch"])
        initiator = snap.get("initiator")
        proto._initiator = None if initiator is None else int(initiator)
        proto._values = {
            int(u): float(v) for u, v in zip(snap["nodes"], snap["values"])
        }
        return proto

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _sync_values(self, view: CsrView) -> List[float]:
        """Array-of-values aligned with ``view``; rebuilt only on change.

        When the overlay churned since the last round, values are carried
        over by a vectorized sorted-array join (both snapshots' node arrays
        are sorted): present nodes keep their value, joiners enter at 0,
        leavers drop their value (the mass-loss the paper's "conservative
        effect" discussion hinges on).  The id→value dict is only
        materialized on demand (:meth:`_flush_cache`) for point reads.
        """
        if view is self._cached_view and self._cached_vals is not None:
            return self._cached_vals
        if self._cached_view is not None and self._cached_vals is not None:
            old_nodes = self._cached_view.nodes
            old_vals = np.asarray(self._cached_vals, dtype=np.float64)
        else:
            old_nodes = np.fromiter(
                self._values.keys(), dtype=np.int64, count=len(self._values)
            )
            order = np.argsort(old_nodes)
            old_nodes = old_nodes[order]
            old_vals = np.array(
                [self._values[int(u)] for u in old_nodes], dtype=np.float64
            )
        new_nodes = view.nodes
        pos = np.searchsorted(old_nodes, new_nodes)
        pos_clipped = np.minimum(pos, max(old_nodes.shape[0] - 1, 0))
        if old_nodes.shape[0]:
            found = old_nodes[pos_clipped] == new_nodes
            new_vals = np.where(found, old_vals[pos_clipped], 0.0)
        else:
            new_vals = np.zeros(new_nodes.shape[0], dtype=np.float64)
        vals = new_vals.tolist()
        self._cached_view = view
        self._cached_vals = vals
        self._values_stale = True
        return vals

    def _flush_cache(self) -> None:
        if (
            self._values_stale
            and self._cached_view is not None
            and self._cached_vals is not None
        ):
            nodes = self._cached_view.nodes.tolist()
            self._values = dict(zip(nodes, self._cached_vals))
            self._values_stale = False

    def _best_informed(self) -> int:
        self._flush_cache()
        alive = [(v, u) for u, v in self._values.items() if u in self.graph]
        if not alive:
            raise EstimatorError("aggregation: no participating node alive")
        return max(alive)[1]


class AggregationMonitor:
    """Continuous deployment with periodic restarts (the §IV-D fix).

    "To track size variations, the solution is to reinitialize an
    aggregation process at regular time intervals" using epoch tags.  The
    monitor runs one :class:`AggregationProtocol`, restarting every
    ``restart_interval`` rounds; at each restart boundary it reads the
    finished epoch's estimate and holds it until the next boundary (the
    staircase the dynamic figures show).

    Attach to a :class:`~repro.sim.rounds.RoundDriver` (churn hooks run
    first at equal times, so each round executes on the already-churned
    overlay).
    """

    def __init__(
        self,
        graph: OverlayGraph,
        restart_interval: int = 50,
        rng: RngLike = None,
        meter: Optional[MessageMeter] = None,
    ) -> None:
        if restart_interval < 1:
            raise ValueError("restart_interval must be >= 1")
        self.protocol = AggregationProtocol(graph, rng=rng, meter=meter)
        self.restart_interval = int(restart_interval)
        self.graph = graph
        #: (round, estimate) pairs recorded at each epoch boundary.
        self.epoch_estimates: List[Tuple[int, float]] = []
        #: Per-round held estimate (staircase), NaN before the first epoch ends.
        self.series: List[float] = []
        self._current_hold = float("nan")
        self._failures = 0

    @property
    def failures(self) -> int:
        """Epoch reads that failed (epidemic never reached the read node —
        the Fig 17 connectivity-collapse signature)."""
        return self._failures

    def attach(self, driver: RoundDriver) -> None:
        """Subscribe the per-round step at protocol priority."""
        driver.subscribe(self.on_round, priority=PRIORITY_PROTOCOL, label="aggregation")

    def on_round(self, round_number: int) -> None:
        """One monitor step: maybe close an epoch/restart, then gossip."""
        proto = self.protocol
        if proto.epoch == 0:
            if self.graph.size > 0:
                proto.start_epoch()
        elif proto.rounds_in_epoch >= self.restart_interval:
            self._close_epoch(round_number)
            if self.graph.size > 0:
                proto.start_epoch()
        if proto.epoch > 0 and self.graph.size > 0:
            proto.run_round()
        self.series.append(self._current_hold)

    # ------------------------------------------------------------------
    # state hand-off (docs/SNAPSHOTS.md)
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Pure-data capture of the monitor: protocol state + held estimate.

        ``series`` (the per-round staircase) is deliberately *not*
        captured: a restored monitor appends from an empty list, and the
        chunk runner maps absolute round numbers onto that local list —
        snapshots stay O(overlay), not O(rounds elapsed).
        """
        return {
            "protocol": self.protocol.snapshot(),
            "epoch_estimates": [[int(r), float(e)] for r, e in self.epoch_estimates],
            "hold": self._current_hold,
            "failures": self._failures,
        }

    @classmethod
    def restore(
        cls,
        graph: OverlayGraph,
        snap: Mapping[str, Any],
        restart_interval: int,
        meter: Optional[MessageMeter] = None,
    ) -> "AggregationMonitor":
        """Rebuild a monitor mid-run from a :meth:`snapshot` payload.

        As with :meth:`AggregationProtocol.restore`, the injected ``graph``
        (and ``meter``) must be restored to the same instant; the
        generator comes out of the protocol payload.  ``restart_interval``
        comes from the trial spec — it is configuration, not state.
        """
        mon = cls(graph, restart_interval=restart_interval, meter=meter)
        mon.protocol = AggregationProtocol.restore(graph, snap["protocol"], meter=meter)
        mon.epoch_estimates = [
            (int(r), float(e)) for r, e in snap.get("epoch_estimates", [])
        ]
        mon._current_hold = float(snap["hold"])
        mon._failures = int(snap["failures"])
        return mon

    def _close_epoch(self, round_number: int) -> None:
        try:
            est = self.protocol.read()
            self._current_hold = est.value
            self.epoch_estimates.append((round_number, est.value))
        except EstimatorError:
            # Epoch failed to converge (disconnection / initiator loss with
            # nothing informed): hold the previous estimate, count the miss.
            self._failures += 1
