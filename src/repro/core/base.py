"""Common estimator interface and result records.

Every algorithm in the study answers the same question — *how many nodes are
alive?* — but with different lifecycles:

* probe-style estimators (:class:`~repro.core.sample_collide.SampleCollideEstimator`,
  :class:`~repro.core.hops_sampling.HopsSamplingEstimator`,
  :class:`~repro.core.random_tour.RandomTourEstimator`) produce one estimate
  per :meth:`SizeEstimator.estimate` call, from scratch;
* the gossip :class:`~repro.core.aggregation.AggregationProtocol` runs
  continuously in rounds and can be *read* at any time on any node.

Both expose :class:`Estimate` records carrying the value, its message cost,
and algorithm-specific diagnostics, so experiment runners and Table I
treat all candidates uniformly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..overlay.graph import OverlayGraph
from ..sim.messages import MessageMeter
from ..sim.rng import RngLike, as_generator

__all__ = ["Estimate", "SizeEstimator", "EstimatorError"]


class EstimatorError(RuntimeError):
    """Raised when an estimator cannot produce an estimate (e.g. empty
    overlay, initiator departed, disconnected probe)."""


@dataclass(frozen=True)
class Estimate:
    """One size estimation outcome.

    Attributes
    ----------
    value:
        The size estimate ``N̂`` (always > 0 for a successful estimate).
    messages:
        Number of messages this estimation cost (the paper's overhead
        metric), i.e. the meter delta attributable to this estimate.
    algorithm:
        Name of the producing algorithm.
    meta:
        Algorithm-specific diagnostics (samples drawn, nodes reached,
        rounds elapsed, ...), used by the analysis sections.
    """

    value: float
    messages: int
    algorithm: str
    meta: Dict[str, Any] = field(default_factory=dict)

    def quality(self, true_size: float) -> float:
        """Quality % relative to ``true_size`` (paper's normalized y-axis)."""
        if true_size <= 0:
            raise ValueError("true size must be positive")
        return 100.0 * self.value / true_size


class SizeEstimator(abc.ABC):
    """Base class for probe-style (one-shot) size estimators.

    Parameters
    ----------
    graph:
        The overlay being measured.  The estimator never uses global
        knowledge beyond what its protocol defines; the graph object stands
        in for the network.
    rng:
        Random source (seed, generator or hub).
    meter:
        Shared message meter; a private one is created when omitted.
    """

    #: Human-readable algorithm name; subclasses override.
    name: str = "estimator"

    def __init__(
        self,
        graph: OverlayGraph,
        rng: RngLike = None,
        meter: Optional[MessageMeter] = None,
    ) -> None:
        self.graph = graph
        self.rng = as_generator(rng, self.name)
        self.meter = meter if meter is not None else MessageMeter()

    @abc.abstractmethod
    def estimate(self) -> Estimate:
        """Run one full estimation and return its result.

        Implementations must account every protocol message on
        ``self.meter`` and report the per-call delta in
        :attr:`Estimate.messages`.
        """

    def _require_nonempty(self) -> None:
        if self.graph.size == 0:
            raise EstimatorError(f"{self.name}: overlay is empty")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n={self.graph.size})"
