"""Name-based estimator factory.

Experiment configs and the CLI refer to algorithms by short names; this
registry maps them to constructors.  Third-party estimators can register
themselves via :func:`register` (the extension point a downstream user of
the library would reach for first).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from ..overlay.graph import OverlayGraph
from .aggregation import AggregationProtocol
from .hops_sampling import GossipSampleEstimator, HopsSamplingEstimator
from .random_tour import RandomTourEstimator
from .sample_collide import InvertedBirthdayEstimator, SampleCollideEstimator

__all__ = ["register", "create", "available", "RegistryError"]


class RegistryError(KeyError):
    """Unknown estimator name."""


_FACTORIES: Dict[str, Callable[..., Any]] = {}


def register(name: str, factory: Callable[..., Any], overwrite: bool = False) -> None:
    """Register ``factory`` under ``name``.

    ``factory(graph, **kwargs)`` must return an object with an
    ``estimate()`` method.  Re-registration requires ``overwrite=True``.
    """
    if not name or not isinstance(name, str):
        raise ValueError("estimator name must be a non-empty string")
    if name in _FACTORIES and not overwrite:
        raise ValueError(f"estimator {name!r} already registered")
    _FACTORIES[name] = factory


def create(name: str, graph: OverlayGraph, **kwargs: Any):
    """Instantiate the estimator registered under ``name``."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise RegistryError(
            f"unknown estimator {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    return factory(graph, **kwargs)


def available() -> List[str]:
    """Sorted list of registered estimator names."""
    return sorted(_FACTORIES)


# Built-in algorithms of the study.
register("sample_collide", SampleCollideEstimator)
register("inverted_birthday", InvertedBirthdayEstimator)
register("random_tour", RandomTourEstimator)
register("hops_sampling", HopsSamplingEstimator)
register("gossip_sample", GossipSampleEstimator)
register("aggregation", AggregationProtocol)

# Structured-overlay extras (id-uniformity-dependent; §II background class).
from .idspace import IntervalDensityEstimator, NeighborDistanceEstimator  # noqa: E402

register("interval_density", IntervalDensityEstimator)
register("neighbor_distance", NeighborDistanceEstimator)
