"""Analytic convergence models for the three candidates.

The paper reports its convergence observations empirically ("around 40
rounds for 100,000 nodes and around 50 for 1,000,000") without the theory;
this module supplies the standard analyses so predictions and measurements
can be cross-checked (the test-suite does), and so users can size epochs
for *their* N instead of interpolating from two data points.

* **Aggregation** — Jelasity & Montresor show push-pull averaging contracts
  the empirical variance of the values by a constant factor per cycle
  (``1/(2·sqrt(e))`` ≈ 0.303 for perfect uniform peer choice;
  neighbour-restricted gossip on the paper's degree-7 random overlays
  measures ≈0.5 — see the calibration test).  Starting from one 1 among N
  zeros, the initial coefficient of variation is ``sqrt(N)``, so reaching a
  relative read error ``eps`` takes about
  ``(log N - 2·log eps) / -log rho`` cycles — logarithmic in N, matching the
  paper's 40-vs-50 observation.
* **Sample&Collide** — the number of samples to the ``l``-th collision
  concentrates at ``sqrt(2lN)``; with ``T·d̄ + 1`` messages per sample this
  gives the closed-form overhead used across the benchmarks.
* **HopsSampling** — a fanout-``c`` push epidemic with one re-gossip
  reaches the branching-process fixed point ``z`` solving
  ``z = 1 - exp(-c_eff · z)`` and does so in ``O(log N)`` rounds; the fixed
  point is what bounds the estimator's reach (and hence its bias).
"""

from __future__ import annotations

import math

__all__ = [
    "aggregation_contraction_rate",
    "aggregation_rounds_needed",
    "epidemic_fixed_point",
    "epidemic_rounds_to_saturation",
    "sample_collide_expected_samples",
    "sample_collide_expected_messages",
]

#: Ideal push-pull variance contraction factor per cycle (uniform peers).
IDEAL_CONTRACTION = 1.0 / (2.0 * math.sqrt(math.e))


def aggregation_contraction_rate(ideal: bool = False) -> float:
    """Per-cycle variance contraction factor ``rho``.

    ``ideal=True`` returns Jelasity-Montresor's ``1/(2 sqrt(e)) ≈ 0.303``
    (uniform random peers).  The default returns 0.5, an empirical fit for
    neighbour-restricted push-pull on the paper's degree-7 random overlays
    (validated in ``tests/core/test_convergence.py`` against measured
    contraction and measured rounds-to-1%).
    """
    return IDEAL_CONTRACTION if ideal else 0.5


def aggregation_rounds_needed(
    n: int, eps: float = 0.01, rho: float = 0.5
) -> int:
    """Predicted cycles until the read error falls below ``eps``.

    Derivation: the coefficient of variation of the node values starts at
    ``sqrt(N)`` (one spike among zeros) and contracts by ``sqrt(rho)`` per
    cycle (variance by ``rho``); the initiator's read is accurate to
    ``eps`` once ``sqrt(N) · rho^(r/2) <= eps``, i.e.

        ``r >= (log N - 2 log eps) / (-log rho)``.

    With the measured rho=0.5: n=10⁵ needs ≈37 cycles at eps=0.1% and
    n=10⁶ ≈40 — bracketing the paper's "around 40 / around 50" readings
    (their plot resolution is ±5 rounds).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if not (0.0 < eps < 1.0):
        raise ValueError("eps must be in (0, 1)")
    if not (0.0 < rho < 1.0):
        raise ValueError("rho must be in (0, 1)")
    r = (math.log(n) - 2.0 * math.log(eps)) / (-math.log(rho))
    return max(int(math.ceil(r)), 1)


def epidemic_fixed_point(effective_fanout: float, tol: float = 1e-12) -> float:
    """Final reached fraction ``z`` solving ``z = 1 − exp(−c·z)``.

    ``c`` is the *effective* per-node fanout (raw fanout plus the expected
    extra sends from duplicate-triggered re-gossip).  For c <= 1 the
    epidemic is subcritical and z = 0.
    """
    c = float(effective_fanout)
    if c <= 1.0:
        return 0.0
    z = 1.0 - math.exp(-c)  # start from the c >> 1 approximation
    for _ in range(200):
        nxt = 1.0 - math.exp(-c * z)
        if abs(nxt - z) < tol:
            return nxt
        z = nxt
    return z  # pragma: no cover - converges in a handful of iterations


def epidemic_rounds_to_saturation(n: int, effective_fanout: float) -> int:
    """Rounds for a fanout-``c`` push epidemic's *growth phase*: the
    exponential spread takes ``log n / log c`` rounds plus a small
    constant.  This is a lower bound on the measured ``spread_rounds`` of
    :class:`~repro.core.hops_sampling.HopsSamplingEstimator`, whose
    quiescence additionally includes the duplicate-triggered re-gossip
    endgame (empirically up to ≈2-3× the growth phase)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    c = float(effective_fanout)
    if c <= 1.0:
        raise ValueError("effective fanout must exceed 1 for saturation")
    return int(math.ceil(math.log(max(n, 2)) / math.log(c))) + 3


def sample_collide_expected_samples(n: int, l: int) -> float:
    """Expected samples drawn until the ``l``-th collision: ``sqrt(2lN)``."""
    if n < 1 or l < 1:
        raise ValueError("n and l must be >= 1")
    return math.sqrt(2.0 * l * n)


def sample_collide_expected_messages(
    n: int, l: int, timer: float = 10.0, avg_degree: float = 7.2
) -> float:
    """Expected messages per estimation: samples × (T·d̄ + 1).

    Reproduces Table I's 0.5M at (n=10⁵, l=200, T=10, d̄=7.2) within 5%.
    """
    if timer <= 0 or avg_degree <= 0:
        raise ValueError("timer and avg_degree must be positive")
    return sample_collide_expected_samples(n, l) * (timer * avg_degree + 1.0)
