"""Repair ablation — what overlay maintenance does to the Fig 17 breakdown.

The paper attributes Aggregation's failure under shrinkage to "the loss of
connectivity of the overlay" with no repair (§IV-D) and suggests longer
epochs as a fix.  Real systems instead *repair*: this experiment reruns the
Fig 17 scenario under three maintenance policies (none / bounded-effort /
ideal) and reports late-run accuracy plus the maintenance traffic spent —
quantifying how much repair buys and what it costs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..analysis.curves import TableResult
from ..churn.models import shrinking_trace
from ..churn.scheduler import ChurnScheduler
from ..core.aggregation import AggregationMonitor
from ..overlay.repair import DegreeRepair, FullRepair, NoRepair
from ..sim.messages import MessageMeter
from ..sim.rng import RngHub
from ..sim.rounds import RoundDriver
from .config import ExperimentConfig, resolve_scale
from .runner import build_overlay

__all__ = ["repair_comparison"]


def repair_comparison(
    scale: Optional[object] = None, seed: Optional[int] = None
) -> TableResult:
    """Fig 17's shrinking scenario under three repair policies."""
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    n = cfg.scale.n_100k
    horizon = cfg.scale.aggregation_horizon

    table = TableResult(
        table_id="ablation_repair",
        title=(
            f"Aggregation under -50% shrinkage with overlay repair "
            f"(n={n}, {horizon} rounds)"
        ),
        columns=[
            "policy",
            "late_rel_error_pct",
            "failed_epochs",
            "repair_messages",
        ],
        notes=(
            "paper attributes the fig17 breakdown to connectivity loss with "
            "no repair; maintenance should suppress it"
        ),
    )

    policies = {
        "none (paper)": lambda g, hub, meter: NoRepair(g, rng=hub.stream("rep"), meter=meter),
        "degree repair (min 3 -> 5)": lambda g, hub, meter: DegreeRepair(
            g, min_degree=3, target_degree=5,
            max_links_per_round=max(n // 50, 10),
            rng=hub.stream("rep"), meter=meter,
        ),
        "full repair (ideal)": lambda g, hub, meter: FullRepair(
            g, target_degree=7, rng=hub.stream("rep"), meter=meter
        ),
    }

    for name, make_policy in policies.items():
        hub = RngHub(cfg.seed).child(f"repair:{name}")
        graph = build_overlay(cfg, n, hub)
        driver = RoundDriver()
        trace = shrinking_trace(
            n, 0.5, start=1.0, end=float(horizon), steps=max(horizon // 10, 10)
        )
        ChurnScheduler(
            graph, trace, rng=hub.stream("churn"), max_degree=cfg.max_degree
        ).attach(driver)
        repair_meter = MessageMeter()
        policy = make_policy(graph, hub, repair_meter)
        policy.attach(driver)
        monitor = AggregationMonitor(
            graph,
            restart_interval=cfg.scale.restart_interval,
            rng=hub.stream("monitor"),
        )
        monitor.attach(driver)
        sizes = []
        driver.subscribe(lambda rnd, g=graph, s=sizes: s.append(g.size), priority=30)
        driver.run(horizon)

        est = np.asarray(monitor.series, dtype=float)
        real = np.asarray(sizes, dtype=float)
        q = slice(3 * len(real) // 4, None)  # the quarter where fig17 breaks
        late_err = float(np.nanmean(np.abs(est[q] - real[q]) / real[q])) * 100.0
        table.add_row(
            policy=name,
            late_rel_error_pct=round(late_err, 1),
            failed_epochs=monitor.failures,
            repair_messages=repair_meter.total,
        )
    return table
