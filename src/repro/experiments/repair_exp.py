"""Repair ablation — what overlay maintenance does to the Fig 17 breakdown.

The paper attributes Aggregation's failure under shrinkage to "the loss of
connectivity of the overlay" with no repair (§IV-D) and suggests longer
epochs as a fix.  Real systems instead *repair*: this experiment reruns the
Fig 17 scenario under three maintenance policies (none / bounded-effort /
ideal) and reports late-run accuracy plus the maintenance traffic spent —
quantifying how much repair buys and what it costs.

Execution model
---------------
One cached ``repair_replay`` batch per policy.  The maintenance policy
travels as a declarative :class:`~repro.overlay.repair.RepairPolicySpec`
and is rebuilt against the worker-local graph; the churn trace ships as a
JSON payload.  Each trial is one observed round of the scenario's last
quarter (where Fig 17 breaks), carrying the held estimate, the true size,
and the cumulative repair traffic / failed-epoch counters — the final
round therefore carries the serial run's totals.  Passing ``runtime=``
shards the three policies over workers and serves warm reruns from the
store; chunks replay the churn prefix from round 1, so results are
bit-identical to the serial loop at any worker count.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..analysis.curves import TableResult
from ..churn.models import shrinking_trace
from ..overlay.repair import RepairPolicySpec
from ..runtime import RuntimeOptions, TrialSpec, sweep, trace_to_payload
from ..sim.rng import derive_seed
from .config import ExperimentConfig, resolve_scale
from .runner import overlay_spec

__all__ = ["repair_comparison"]


def repair_comparison(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    runtime: Optional[RuntimeOptions] = None,
) -> TableResult:
    """Fig 17's shrinking scenario under three repair policies."""
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    n = cfg.scale.n_100k
    horizon = cfg.scale.aggregation_horizon

    table = TableResult(
        table_id="ablation_repair",
        title=(
            f"Aggregation under -50% shrinkage with overlay repair "
            f"(n={n}, {horizon} rounds)"
        ),
        columns=[
            "policy",
            "late_rel_error_pct",
            "failed_epochs",
            "repair_messages",
        ],
        notes=(
            "paper attributes the fig17 breakdown to connectivity loss with "
            "no repair; maintenance should suppress it"
        ),
    )

    policies = {
        "none (paper)": RepairPolicySpec.none(),
        "degree repair (min 3 -> 5)": RepairPolicySpec.degree(
            min_degree=3, target_degree=5, max_links_per_round=max(n // 50, 10)
        ),
        "full repair (ideal)": RepairPolicySpec.full(target_degree=7),
    }
    trace_payload = trace_to_payload(
        shrinking_trace(
            n, 0.5, start=1.0, end=float(horizon), steps=max(horizon // 10, 10)
        )
    )
    # the quarter where fig17 breaks: rounds (3*horizon//4, horizon]
    q_start = 3 * horizon // 4

    def _policy_batch(name: str) -> List[TrialSpec]:
        # the serial loop seeded each policy's hub from its display name
        hub_seed = derive_seed(cfg.seed, f"child:repair:{name}")
        params = {
            "trace": trace_payload,
            "max_degree": cfg.max_degree,
            "restart_interval": cfg.scale.restart_interval,
            "repair": policies[name].as_config(),
        }
        return [
            TrialSpec(
                "repair_replay",
                hub_seed,
                rnd,
                overlay=overlay_spec(cfg, n),
                params=params,
            )
            for rnd in range(q_start + 1, horizon + 1)
        ]

    grid = sweep(_policy_batch, policies, runtime=runtime, tag="ablation_repair")
    for name, results in grid.items():
        est = np.asarray([r.value for r in results], dtype=float)
        real = np.asarray([r.true_size for r in results], dtype=float)
        late_err = float(np.nanmean(np.abs(est - real) / real)) * 100.0
        final = results[-1]  # round == horizon: cumulative counters = totals
        table.add_row(
            policy=name,
            late_rel_error_pct=round(late_err, 1),
            failed_epochs=int(final.extra["failures"]),
            repair_messages=int(final.extra["messages"]),
        )
    return table
