"""Command-line entry point: regenerate any figure or table of the paper.

Examples
--------
Run Fig 1 at the default scale and print the ASCII chart::

    repro-experiment fig1

Run Table I at the small (benchmark) scale and save CSVs::

    repro-experiment table1 --scale small --csv-dir results/

Run everything (can take a while at default scale)::

    repro-experiment all --scale small

Shard the trials of each figure over 4 worker processes and cache results
so the next identical invocation is served from disk::

    repro-experiment fig1 --scale small --workers 4 --cache-dir ~/.cache/repro
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time
from typing import List, Optional

from ..analysis.ascii_chart import render_figure, render_table
from ..analysis.curves import FigureResult, TableResult
from ..runtime import LogProgress, RuntimeOptions, supports_runtime
from . import FIGURES, TABLES
from .config import SCALES

__all__ = ["main", "build_parser"]


def _cache_dir(value: str) -> pathlib.Path:
    """Reject a cache path that exists but is not a directory up front,
    instead of tracebacking at save time after the trials already ran."""
    path = pathlib.Path(value)
    if path.exists() and not path.is_dir():
        raise argparse.ArgumentTypeError(
            f"--cache-dir {value!r} exists and is not a directory"
        )
    return path


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Regenerate figures/tables from 'Peer to peer size estimation in "
            "large and dynamic networks: A comparative study' (HPDC 2006)."
        ),
    )
    targets = sorted(FIGURES) + sorted(TABLES) + ["all", "list"]
    parser.add_argument(
        "target",
        choices=targets,
        help="experiment to run ('list' prints the catalogue, 'all' runs everything)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="scale preset (default: $REPRO_SCALE or 'default')",
    )
    parser.add_argument("--seed", type=int, default=None, help="master seed override")
    parser.add_argument(
        "--csv-dir",
        type=pathlib.Path,
        default=None,
        help="directory to write per-experiment CSV files into",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress chart rendering (CSV only)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=int(os.environ.get("REPRO_WORKERS", "1")),
        help=(
            "worker processes for trial execution (default: $REPRO_WORKERS or 1; "
            "results are bit-identical at any worker count)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=_cache_dir,
        default=None,
        help=(
            "content-addressed results store; reruns of an identical "
            "experiment are served from it without recomputation"
        ),
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="recompute even when the cache holds the experiment (and refresh it)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="log trial progress to stderr",
    )
    return parser


def _runtime_options(args) -> RuntimeOptions:
    """Map parsed CLI arguments onto the runtime's execution knobs."""
    return RuntimeOptions.create(
        workers=args.workers,
        cache_dir=args.cache_dir,
        force=args.force,
        progress=LogProgress() if args.progress else None,
    )


def _run_one(name: str, args) -> object:
    fn = FIGURES.get(name) or TABLES.get(name)
    kwargs = {"scale": args.scale, "seed": args.seed}
    if supports_runtime(fn):
        kwargs["runtime"] = _runtime_options(args)
    start = time.perf_counter()
    result = fn(**kwargs)
    elapsed = time.perf_counter() - start
    if not args.quiet:
        if isinstance(result, FigureResult):
            sys.stdout.write(render_figure(result))
        elif isinstance(result, TableResult):
            sys.stdout.write(render_table(result))
        sys.stdout.write(f"  [{name} completed in {elapsed:.1f}s]\n\n")
    if args.csv_dir is not None:
        args.csv_dir.mkdir(parents=True, exist_ok=True)
        out = args.csv_dir / f"{name}.csv"
        out.write_text(result.to_csv())
        if not args.quiet:
            sys.stdout.write(f"  wrote {out}\n")
    return result


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.target == "list":
        sys.stdout.write("figures: " + " ".join(sorted(FIGURES)) + "\n")
        sys.stdout.write("tables:  " + " ".join(sorted(TABLES)) + "\n")
        return 0
    names = (
        sorted(FIGURES) + sorted(TABLES) if args.target == "all" else [args.target]
    )
    for name in names:
        _run_one(name, args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
