"""Command-line entry point: experiments + results-cache lifecycle.

The CLI is organized in subcommands::

    repro-experiment run <target> [options]   # regenerate a figure/table
    repro-experiment list                     # print the catalogue
    repro-experiment cache ls                 # artifact table
    repro-experiment cache stats              # aggregate store metadata
    repro-experiment cache gc [--dry-run]     # age/size-based eviction

Examples
--------
Run Fig 1 at the default scale and print the ASCII chart::

    repro-experiment run fig1

Run Table I at the small (benchmark) scale and save CSVs::

    repro-experiment run table1 --scale small --csv-dir results/

Shard the trials of each figure over 4 worker processes and cache results
so the next identical invocation is served from disk::

    repro-experiment run fig1 --scale small --workers 4 --cache-dir ~/.cache/repro

Inspect and prune that cache::

    repro-experiment cache ls --cache-dir ~/.cache/repro
    repro-experiment cache gc --cache-dir ~/.cache/repro --max-age-days 30 --dry-run

``repro-experiment fig1`` (the pre-subcommand form) still works: a bare
target is rewritten to ``run <target>`` for backwards compatibility.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import sys
import time
from typing import List, Optional

from ..analysis.ascii_chart import render_figure, render_table
from ..analysis.curves import FigureResult, TableResult
from ..runtime import LogProgress, ResultsStore, RuntimeOptions, supports_runtime
from . import FIGURES, TABLES
from .config import SCALES

__all__ = ["main", "build_parser"]


def _cache_dir(value: str) -> pathlib.Path:
    """Reject a cache path that exists but is not a directory up front,
    instead of tracebacking at save time after the trials already ran."""
    path = pathlib.Path(value)
    if path.exists() and not path.is_dir():
        raise argparse.ArgumentTypeError(
            f"--cache-dir {value!r} exists and is not a directory"
        )
    return path


_SIZE_UNITS = {
    "": 1,
    "b": 1,
    "k": 10**3,
    "kb": 10**3,
    "m": 10**6,
    "mb": 10**6,
    "g": 10**9,
    "gb": 10**9,
    "kib": 2**10,
    "mib": 2**20,
    "gib": 2**30,
}


def _parse_size(value: str) -> int:
    """Parse a human size ('500k', '1.5GB', '64MiB', plain bytes) to bytes."""
    m = re.fullmatch(r"\s*([0-9]+(?:\.[0-9]+)?)\s*([A-Za-z]*)\s*", value)
    if not m or m.group(2).lower() not in _SIZE_UNITS:
        raise argparse.ArgumentTypeError(
            f"cannot parse size {value!r} (try '500k', '1.5GB', '64MiB' or bytes)"
        )
    return int(float(m.group(1)) * _SIZE_UNITS[m.group(2).lower()])


def _format_size(n: int) -> str:
    for unit, div in (("GB", 10**9), ("MB", 10**6), ("kB", 10**3)):
        if n >= div:
            return f"{n / div:.1f}{unit}"
    return f"{n}B"


def _format_age(seconds: float) -> str:
    if seconds >= 86400:
        return f"{seconds / 86400:.1f}d"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.0f}m"
    return f"{max(seconds, 0):.0f}s"


def _add_run_parser(subparsers) -> None:
    run = subparsers.add_parser(
        "run",
        help="regenerate a figure/table (or 'all')",
        description="Regenerate one experiment, or every one with 'all'.",
    )
    run.add_argument(
        "target",
        choices=sorted(FIGURES) + sorted(TABLES) + ["all"],
        help="experiment to run ('all' runs everything)",
    )
    run.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="scale preset (default: $REPRO_SCALE or 'default')",
    )
    run.add_argument("--seed", type=int, default=None, help="master seed override")
    run.add_argument(
        "--csv-dir",
        type=pathlib.Path,
        default=None,
        help="directory to write per-experiment CSV files into",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress chart rendering (CSV only)"
    )
    run.add_argument(
        "--workers",
        type=int,
        default=int(os.environ.get("REPRO_WORKERS", "1")),
        help=(
            "worker processes for trial execution (default: $REPRO_WORKERS or 1; "
            "results are bit-identical at any worker count)"
        ),
    )
    env_cache = os.environ.get("REPRO_CACHE_DIR") or None
    run.add_argument(
        "--cache-dir",
        type=_cache_dir,
        default=pathlib.Path(env_cache) if env_cache else None,
        help=(
            "content-addressed results store (default: $REPRO_CACHE_DIR); "
            "reruns of an identical experiment are served from it without "
            "recomputation"
        ),
    )
    run.add_argument(
        "--force",
        action="store_true",
        help="recompute even when the cache holds the experiment (and refresh it)",
    )
    run.add_argument(
        "--progress",
        action="store_true",
        help="log trial progress to stderr",
    )


def _add_cache_parser(subparsers) -> None:
    cache = subparsers.add_parser(
        "cache",
        help="inspect / garbage-collect the results store",
        description=(
            "Lifecycle tooling for the content-addressed results store "
            "written by 'run --cache-dir' (and the REPRO_CACHE_DIR-driven "
            "benchmark runs)."
        ),
    )
    sub = cache.add_subparsers(dest="cache_command", required=True)

    def _dir_arg(p):
        p.add_argument(
            "--cache-dir",
            type=_cache_dir,
            default=None,
            help="store directory (default: $REPRO_CACHE_DIR)",
        )

    ls = sub.add_parser(
        "ls",
        help="table of artifacts (key, tag, trials, size, age)",
        description=(
            "List every artifact: content key, experiment tag, trial count, "
            "size, age since creation, and whether it has served a cache hit."
        ),
    )
    _dir_arg(ls)

    stats = sub.add_parser(
        "stats",
        help="aggregate size/hit metadata",
        description="Aggregate store statistics, including a per-tag breakdown.",
    )
    _dir_arg(stats)

    gc = sub.add_parser(
        "gc",
        help="evict artifacts by age and/or size budget",
        description=(
            "Evict artifacts older than --max-age-days, then (oldest first) "
            "until the store fits --max-size.  --dry-run reports the "
            "selection without deleting anything."
        ),
    )
    _dir_arg(gc)
    gc.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="evict artifacts older than this many days (by creation time)",
    )
    gc.add_argument(
        "--max-size",
        type=_parse_size,
        default=None,
        help="total-size budget ('500k', '1.5GB', '64MiB' or bytes)",
    )
    gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be evicted; delete nothing",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Regenerate figures/tables from 'Peer to peer size estimation in "
            "large and dynamic networks: A comparative study' (HPDC 2006), "
            "and manage the content-addressed results cache."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_run_parser(subparsers)
    subparsers.add_parser("list", help="print the experiment catalogue")
    _add_cache_parser(subparsers)
    return parser


def _runtime_options(args, tag: Optional[str] = None) -> RuntimeOptions:
    """Map parsed CLI arguments onto the runtime's execution knobs."""
    return RuntimeOptions.create(
        workers=args.workers,
        cache_dir=args.cache_dir,
        force=args.force,
        progress=LogProgress() if args.progress else None,
        tag=tag,
    )


def _run_one(name: str, args) -> object:
    fn = FIGURES.get(name) or TABLES.get(name)
    kwargs = {"scale": args.scale, "seed": args.seed}
    if supports_runtime(fn):
        kwargs["runtime"] = _runtime_options(args, tag=name)
    start = time.perf_counter()
    result = fn(**kwargs)
    elapsed = time.perf_counter() - start
    if not args.quiet:
        if isinstance(result, FigureResult):
            sys.stdout.write(render_figure(result))
        elif isinstance(result, TableResult):
            sys.stdout.write(render_table(result))
        sys.stdout.write(f"  [{name} completed in {elapsed:.1f}s]\n\n")
    if args.csv_dir is not None:
        args.csv_dir.mkdir(parents=True, exist_ok=True)
        out = args.csv_dir / f"{name}.csv"
        out.write_text(result.to_csv())
        if not args.quiet:
            sys.stdout.write(f"  wrote {out}\n")
    return result


def _cmd_run(args) -> int:
    names = (
        sorted(FIGURES) + sorted(TABLES) if args.target == "all" else [args.target]
    )
    for name in names:
        _run_one(name, args)
    return 0


def _cmd_list() -> int:
    sys.stdout.write("figures: " + " ".join(sorted(FIGURES)) + "\n")
    sys.stdout.write("tables:  " + " ".join(sorted(TABLES)) + "\n")
    return 0


def _resolve_store(args, parser: argparse.ArgumentParser) -> ResultsStore:
    cache_dir = args.cache_dir
    if cache_dir is None:
        env = os.environ.get("REPRO_CACHE_DIR")
        if env:
            cache_dir = pathlib.Path(env)
    if cache_dir is None:
        parser.error("no cache directory: pass --cache-dir or set $REPRO_CACHE_DIR")
    return ResultsStore(cache_dir)


def _cmd_cache_ls(store: ResultsStore) -> int:
    infos = store.artifacts()
    if not infos:
        sys.stdout.write(f"{store.root}: empty store\n")
        return 0
    now = time.time()
    header = f"{'KEY':<14} {'TAG':<24} {'TRIALS':>6} {'SIZE':>8} {'AGE':>7}  HIT\n"
    sys.stdout.write(header)
    for info in infos:
        sys.stdout.write(
            f"{info.key[:12] + '..':<14} "
            f"{(info.tag or '-')[:24]:<24} "
            f"{info.trials:>6} "
            f"{_format_size(info.size_bytes):>8} "
            f"{_format_age(info.age_seconds(now)):>7}  "
            f"{'yes' if info.hit else '-'}\n"
        )
    sys.stdout.write(
        f"{len(infos)} artifact(s), "
        f"{_format_size(sum(i.size_bytes for i in infos))} total\n"
    )
    return 0


def _cmd_cache_stats(store: ResultsStore) -> int:
    st = store.stats()
    sys.stdout.write(f"store:          {store.root}\n")
    sys.stdout.write(f"artifacts:      {st.artifacts}\n")
    sys.stdout.write(f"total size:     {_format_size(st.total_bytes)}\n")
    sys.stdout.write(f"cached trials:  {st.trials}\n")
    sys.stdout.write(f"hit artifacts:  {st.hit_artifacts}\n")
    sys.stdout.write(f"stale schema:   {st.stale_schema}\n")
    if st.artifacts:
        sys.stdout.write(
            f"age range:      {_format_age(st.newest_age_seconds)} .. "
            f"{_format_age(st.oldest_age_seconds)}\n"
        )
    if st.by_tag:
        sys.stdout.write("by tag:\n")
        for tag, bucket in sorted(st.by_tag.items()):
            sys.stdout.write(
                f"  {tag:<28} {bucket['artifacts']:>4} artifact(s) "
                f"{_format_size(bucket['bytes']):>8} {bucket['trials']:>6} trial(s)\n"
            )
    return 0


def _cmd_cache_gc(store: ResultsStore, args, parser: argparse.ArgumentParser) -> int:
    if args.max_age_days is None and args.max_size is None:
        parser.error("cache gc needs a policy: --max-age-days and/or --max-size")
    report = store.gc(
        max_age_seconds=(
            None if args.max_age_days is None else args.max_age_days * 86400.0
        ),
        max_total_bytes=args.max_size,
        dry_run=args.dry_run,
    )
    verb = "would evict" if report.dry_run else "evicted"
    for info in report.evicted:
        sys.stdout.write(
            f"{verb} {info.key[:12]}.. "
            f"({info.tag or '-'}, {_format_size(info.size_bytes)}, "
            f"{_format_age(info.age_seconds())} old)\n"
        )
    sys.stdout.write(
        f"{verb} {len(report.evicted)} artifact(s) "
        f"({_format_size(report.evicted_bytes)}); "
        f"kept {report.kept} ({_format_size(report.kept_bytes)})\n"
    )
    return 0


#: Bare targets accepted for backwards compatibility with the
#: pre-subcommand CLI (``repro-experiment fig1``).
_LEGACY_TARGETS = frozenset(FIGURES) | frozenset(TABLES) | {"all"}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # The pre-subcommand parser accepted optionals before the target
    # ("--scale small fig1"), so rewrite whenever a bare target appears
    # anywhere and no subcommand was given.
    if (
        argv
        and not any(a in ("run", "list", "cache") for a in argv)
        and any(a in _LEGACY_TARGETS for a in argv)
    ):
        argv = ["run"] + argv
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    # cache family
    store = _resolve_store(args, parser)
    if args.cache_command == "ls":
        return _cmd_cache_ls(store)
    if args.cache_command == "stats":
        return _cmd_cache_stats(store)
    return _cmd_cache_gc(store, args, parser)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
