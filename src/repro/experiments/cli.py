"""Command-line entry point: regenerate any figure or table of the paper.

Examples
--------
Run Fig 1 at the default scale and print the ASCII chart::

    repro-experiment fig1

Run Table I at the small (benchmark) scale and save CSVs::

    repro-experiment table1 --scale small --csv-dir results/

Run everything (can take a while at default scale)::

    repro-experiment all --scale small
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import List, Optional

from ..analysis.ascii_chart import render_figure, render_table
from ..analysis.curves import FigureResult, TableResult
from . import FIGURES, TABLES
from .config import SCALES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Regenerate figures/tables from 'Peer to peer size estimation in "
            "large and dynamic networks: A comparative study' (HPDC 2006)."
        ),
    )
    targets = sorted(FIGURES) + sorted(TABLES) + ["all", "list"]
    parser.add_argument(
        "target",
        choices=targets,
        help="experiment to run ('list' prints the catalogue, 'all' runs everything)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="scale preset (default: $REPRO_SCALE or 'default')",
    )
    parser.add_argument("--seed", type=int, default=None, help="master seed override")
    parser.add_argument(
        "--csv-dir",
        type=pathlib.Path,
        default=None,
        help="directory to write per-experiment CSV files into",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress chart rendering (CSV only)"
    )
    return parser


def _run_one(name: str, args) -> object:
    fn = FIGURES.get(name) or TABLES.get(name)
    start = time.perf_counter()
    result = fn(scale=args.scale, seed=args.seed)
    elapsed = time.perf_counter() - start
    if not args.quiet:
        if isinstance(result, FigureResult):
            sys.stdout.write(render_figure(result))
        elif isinstance(result, TableResult):
            sys.stdout.write(render_table(result))
        sys.stdout.write(f"  [{name} completed in {elapsed:.1f}s]\n\n")
    if args.csv_dir is not None:
        args.csv_dir.mkdir(parents=True, exist_ok=True)
        out = args.csv_dir / f"{name}.csv"
        out.write_text(result.to_csv())
        if not args.quiet:
            sys.stdout.write(f"  wrote {out}\n")
    return result


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.target == "list":
        sys.stdout.write("figures: " + " ".join(sorted(FIGURES)) + "\n")
        sys.stdout.write("tables:  " + " ".join(sorted(TABLES)) + "\n")
        return 0
    names = (
        sorted(FIGURES) + sorted(TABLES) if args.target == "all" else [args.target]
    )
    for name in names:
        _run_one(name, args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
