"""Command-line entry point: experiments + results-cache lifecycle.

The CLI is organized in subcommands::

    repro-experiment run <target> [options]   # regenerate a figure/table
    repro-experiment list                     # print the catalogue
    repro-experiment cache ls                 # artifact table
    repro-experiment cache stats              # aggregate store metadata
    repro-experiment cache gc [--dry-run]     # age/size-based eviction
    repro-experiment trends report            # cross-revision drift table
    repro-experiment trends compare A B       # two revisions head-to-head
    repro-experiment trends baseline          # emit a baseline JSON
    repro-experiment trends check             # gate results vs a baseline
    repro-experiment obs summary <journal>    # phase-profile table
    repro-experiment obs trace <journal>      # Chrome trace-event export
    repro-experiment obs validate <journal>   # schema-check a journal
    repro-experiment worker serve --bind H:P  # run a cluster worker
    repro-experiment serve --bind H:P         # run the estimation service

Examples
--------
Run Fig 1 at the default scale and print the ASCII chart::

    repro-experiment run fig1

Run Table I at the small (benchmark) scale and save CSVs::

    repro-experiment run table1 --scale small --csv-dir results/

Shard the trials of each figure over 4 worker processes and cache results
so the next identical invocation is served from disk.  Every ablation —
including the delay/idspace/repair studies, whose live state travels as
declarative specs — honors the same knobs, so ``run all`` parallelizes
and caches the whole catalog::

    repro-experiment run fig1 --scale small --workers 4 --cache-dir ~/.cache/repro
    repro-experiment run all --scale small --workers 4 --cache-dir ~/.cache/repro

Inspect and prune that cache::

    repro-experiment cache ls --cache-dir ~/.cache/repro
    repro-experiment cache gc --cache-dir ~/.cache/repro --max-age-days 30 --dry-run

Track how the numbers move across git revisions, and gate a change against
a committed baseline (see docs/TRENDS.md)::

    repro-experiment trends report --cache-dir ci-trends/
    repro-experiment trends compare abc1234 def5678 --cache-dir ci-trends/
    repro-experiment trends baseline --cache-dir ci-trends/ --out baseline.json
    repro-experiment trends check --baseline baseline.json --fail-on-drift

Record a structured run journal while regenerating a figure, then render
an ASCII phase summary and a Chrome trace-event file from it (open the
trace in Perfetto / chrome://tracing — see docs/OBSERVABILITY.md)::

    repro-experiment run fig1 --scale small --workers 4 --journal run.jsonl
    repro-experiment obs summary run.jsonl
    repro-experiment obs trace run.jsonl -o trace.json

Spread a run across machines: start a worker per host, then point a
driver at them with ``--hosts`` (or ``$REPRO_HOSTS``).  Results are
bit-identical to serial at any host count, and a dead host's chunks
migrate to the survivors (see docs/DISTRIBUTED.md; the transport is
trusted-network-only)::

    repro-experiment worker serve --bind 0.0.0.0:7700          # on each host
    repro-experiment run fig11 --hosts hostA:7700,hostB:7700 --journal run.jsonl

Keep the estimators warm as a resident service: stream membership events
at it, poll ``/estimate``, and restart from its last checkpoint (see
docs/SERVICE.md).  Both ``serve`` and ``worker serve`` print their bound
address in a machine-parsable ``REPRO_*_ADDR=host:port`` stdout line, so
harnesses binding port 0 can scrape the chosen port::

    repro-experiment serve --bind 127.0.0.1:0 --estimators sample_collide,aggregation \
        --snapshot svc.json --snapshot-every 50 --max-qps 100 --journal svc.jsonl

``repro-experiment fig1`` (the pre-subcommand form) still works: a bare
target is rewritten to ``run <target>`` for backwards compatibility.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import re
import sys
import time
from typing import List, Optional

from ..analysis.ascii_chart import render_figure, render_table
from ..analysis.curves import FigureResult, TableResult
from ..analysis.obs_report import (
    journal_to_trace,
    read_journal,
    render_obs_summary,
    validate_journal,
)
from ..analysis.trend_report import (
    render_check_report,
    render_comparison,
    render_trend_report,
)
from ..runtime import (
    JOURNAL_SCHEMA_VERSION,
    JournalReporter,
    LogProgress,
    ResultsStore,
    RuntimeOptions,
    TeeProgress,
    WorkerServer,
    parse_hosts,
    supports_runtime,
)
from ..runtime.trends import (
    DEFAULT_CHECK_METRICS,
    TREND_METRICS,
    check_baseline,
    compare_revisions,
    load_baseline,
    make_baseline,
    trend_report,
)
from ..service import (
    SERVICE_FAMILIES,
    EstimationService,
    ServiceConfig,
    ServiceServer,
)
from . import FIGURES, TABLES
from .config import SCALES

__all__ = ["main", "build_parser"]


def _cache_dir(value: str) -> pathlib.Path:
    """Reject a cache path that exists but is not a directory up front,
    instead of tracebacking at save time after the trials already ran."""
    path = pathlib.Path(value)
    if path.exists() and not path.is_dir():
        raise argparse.ArgumentTypeError(
            f"--cache-dir {value!r} exists and is not a directory"
        )
    return path


def _checked_dir(path: pathlib.Path, parser: argparse.ArgumentParser) -> pathlib.Path:
    """The same up-front guard as :func:`_cache_dir` for paths that did not
    come through argparse (the $REPRO_CACHE_DIR defaults)."""
    if path.exists() and not path.is_dir():
        parser.error(f"cache directory {str(path)!r} exists and is not a directory")
    return path


_SIZE_UNITS = {
    "": 1,
    "b": 1,
    "k": 10**3,
    "kb": 10**3,
    "m": 10**6,
    "mb": 10**6,
    "g": 10**9,
    "gb": 10**9,
    "kib": 2**10,
    "mib": 2**20,
    "gib": 2**30,
}


def _parse_size(value: str) -> int:
    """Parse a human size ('500k', '1.5GB', '64MiB', plain bytes) to bytes."""
    m = re.fullmatch(r"\s*([0-9]+(?:\.[0-9]+)?)\s*([A-Za-z]*)\s*", value)
    if not m or m.group(2).lower() not in _SIZE_UNITS:
        raise argparse.ArgumentTypeError(
            f"cannot parse size {value!r} (try '500k', '1.5GB', '64MiB' or bytes)"
        )
    return int(float(m.group(1)) * _SIZE_UNITS[m.group(2).lower()])


def _format_size(n: int) -> str:
    for unit, div in (("GB", 10**9), ("MB", 10**6), ("kB", 10**3)):
        if n >= div:
            return f"{n / div:.1f}{unit}"
    return f"{n}B"


def _format_age(seconds: float) -> str:
    if seconds >= 86400:
        return f"{seconds / 86400:.1f}d"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.0f}m"
    return f"{max(seconds, 0):.0f}s"


def _add_run_parser(subparsers) -> None:
    run = subparsers.add_parser(
        "run",
        help="regenerate a figure/table (or 'all')",
        description="Regenerate one experiment, or every one with 'all'.",
    )
    run.add_argument(
        "target",
        choices=sorted(FIGURES) + sorted(TABLES) + ["all"],
        help="experiment to run ('all' runs everything)",
    )
    run.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="scale preset (default: $REPRO_SCALE or 'default')",
    )
    run.add_argument("--seed", type=int, default=None, help="master seed override")
    run.add_argument(
        "--csv-dir",
        type=pathlib.Path,
        default=None,
        help="directory to write per-experiment CSV files into",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress chart rendering (CSV only)"
    )
    run.add_argument(
        "--workers",
        type=int,
        default=int(os.environ.get("REPRO_WORKERS", "1")),
        help=(
            "worker processes for trial execution (default: $REPRO_WORKERS or 1; "
            "results are bit-identical at any worker count)"
        ),
    )
    run.add_argument(
        "--hosts",
        default=os.environ.get("REPRO_HOSTS") or None,
        help=(
            "comma-separated cluster worker addresses "
            "('host1:port,host2:port'; default: $REPRO_HOSTS) started with "
            "'worker serve'; trial chunks fan out over sockets instead of "
            "a local process pool, with work-stealing and dead-host chunk "
            "migration — results are bit-identical to serial at any host "
            "count (see docs/DISTRIBUTED.md; trusted networks only)"
        ),
    )
    run.add_argument(
        "--heartbeat-interval",
        type=float,
        default=float(os.environ.get("REPRO_HEARTBEAT_INTERVAL", "2.0")),
        help=(
            "seconds between liveness pings to each cluster worker "
            "(default: $REPRO_HEARTBEAT_INTERVAL or 2.0; 0 disables the "
            "heartbeat monitor and falls back to detecting dead workers "
            "on the next dispatch; only meaningful with --hosts)"
        ),
    )
    run.add_argument(
        "--heartbeat-misses",
        type=int,
        default=int(os.environ.get("REPRO_HEARTBEAT_MISSES", "3")),
        help=(
            "consecutive missed pings before a cluster worker is declared "
            "lost and its chunks migrate (default: $REPRO_HEARTBEAT_MISSES "
            "or 3; detection latency is bounded by interval x misses)"
        ),
    )
    env_cache = os.environ.get("REPRO_CACHE_DIR") or None
    run.add_argument(
        "--cache-dir",
        type=_cache_dir,
        default=pathlib.Path(env_cache) if env_cache else None,
        help=(
            "content-addressed results store (default: $REPRO_CACHE_DIR); "
            "reruns of an identical experiment are served from it without "
            "recomputation"
        ),
    )
    run.add_argument(
        "--force",
        action="store_true",
        help="recompute even when the cache holds the experiment (and refresh it)",
    )
    run.add_argument(
        "--no-snapshot",
        action="store_true",
        help=(
            "disable scheduler-snapshot hand-off for churn-replay "
            "experiments and replay each chunk's churn prefix from t=0 "
            "instead (slower at paper scale; results are bit-identical "
            "either way — see docs/SNAPSHOTS.md)"
        ),
    )
    run.add_argument(
        "--graph-backend",
        choices=("dict", "array"),
        default=os.environ.get("REPRO_GRAPH_BACKEND", "dict"),
        help=(
            "graph representation for kernel-capable estimators: 'dict' "
            "(reference) or 'array' (batched numpy kernels; distributionally "
            "equivalent but not bit-identical to the reference, and cached "
            "under a distinct content address — see docs/KERNELS.md; "
            "default: $REPRO_GRAPH_BACKEND or 'dict')"
        ),
    )
    run.add_argument(
        "--progress",
        action="store_true",
        help="log trial progress to stderr",
    )
    run.add_argument(
        "--journal",
        type=pathlib.Path,
        default=None,
        help=(
            "append a structured JSONL run journal (batch/chunk/trial spans, "
            "phase profiles, cache and fallback events) to this file; "
            "inspect it with 'obs summary' / 'obs trace' "
            "(see docs/OBSERVABILITY.md)"
        ),
    )


def _add_cache_parser(subparsers) -> None:
    cache = subparsers.add_parser(
        "cache",
        help="inspect / garbage-collect the results store",
        description=(
            "Lifecycle tooling for the content-addressed results store "
            "written by 'run --cache-dir' (and the REPRO_CACHE_DIR-driven "
            "benchmark runs)."
        ),
    )
    sub = cache.add_subparsers(dest="cache_command", required=True)

    def _dir_arg(p):
        p.add_argument(
            "--cache-dir",
            type=_cache_dir,
            default=None,
            help="store directory (default: $REPRO_CACHE_DIR)",
        )

    ls = sub.add_parser(
        "ls",
        help="table of artifacts (key, tag, trials, size, age)",
        description=(
            "List every artifact: content key, experiment tag, trial count, "
            "size, age since creation, and whether it has served a cache hit."
        ),
    )
    _dir_arg(ls)

    stats = sub.add_parser(
        "stats",
        help="aggregate size/hit metadata",
        description="Aggregate store statistics, including a per-tag breakdown.",
    )
    _dir_arg(stats)

    gc = sub.add_parser(
        "gc",
        help="evict artifacts by age and/or size budget",
        description=(
            "Evict artifacts older than --max-age-days, then (oldest first) "
            "until the store fits --max-size.  --dry-run reports the "
            "selection without deleting anything."
        ),
    )
    _dir_arg(gc)
    gc.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="evict artifacts older than this many days (by creation time)",
    )
    gc.add_argument(
        "--max-size",
        type=_parse_size,
        default=None,
        help="total-size budget ('500k', '1.5GB', '64MiB' or bytes)",
    )
    gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be evicted; delete nothing",
    )


def _add_trends_parser(subparsers) -> None:
    trends = subparsers.add_parser(
        "trends",
        help="track result drift across git revisions / seed sets",
        description=(
            "Join stored artifacts across git revisions and seed sets and "
            "report drift in estimation quality, message overhead and "
            "runtime.  Cross-revision history lives in sibling store "
            "directories (one per revision) under a common parent; every "
            "--cache-dir is searched recursively for stores.  See "
            "docs/TRENDS.md for the baseline workflow."
        ),
    )
    sub = trends.add_subparsers(dest="trends_command", required=True)

    # Options are attached per-subcommand so nothing parses-but-ignores:
    # 'baseline' always emits JSON (no render flags), 'check' gates against
    # intervals frozen in the baseline (no --confidence).
    def _dirs_and_metrics(p, metrics_default):
        p.add_argument(
            "--cache-dir",
            action="append",
            type=_cache_dir,
            default=None,
            dest="cache_dirs",
            help=(
                "store directory or parent of per-revision stores; "
                "repeatable (default: $REPRO_CACHE_DIR)"
            ),
        )
        p.add_argument(
            "--metric",
            action="append",
            choices=sorted(TREND_METRICS),
            default=None,
            dest="metrics",
            help=f"metric(s) to include (default: {', '.join(metrics_default)})",
        )

    def _confidence(p):
        p.add_argument(
            "--confidence",
            type=float,
            default=0.95,
            help="bootstrap confidence level (default: 0.95)",
        )

    def _render_flags(p):
        p.add_argument(
            "--markdown",
            action="store_true",
            help="emit GitHub-flavoured markdown tables instead of ASCII",
        )
        p.add_argument(
            "--json",
            action="store_true",
            help="emit machine-readable JSON instead of a table",
        )

    def _common(p, metrics_default):
        _dirs_and_metrics(p, metrics_default)
        _confidence(p)
        _render_flags(p)

    report = sub.add_parser(
        "report",
        help="per-experiment revision trajectories with drift verdicts",
        description=(
            "Group artifacts by logical experiment (tag + config minus "
            "seeds), order each group's revisions by save time, and flag "
            "metrics whose newest mean left the oldest revision's "
            "bootstrap interval."
        ),
    )
    _common(report, TREND_METRICS)

    compare = sub.add_parser(
        "compare",
        help="two revisions head-to-head",
        description=(
            "Join every experiment present at both revisions and test "
            "whether B's mean left A's bootstrap interval (unique "
            "revision prefixes are accepted)."
        ),
    )
    compare.add_argument("rev_a", help="reference revision (unique prefix ok)")
    compare.add_argument("rev_b", help="candidate revision (unique prefix ok)")
    _common(compare, TREND_METRICS)

    baseline = sub.add_parser(
        "baseline",
        help="emit a baseline JSON for 'trends check'",
        description=(
            "Serialize each experiment's bootstrap interval at its newest "
            "(or --revision) revision into a JSON document to commit; "
            "'trends check' gates future runs against it."
        ),
    )
    _dirs_and_metrics(baseline, DEFAULT_CHECK_METRICS)
    _confidence(baseline)
    baseline.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="write the baseline here (default: stdout)",
    )
    baseline.add_argument(
        "--revision",
        default=None,
        help="pin the baseline to this revision (default: newest per group)",
    )

    check = sub.add_parser(
        "check",
        help="gate current results against a committed baseline",
        description=(
            "Recompute each baselined experiment's current mean and fail "
            "it when the mean falls outside the baseline's bootstrap "
            "interval (drift) or when the experiment has no current "
            "artifacts (missing).  With --fail-on-drift the exit status "
            "is nonzero when anything fails — the CI regression gate."
        ),
    )
    check.add_argument(
        "--baseline",
        type=pathlib.Path,
        required=True,
        help="baseline JSON produced by 'trends baseline'",
    )
    check.add_argument(
        "--revision",
        default=None,
        help="check artifacts of this revision (default: newest per group)",
    )
    check.add_argument(
        "--fail-on-drift",
        action="store_true",
        help="exit nonzero when any metric drifts or goes missing",
    )
    _dirs_and_metrics(check, DEFAULT_CHECK_METRICS)
    _render_flags(check)


def _add_obs_parser(subparsers) -> None:
    obs = subparsers.add_parser(
        "obs",
        help="inspect a structured run journal (summary / trace / validate)",
        description=(
            "Offline tooling for the JSONL run journals written by "
            "'run --journal': an ASCII phase-profile summary, a Chrome "
            "trace-event export for Perfetto / chrome://tracing, and a "
            "schema validator.  See docs/OBSERVABILITY.md."
        ),
    )
    sub = obs.add_subparsers(dest="obs_command", required=True)

    summary = sub.add_parser(
        "summary",
        help="ASCII table of per-phase time and journal event counts",
        description=(
            "Aggregate the journal's chunk/trial spans into a per-phase "
            "time table (boot/restore/churn/estimation/serialize) plus "
            "batch, cache-hit and fallback counts."
        ),
    )
    summary.add_argument("journal", type=pathlib.Path, help="journal JSONL file")

    trace = sub.add_parser(
        "trace",
        help="export Chrome trace-event JSON (Perfetto / chrome://tracing)",
        description=(
            "Convert the journal into Chrome trace-event JSON: one process "
            "track per worker pid, chunk and trial spans, and instants for "
            "cache hits, fallbacks and snapshot save errors."
        ),
    )
    trace.add_argument("journal", type=pathlib.Path, help="journal JSONL file")
    trace.add_argument(
        "-o",
        "--out",
        type=pathlib.Path,
        default=None,
        help="write the trace here (default: stdout)",
    )

    validate = sub.add_parser(
        "validate",
        help="schema-check a journal; nonzero exit on problems",
        description=(
            "Verify the journal parses, declares the current schema "
            "version, and that every event carries its required fields.  "
            "Exit status 1 when problems are found."
        ),
    )
    validate.add_argument("journal", type=pathlib.Path, help="journal JSONL file")


def _add_worker_parser(subparsers) -> None:
    worker = subparsers.add_parser(
        "worker",
        help="run a cluster worker process (serve)",
        description=(
            "Cluster worker lifecycle.  A worker accepts driver "
            "connections from 'run --hosts' and executes trial chunks "
            "shipped over the socket transport (docs/DISTRIBUTED.md).  "
            "The transport pickles payloads without authentication: bind "
            "to loopback or a trusted network only."
        ),
    )
    sub = worker.add_subparsers(dest="worker_command", required=True)
    serve = sub.add_parser(
        "serve",
        help="serve trial chunks on a socket until interrupted",
        description=(
            "Bind HOST:PORT and serve chunks to any connecting driver.  "
            "Port 0 binds a free port; the bound address is printed on "
            "stdout either way, so harnesses can scrape it."
        ),
    )
    serve.add_argument(
        "--bind",
        default="127.0.0.1:0",
        help="HOST:PORT to listen on (default: 127.0.0.1:0 = free port)",
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        help=(
            "exit after this many driver sessions (default: serve until "
            "interrupted); a driver opens one session per host per batch"
        ),
    )


def _add_serve_parser(subparsers) -> None:
    serve = subparsers.add_parser(
        "serve",
        help="run the always-on estimation service (HTTP/JSON)",
        description=(
            "Boot a resident estimation scenario and serve /estimate, "
            "/health and /stats over HTTP, with POST /ingest, /tick and "
            "/checkpoint as the write surface (docs/SERVICE.md).  Port 0 "
            "binds a free port; the bound address is printed on stdout in "
            "a machine-parsable REPRO_SERVICE_ADDR= line either way."
        ),
    )
    serve.add_argument(
        "--bind",
        default="127.0.0.1:0",
        help="HOST:PORT for the HTTP endpoint (default: 127.0.0.1:0 = free port)",
    )
    serve.add_argument(
        "--binary-bind",
        default=None,
        help=(
            "optional HOST:PORT for the length-prefixed binary JSON "
            "transport (framing discipline of docs/DISTRIBUTED.md; "
            "disabled when omitted)"
        ),
    )
    serve.add_argument(
        "--estimators",
        default="sample_collide,aggregation",
        help=(
            "comma-separated estimator families to keep warm "
            f"(available: {','.join(SERVICE_FAMILIES)})"
        ),
    )
    serve.add_argument(
        "--nodes", type=int, default=2_000, help="initial overlay size"
    )
    serve.add_argument("--seed", type=int, default=7, help="master seed")
    serve.add_argument(
        "--probe-interval",
        type=int,
        default=5,
        help="rounds between probe-family refreshes (default: 5)",
    )
    serve.add_argument(
        "--max-qps",
        type=float,
        default=0.0,
        help="token-bucket estimate admission (requests/second; 0 = unlimited)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=10_000,
        help="ingest queue bound; events beyond it are shed (default: 10000)",
    )
    serve.add_argument(
        "--snapshot",
        type=pathlib.Path,
        default=None,
        help=(
            "checkpoint file: written every --snapshot-every rounds and on "
            "POST /checkpoint, and resumed from at boot when it exists"
        ),
    )
    serve.add_argument(
        "--snapshot-every",
        type=int,
        default=0,
        help="checkpoint cadence in rounds (0 = only explicit /checkpoint)",
    )
    serve.add_argument(
        "--tick-interval",
        type=float,
        default=0.0,
        help=(
            "seconds between automatic rounds (0 = rounds advance only via "
            "POST /tick, which keeps the scenario deterministic for tests)"
        ),
    )
    serve.add_argument(
        "--rounds",
        type=int,
        default=0,
        help=(
            "with --tick-interval: exit cleanly after this many rounds "
            "(0 = serve until interrupted); lets smoke tests run without "
            "signal choreography"
        ),
    )
    serve.add_argument(
        "--journal",
        type=pathlib.Path,
        default=None,
        help=(
            "append service lifecycle events (service_start, "
            "estimate_served, ingest_dropped, snapshot_checkpoint) to this "
            "JSONL run journal; inspect with 'obs validate'/'obs summary'"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Regenerate figures/tables from 'Peer to peer size estimation in "
            "large and dynamic networks: A comparative study' (HPDC 2006), "
            "and manage the content-addressed results cache."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_run_parser(subparsers)
    subparsers.add_parser("list", help="print the experiment catalogue")
    _add_cache_parser(subparsers)
    _add_trends_parser(subparsers)
    _add_obs_parser(subparsers)
    _add_worker_parser(subparsers)
    _add_serve_parser(subparsers)
    return parser


def _runtime_options(
    args, tag: Optional[str] = None, journal: Optional[JournalReporter] = None
) -> RuntimeOptions:
    """Map parsed CLI arguments onto the runtime's execution knobs."""
    reporters: List[object] = []
    if args.progress:
        reporters.append(LogProgress())
    if journal is not None:
        reporters.append(journal)
    progress = None
    if len(reporters) == 1:
        progress = reporters[0]
    elif reporters:
        progress = TeeProgress(reporters)
    return RuntimeOptions.create(
        workers=args.workers,
        cache_dir=args.cache_dir,
        force=args.force,
        progress=progress,
        tag=tag,
        snapshots=not getattr(args, "no_snapshot", False),
        graph_backend=getattr(args, "graph_backend", "dict"),
        hosts=getattr(args, "hosts", None),
        heartbeat_interval=getattr(args, "heartbeat_interval", 2.0),
        heartbeat_misses=getattr(args, "heartbeat_misses", 3),
    )


def _run_one(name: str, args, journal: Optional[JournalReporter] = None) -> object:
    fn = FIGURES.get(name) or TABLES.get(name)
    kwargs = {"scale": args.scale, "seed": args.seed}
    if supports_runtime(fn):
        kwargs["runtime"] = _runtime_options(args, tag=name, journal=journal)
    start = time.perf_counter()
    result = fn(**kwargs)
    elapsed = time.perf_counter() - start
    if not args.quiet:
        if isinstance(result, FigureResult):
            sys.stdout.write(render_figure(result))
        elif isinstance(result, TableResult):
            sys.stdout.write(render_table(result))
        sys.stdout.write(f"  [{name} completed in {elapsed:.1f}s]\n\n")
    if args.csv_dir is not None:
        args.csv_dir.mkdir(parents=True, exist_ok=True)
        out = args.csv_dir / f"{name}.csv"
        out.write_text(result.to_csv())
        if not args.quiet:
            sys.stdout.write(f"  wrote {out}\n")
    return result


def _cmd_run(args) -> int:
    names = (
        sorted(FIGURES) + sorted(TABLES) if args.target == "all" else [args.target]
    )
    journal = None
    if args.journal is not None:
        args.journal.parent.mkdir(parents=True, exist_ok=True)
        journal = JournalReporter(args.journal)
    try:
        for name in names:
            _run_one(name, args, journal=journal)
    finally:
        if journal is not None:
            journal.close()
    return 0


def _cmd_list() -> int:
    sys.stdout.write("figures: " + " ".join(sorted(FIGURES)) + "\n")
    sys.stdout.write("tables:  " + " ".join(sorted(TABLES)) + "\n")
    return 0


def _resolve_store(args, parser: argparse.ArgumentParser) -> ResultsStore:
    cache_dir = args.cache_dir
    if cache_dir is None:
        env = os.environ.get("REPRO_CACHE_DIR")
        if env:
            cache_dir = _checked_dir(pathlib.Path(env), parser)
    if cache_dir is None:
        parser.error("no cache directory: pass --cache-dir or set $REPRO_CACHE_DIR")
    return ResultsStore(cache_dir)


def _cmd_cache_ls(store: ResultsStore) -> int:
    infos = store.artifacts()
    if not infos:
        sys.stdout.write(f"{store.root}: empty store\n")
        return 0
    now = time.time()
    header = f"{'KEY':<14} {'TAG':<24} {'TRIALS':>6} {'SIZE':>8} {'AGE':>7}  HIT\n"
    sys.stdout.write(header)
    for info in infos:
        sys.stdout.write(
            f"{info.key[:12] + '..':<14} "
            f"{(info.tag or '-')[:24]:<24} "
            f"{info.trials:>6} "
            f"{_format_size(info.size_bytes):>8} "
            f"{_format_age(info.age_seconds(now)):>7}  "
            f"{'yes' if info.hit else '-'}\n"
        )
    sys.stdout.write(
        f"{len(infos)} artifact(s), "
        f"{_format_size(sum(i.size_bytes for i in infos))} total\n"
    )
    return 0


def _cmd_cache_stats(store: ResultsStore) -> int:
    st = store.stats()
    sys.stdout.write(f"store:          {store.root}\n")
    sys.stdout.write(f"artifacts:      {st.artifacts}\n")
    sys.stdout.write(f"total size:     {_format_size(st.total_bytes)}\n")
    # Result and snapshot payloads are reported separately so a
    # `gc --max-size` budget can be reasoned about honestly: snapshots
    # are recomputable accelerators, results are the cached science.
    sys.stdout.write(
        f"  results:      {_format_size(st.total_bytes - st.snapshot_bytes)} "
        f"({st.artifacts - st.snapshot_artifacts} artifact(s))\n"
    )
    sys.stdout.write(
        f"  snapshots:    {_format_size(st.snapshot_bytes)} "
        f"({st.snapshot_artifacts} artifact(s))\n"
    )
    sys.stdout.write(f"cached trials:  {st.trials}\n")
    sys.stdout.write(f"hit artifacts:  {st.hit_artifacts}\n")
    sys.stdout.write(f"stale schema:   {st.stale_schema}\n")
    if st.artifacts:
        sys.stdout.write(
            f"age range:      {_format_age(st.newest_age_seconds)} .. "
            f"{_format_age(st.oldest_age_seconds)}\n"
        )
    if st.by_tag:
        sys.stdout.write("by tag:\n")
        for tag, bucket in sorted(st.by_tag.items()):
            sys.stdout.write(
                f"  {tag:<28} {bucket['artifacts']:>4} artifact(s) "
                f"{_format_size(bucket['bytes']):>8} {bucket['trials']:>6} trial(s)\n"
            )
    return 0


def _cmd_cache_gc(store: ResultsStore, args, parser: argparse.ArgumentParser) -> int:
    if args.max_age_days is None and args.max_size is None:
        parser.error("cache gc needs a policy: --max-age-days and/or --max-size")
    report = store.gc(
        max_age_seconds=(
            None if args.max_age_days is None else args.max_age_days * 86400.0
        ),
        max_total_bytes=args.max_size,
        dry_run=args.dry_run,
    )
    verb = "would evict" if report.dry_run else "evicted"
    for info in report.evicted:
        sys.stdout.write(
            f"{verb} {info.key[:12]}.. "
            f"({info.tag or '-'}, {_format_size(info.size_bytes)}, "
            f"{_format_age(info.age_seconds())} old)\n"
        )
    sys.stdout.write(
        f"{verb} {len(report.evicted)} artifact(s) "
        f"({_format_size(report.evicted_bytes)}); "
        f"kept {report.kept} ({_format_size(report.kept_bytes)})\n"
    )
    return 0


def _resolve_trend_roots(args, parser: argparse.ArgumentParser) -> List[pathlib.Path]:
    roots = list(args.cache_dirs or ())
    if not roots:
        env = os.environ.get("REPRO_CACHE_DIR")
        if env:
            roots = [_checked_dir(pathlib.Path(env), parser)]
    if not roots:
        parser.error(
            "no store directories: pass --cache-dir (repeatable) or set "
            "$REPRO_CACHE_DIR"
        )
    return roots


def _point_json(point) -> dict:
    return {
        "revision": point.revision,
        "mean": point.ci.mean,
        "lower": point.ci.lower,
        "upper": point.ci.upper,
        "samples": point.samples,
        "artifacts": point.artifacts,
    }


def _report_json(report) -> dict:
    return {
        "stores": [str(s) for s in report.stores],
        "records": report.records,
        "drifted": report.drifted,
        "groups": [
            {
                "tag": g.tag,
                "group": g.group,
                "trials": g.trials,
                "revisions": g.revisions,
                "drifted": g.drifted,
                "metrics": [
                    {
                        "metric": m.metric,
                        "drifted": m.drifted,
                        "delta": m.delta,
                        "variance_ratio": m.variance_ratio,
                        "noisier": m.noisier,
                        "points": [_point_json(p) for p in m.points],
                    }
                    for m in g.metrics
                ],
            }
            for g in report.groups
        ],
    }


def _comparison_json(comparisons, rev_a: str, rev_b: str) -> dict:
    return {
        "rev_a": rev_a,
        "rev_b": rev_b,
        "drifted": any(c.drifted for c in comparisons),
        "comparisons": [
            {
                "tag": c.tag,
                "group": c.group,
                "metric": c.metric,
                "a": _point_json(c.a),
                "b": _point_json(c.b),
                "delta": c.delta,
                "drifted": c.drifted,
                "variance_ratio": c.variance_ratio,
                "noisier": c.noisier,
            }
            for c in comparisons
        ],
    }


def _check_json(check) -> dict:
    return {
        "revision": check.revision,
        "ok": check.ok,
        "outcomes": [
            {
                "tag": o.tag,
                "group": o.group,
                "metric": o.metric,
                "status": o.status,
                "baseline": {
                    "mean": o.baseline_mean,
                    "lower": o.baseline_lower,
                    "upper": o.baseline_upper,
                },
                "observed_mean": o.observed_mean,
                "observed_samples": o.observed_samples,
                "revision": o.revision,
            }
            for o in check.outcomes
        ],
        "new_groups": [
            {"tag": tag, "group": group} for tag, group in check.new_groups
        ],
    }


def _emit_json(payload: dict) -> None:
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def _cmd_trends(args, parser: argparse.ArgumentParser) -> int:
    roots = _resolve_trend_roots(args, parser)
    cmd = args.trends_command
    if cmd == "report":
        report = trend_report(
            roots,
            metrics=args.metrics or TREND_METRICS,
            confidence=args.confidence,
        )
        if args.json:
            _emit_json(_report_json(report))
        else:
            sys.stdout.write(render_trend_report(report, markdown=args.markdown))
        return 0
    if cmd == "compare":
        try:
            comparisons = compare_revisions(
                roots,
                args.rev_a,
                args.rev_b,
                metrics=args.metrics or TREND_METRICS,
                confidence=args.confidence,
            )
        except ValueError as exc:
            sys.stderr.write(f"trends compare: {exc}\n")
            return 2
        if args.json:
            _emit_json(_comparison_json(comparisons, args.rev_a, args.rev_b))
        else:
            sys.stdout.write(
                render_comparison(
                    comparisons, args.rev_a, args.rev_b, markdown=args.markdown
                )
            )
        return 0
    if cmd == "baseline":
        try:
            doc = make_baseline(
                roots,
                revision=args.revision,
                metrics=args.metrics or DEFAULT_CHECK_METRICS,
                confidence=args.confidence,
            )
        except ValueError as exc:
            sys.stderr.write(f"trends baseline: {exc}\n")
            return 2
        text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(text)
            sys.stdout.write(
                f"wrote baseline for {len(doc['groups'])} group(s) to {args.out}\n"
            )
        else:
            sys.stdout.write(text)
        return 0
    # check
    try:
        baseline = load_baseline(args.baseline)
    except (OSError, ValueError) as exc:
        sys.stderr.write(f"trends check: {exc}\n")
        return 2
    try:
        check = check_baseline(
            roots, baseline, revision=args.revision, metrics=args.metrics
        )
    except ValueError as exc:
        sys.stderr.write(f"trends check: {exc}\n")
        return 2
    if args.json:
        _emit_json(_check_json(check))
    else:
        sys.stdout.write(render_check_report(check, markdown=args.markdown))
    if not check.ok and args.fail_on_drift:
        return 1
    return 0


def _cmd_obs(args, parser: argparse.ArgumentParser) -> int:
    try:
        events = read_journal(args.journal)
    except (OSError, ValueError) as exc:
        sys.stderr.write(f"obs {args.obs_command}: {exc}\n")
        return 2
    if args.obs_command == "validate":
        problems = validate_journal(events)
        if problems:
            for problem in problems:
                sys.stdout.write(f"{problem}\n")
            sys.stdout.write(f"{args.journal}: {len(problems)} problem(s)\n")
            return 1
        sys.stdout.write(
            f"{args.journal}: valid journal "
            f"(schema {JOURNAL_SCHEMA_VERSION}, {len(events)} event(s))\n"
        )
        return 0
    if args.obs_command == "trace":
        trace = journal_to_trace(events)
        text = json.dumps(trace, sort_keys=True) + "\n"
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(text)
            sys.stdout.write(
                f"wrote {len(trace['traceEvents'])} trace event(s) to "
                f"{args.out} (open in Perfetto or chrome://tracing)\n"
            )
        else:
            sys.stdout.write(text)
        return 0
    # summary
    sys.stdout.write(render_obs_summary(events))
    return 0


def _parse_bind(value: str, label: str, parser: argparse.ArgumentParser):
    """Split a ``host:port`` bind address; port 0 (ephemeral) is allowed.

    ``parse_hosts`` is meant for driver-side *connect* targets and rejects
    port 0, so bind addresses are validated separately.
    """
    host, sep, port = value.rpartition(":")
    if not sep or not host or not port.isdigit() or int(port) > 65535:
        parser.error(
            f"{label}: invalid --bind {value!r}: expected 'host:port' "
            "(port 0 binds a free port)"
        )
    return host, int(port)


def _cmd_worker(args, parser: argparse.ArgumentParser) -> int:
    host, port = _parse_bind(args.bind, "worker serve", parser)
    try:
        server = WorkerServer(host, port, max_sessions=args.max_sessions)
    except OSError as exc:
        sys.stderr.write(f"worker serve: cannot bind {args.bind}: {exc}\n")
        return 2
    sys.stdout.write(f"worker listening on {server.address} (pid {os.getpid()})\n")
    # Machine-parsable form of the bound address: when --bind asks for
    # port 0 the kernel picks the port, and harnesses (CI smoke jobs,
    # scripted launchers) need it without scraping the human line above.
    sys.stdout.write(f"REPRO_WORKER_ADDR={server.address}\n")
    sys.stdout.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass
    finally:
        server.close()
    return 0


def _cmd_serve(args, parser: argparse.ArgumentParser) -> int:
    host, port = _parse_bind(args.bind, "serve", parser)
    binary_port = None
    binary_host = host
    if args.binary_bind is not None:
        binary_host, binary_port = _parse_bind(args.binary_bind, "serve", parser)
        if binary_host != host:
            parser.error(
                "serve: --binary-bind must use the same host as --bind "
                f"({binary_host!r} != {host!r})"
            )
    families = tuple(f for f in args.estimators.split(",") if f)
    try:
        config = ServiceConfig(
            seed=args.seed,
            initial_size=args.nodes,
            estimators=families,
            probe_interval=args.probe_interval,
            queue_limit=args.queue_limit,
            max_qps=args.max_qps,
            snapshot_every=args.snapshot_every,
        )
    except ValueError as exc:
        parser.error(f"serve: {exc}")
    if args.snapshot_every and args.snapshot is None:
        parser.error("serve: --snapshot-every needs --snapshot")

    journal = None
    if args.journal is not None:
        args.journal.parent.mkdir(parents=True, exist_ok=True)
        journal = JournalReporter(args.journal)
    snapshot_path = None if args.snapshot is None else str(args.snapshot)
    try:
        if snapshot_path is not None and os.path.exists(snapshot_path):
            # A checkpoint on disk wins over the command-line config: the
            # restore-resumes-not-replays lifecycle of docs/SERVICE.md.
            service = EstimationService.from_checkpoint(
                snapshot_path, progress=journal
            )
            sys.stdout.write(
                f"service restored from {snapshot_path} "
                f"(round {service.round}, {service.graph.size} nodes)\n"
            )
        else:
            service = EstimationService(
                config, progress=journal, snapshot_path=snapshot_path
            )
        try:
            server = ServiceServer(
                service, host=host, port=port, binary_port=binary_port
            )
        except OSError as exc:
            sys.stderr.write(f"serve: cannot bind {args.bind}: {exc}\n")
            return 2
        sys.stdout.write(
            f"service listening on {server.address} (pid {os.getpid()}, "
            f"families {','.join(service.config.estimators)})\n"
        )
        sys.stdout.write(f"REPRO_SERVICE_ADDR={server.address}\n")
        if server.binary_address is not None:
            sys.stdout.write(f"REPRO_SERVICE_BINARY_ADDR={server.binary_address}\n")
        sys.stdout.flush()
        try:
            if args.tick_interval > 0:
                server.start()
                while args.rounds <= 0 or service.round < args.rounds:
                    time.sleep(args.tick_interval)
                    service.tick()
            else:
                server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive teardown
            pass
        finally:
            server.close()
    finally:
        if journal is not None:
            journal.close()
    return 0


#: Bare targets accepted for backwards compatibility with the
#: pre-subcommand CLI (``repro-experiment fig1``).
_LEGACY_TARGETS = frozenset(FIGURES) | frozenset(TABLES) | {"all"}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # The pre-subcommand parser accepted optionals before the target
    # ("--scale small fig1"), so rewrite whenever a bare target appears
    # and the leading token is not already a subcommand.  Only the first
    # token can be the subcommand, so later arguments that merely *equal* a
    # subcommand name ("--csv-dir cache") must not suppress the rewrite.
    if (
        argv
        and argv[0] not in ("run", "list", "cache", "trends", "obs", "worker", "serve")
        and any(a in _LEGACY_TARGETS for a in argv)
    ):
        argv = ["run"] + argv
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        if args.cache_dir is not None:
            # --cache-dir went through _cache_dir; this re-check covers the
            # $REPRO_CACHE_DIR default, which bypasses argparse validation.
            _checked_dir(args.cache_dir, parser)
        if args.hosts is not None:
            # Surface a malformed --hosts / $REPRO_HOSTS as a usage error
            # here instead of a traceback after the first batch builds.
            try:
                parse_hosts(args.hosts)
            except ValueError as exc:
                parser.error(str(exc))
        return _cmd_run(args)
    if args.command == "worker":
        return _cmd_worker(args, parser)
    if args.command == "serve":
        return _cmd_serve(args, parser)
    if args.command == "trends":
        return _cmd_trends(args, parser)
    if args.command == "obs":
        return _cmd_obs(args, parser)
    # cache family
    store = _resolve_store(args, parser)
    if args.cache_command == "ls":
        return _cmd_cache_ls(store)
    if args.cache_command == "stats":
        return _cmd_cache_stats(store)
    return _cmd_cache_gc(store, args, parser)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
