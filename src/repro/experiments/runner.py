"""Shared experiment machinery: overlay setup and series runners.

Each paper figure is "run algorithm X on overlay Y under churn Z and log a
series"; this module provides those three verbs so the per-figure functions
in :mod:`repro.experiments.figures` stay declarative.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from ..churn.models import ChurnTrace
from ..churn.scheduler import ChurnScheduler
from ..core.aggregation import AggregationMonitor, AggregationProtocol
from ..core.base import Estimate, EstimatorError, SizeEstimator
from ..overlay.builders import heterogeneous_random, scale_free
from ..overlay.graph import OverlayGraph
from ..sim.metrics import EstimateSeries
from ..sim.rng import RngHub
from ..sim.rounds import RoundDriver
from .config import ExperimentConfig

__all__ = [
    "build_overlay",
    "build_scale_free_overlay",
    "static_probe_series",
    "dynamic_probe_series",
    "aggregation_convergence",
    "aggregation_dynamic",
]

EstimatorFactory = Callable[[OverlayGraph, RngHub], SizeEstimator]


def build_overlay(cfg: ExperimentConfig, n: int, hub: RngHub) -> OverlayGraph:
    """The paper's standard heterogeneous random overlay at size ``n``."""
    return heterogeneous_random(
        n,
        max_degree=cfg.max_degree,
        min_degree=cfg.min_degree,
        rng=hub.stream("overlay"),
    )


def build_scale_free_overlay(n: int, hub: RngHub, m: int = 3) -> OverlayGraph:
    """The Fig 7/8 Barabási–Albert overlay (min degree 3)."""
    return scale_free(n, m=m, rng=hub.stream("overlay.sf"))


def static_probe_series(
    factory: EstimatorFactory,
    graph: OverlayGraph,
    count: int,
    hub: RngHub,
    label: str = "",
) -> EstimateSeries:
    """Run ``count`` independent one-shot estimations on a static overlay.

    Matches the static figures' procedure: the estimator is re-instantiated
    per run with a fresh RNG lineage (a new random initiator each time), and
    the one-shot estimates are logged against the estimation index.
    The *last10runs* curves are derived later via
    :meth:`~repro.sim.metrics.EstimateSeries.rolling_qualities`.
    """
    series = EstimateSeries(name=label)
    for i in range(1, count + 1):
        est = factory(graph, hub.child(f"run{i}")).estimate()
        series.append(i, est.value, graph.size)
    return series


def dynamic_probe_series(
    factory: EstimatorFactory,
    graph: OverlayGraph,
    trace: ChurnTrace,
    count: int,
    hub: RngHub,
    label: str = "",
    time_per_estimation: float = 1.0,
    max_degree: int = 10,
) -> EstimateSeries:
    """Probe-style estimations interleaved with churn (Figs 9-14).

    Before estimation ``i`` the churn trace is advanced to time
    ``i·time_per_estimation`` (the paper's probes run "perpetually in order
    to track size variations").  Estimations that fail because the overlay
    degraded under the probe (e.g. the walk got stuck) are recorded as NaN
    rather than aborting the series — a real monitor would simply miss that
    sample.
    """
    scheduler = ChurnScheduler(
        graph, trace, rng=hub.stream("churn"), max_degree=max_degree
    )
    series = EstimateSeries(name=label)
    for i in range(1, count + 1):
        scheduler.advance_to(i * time_per_estimation)
        if graph.size == 0:
            break
        try:
            est = factory(graph, hub.child(f"run{i}")).estimate()
            value = est.value
        except EstimatorError:
            value = float("nan")
        series.append(i, value, graph.size)
    return series


def aggregation_convergence(
    graph: OverlayGraph,
    rounds: int,
    hub: RngHub,
    runs: int = 3,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Per-round convergence curves for ``runs`` independent epochs (Figs 5-6).

    Returns one ``(round_numbers, quality_percent)`` pair per run; the
    quality of a round is read at the epoch initiator, 0 when the epidemic
    has not yet reached a readable state (the paper's curves likewise start
    near 0 and rise to 100).
    """
    curves: List[Tuple[np.ndarray, np.ndarray]] = []
    n = graph.size
    for r in range(runs):
        proto = AggregationProtocol(graph, rng=hub.child(f"agg{r}").stream("proto"))
        proto.start_epoch()
        xs = np.arange(1, rounds + 1, dtype=float)
        qs = np.empty(rounds, dtype=float)
        for i in range(rounds):
            proto.run_round()
            try:
                qs[i] = proto.read().quality(n)
            except EstimatorError:  # pragma: no cover - initiator always has value
                qs[i] = 0.0
        curves.append((xs, qs))
    return curves


def aggregation_dynamic(
    cfg: ExperimentConfig,
    n: int,
    trace_factory: Callable[[int], ChurnTrace],
    horizon: int,
    hub: RngHub,
    runs: int = 3,
    restart_interval: Optional[int] = None,
) -> Tuple[List[EstimateSeries], List[int]]:
    """Continuous Aggregation monitoring under churn (Figs 15-17).

    Each run gets its own overlay realization and churn randomness (the
    trace *schedule* is shared).  Returns the per-run estimate series
    (x = round, estimate = staircase of end-of-epoch reads, true = live
    size) and the per-run failed-epoch counts.
    """
    interval = restart_interval or cfg.scale.restart_interval
    all_series: List[EstimateSeries] = []
    failures: List[int] = []
    for r in range(runs):
        run_hub = hub.child(f"aggdyn{r}")
        graph = build_overlay(cfg, n, run_hub)
        driver = RoundDriver()
        scheduler = ChurnScheduler(
            graph,
            trace_factory(n),
            rng=run_hub.stream("churn"),
            max_degree=cfg.max_degree,
        )
        scheduler.attach(driver)
        monitor = AggregationMonitor(
            graph, restart_interval=interval, rng=run_hub.stream("monitor")
        )
        monitor.attach(driver)
        sizes: List[int] = []
        driver.subscribe(lambda rnd, g=graph, s=sizes: s.append(g.size), priority=30)
        driver.run(horizon)

        series = EstimateSeries(name=f"run{r + 1}")
        for rnd, (est, size) in enumerate(zip(monitor.series, sizes), start=1):
            if size > 0:
                series.append(rnd, est, size)
        all_series.append(series)
        failures.append(monitor.failures)
    return all_series, failures
