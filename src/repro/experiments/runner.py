"""Shared experiment machinery: overlay setup and series runners.

Each paper figure is "run algorithm X on overlay Y under churn Z and log a
series"; this module provides those three verbs so the per-figure functions
in the experiment modules stay declarative.

Every series runner routes through :func:`repro.runtime.run_trials`: the
experiment is expressed as a batch of picklable
:class:`~repro.runtime.TrialSpec` units, which the runtime executes
serially or over a worker pool and (optionally) serves from its
content-addressed results store.  Callers pick the execution policy via the
``runtime`` argument (:class:`~repro.runtime.RuntimeOptions`); ``None``
means serial and uncached, the historical behaviour.

The overlay/estimator arguments accept either declarative specs
(:class:`~repro.runtime.OverlaySpec` / :class:`~repro.runtime.EstimatorSpec`
— portable, parallelizable, cacheable) or live objects (an
:class:`~repro.overlay.graph.OverlayGraph`, a factory closure), which run
serially in-process.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from ..churn.models import ChurnTrace
from ..overlay.builders import heterogeneous_random, scale_free
from ..overlay.graph import OverlayGraph
from ..runtime import (
    EstimatorSpec,
    OverlaySpec,
    RuntimeOptions,
    TrialSpec,
    run_trials,
    series_from_results,
    trace_to_payload,
)
from ..sim.metrics import EstimateSeries
from ..sim.rng import RngHub
from ..core.base import SizeEstimator
from .config import ExperimentConfig

__all__ = [
    "build_overlay",
    "build_scale_free_overlay",
    "overlay_spec",
    "static_probe_series",
    "dynamic_probe_series",
    "aggregation_convergence",
    "aggregation_dynamic",
]

EstimatorFactory = Callable[[OverlayGraph, RngHub], SizeEstimator]
#: Anything the series runners accept as "the overlay".
OverlayLike = Union[OverlayGraph, OverlaySpec]
#: Anything the series runners accept as "the estimator".
EstimatorLike = Union[EstimatorFactory, EstimatorSpec]


def build_overlay(cfg: ExperimentConfig, n: int, hub: RngHub) -> OverlayGraph:
    """The paper's standard heterogeneous random overlay at size ``n``."""
    return heterogeneous_random(
        n,
        max_degree=cfg.max_degree,
        min_degree=cfg.min_degree,
        rng=hub.stream("overlay"),
    )


def overlay_spec(cfg: ExperimentConfig, n: int) -> OverlaySpec:
    """Declarative (portable) form of :func:`build_overlay`."""
    return OverlaySpec.heterogeneous(
        n, max_degree=cfg.max_degree, min_degree=cfg.min_degree
    )


def build_scale_free_overlay(n: int, hub: RngHub, m: int = 3) -> OverlayGraph:
    """The Fig 7/8 Barabási–Albert overlay (min degree 3)."""
    return scale_free(n, m=m, rng=hub.stream("overlay.sf"))


def static_probe_series(
    factory: EstimatorLike,
    graph: OverlayLike,
    count: int,
    hub: RngHub,
    label: str = "",
    runtime: Optional[RuntimeOptions] = None,
    overlay_seed: Optional[int] = None,
) -> EstimateSeries:
    """Run ``count`` independent one-shot estimations on a static overlay.

    Matches the static figures' procedure: the estimator is re-instantiated
    per run with a fresh RNG lineage (a new random initiator each time), and
    the one-shot estimates are logged against the estimation index.
    The *last10runs* curves are derived later via
    :meth:`~repro.sim.metrics.EstimateSeries.rolling_qualities`.

    ``overlay_seed`` pins the hub the overlay is (re)built from when it
    differs from the series hub (Fig 8 shares one overlay across series).
    """
    specs = [
        TrialSpec(
            "static_probe",
            hub.seed,
            i,
            overlay=graph,
            estimator=factory,
            overlay_seed=overlay_seed,
        )
        for i in range(1, count + 1)
    ]
    return series_from_results(run_trials(specs, runtime=runtime), name=label)


def dynamic_probe_series(
    factory: EstimatorLike,
    graph: OverlayLike,
    trace: ChurnTrace,
    count: int,
    hub: RngHub,
    label: str = "",
    time_per_estimation: float = 1.0,
    max_degree: int = 10,
    runtime: Optional[RuntimeOptions] = None,
) -> EstimateSeries:
    """Probe-style estimations interleaved with churn (Figs 9-14).

    Before estimation ``i`` the churn trace is advanced to time
    ``i·time_per_estimation`` (the paper's probes run "perpetually in order
    to track size variations").  Estimations that fail because the overlay
    degraded under the probe (e.g. the walk got stuck) are recorded as NaN
    rather than aborting the series — a real monitor would simply miss that
    sample.
    """
    params = {
        "trace": trace_to_payload(trace),
        "time_per_estimation": float(time_per_estimation),
        "max_degree": int(max_degree),
    }
    specs = [
        TrialSpec(
            "dynamic_probe",
            hub.seed,
            i,
            overlay=graph,
            estimator=factory,
            params=params,
        )
        for i in range(1, count + 1)
    ]
    return series_from_results(run_trials(specs, runtime=runtime), name=label)


def aggregation_convergence(
    graph: OverlayLike,
    rounds: int,
    hub: RngHub,
    runs: int = 3,
    runtime: Optional[RuntimeOptions] = None,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Per-round convergence curves for ``runs`` independent epochs (Figs 5-6).

    Returns one ``(round_numbers, quality_percent)`` pair per run; the
    quality of a round is read at the epoch initiator, 0 when the epidemic
    has not yet reached a readable state (the paper's curves likewise start
    near 0 and rise to 100).
    """
    specs = [
        TrialSpec(
            "agg_convergence",
            hub.seed,
            r,
            overlay=graph,
            params={"rounds": int(rounds)},
        )
        for r in range(runs)
    ]
    curves: List[Tuple[np.ndarray, np.ndarray]] = []
    for result in run_trials(specs, runtime=runtime):
        qs = np.asarray(result.extra["quality"], dtype=float)
        xs = np.arange(1, qs.size + 1, dtype=float)
        curves.append((xs, qs))
    return curves


def aggregation_dynamic(
    cfg: ExperimentConfig,
    n: int,
    trace_factory: Callable[[int], ChurnTrace],
    horizon: int,
    hub: RngHub,
    runs: int = 3,
    restart_interval: Optional[int] = None,
    runtime: Optional[RuntimeOptions] = None,
) -> Tuple[List[EstimateSeries], List[int]]:
    """Continuous Aggregation monitoring under churn (Figs 15-17).

    Each run gets its own overlay realization and churn randomness (the
    trace *schedule* is shared).  Returns the per-run estimate series
    (x = round, estimate = staircase of end-of-epoch reads, true = live
    size) and the per-run failed-epoch counts.
    """
    interval = restart_interval or cfg.scale.restart_interval
    params = {
        "trace": trace_to_payload(trace_factory(n)),
        "horizon": int(horizon),
        "restart_interval": int(interval),
        "max_degree": int(cfg.max_degree),
    }
    specs = [
        TrialSpec(
            "agg_dynamic",
            hub.seed,
            r,
            overlay=overlay_spec(cfg, n),
            params=params,
        )
        for r in range(runs)
    ]
    all_series: List[EstimateSeries] = []
    failures: List[int] = []
    for result in run_trials(specs, runtime=runtime):
        series = EstimateSeries(name=f"run{result.index + 1}")
        for x, est, size in zip(
            result.extra["x"], result.extra["estimates"], result.extra["true"]
        ):
            series.append(x, est, size)
        all_series.append(series)
        failures.append(int(result.extra["failures"]))
    return all_series, failures
