"""Delay ablation — quantifying the paper's §V conjecture.

"HopsSampling probably outperforms the other algorithms in terms of delay,
which we haven't measured in this comparison due to the fact that physical
network topology was not modeled in our simulator."  The conclusion lists
physical-network modelling as future work; this experiment implements it
(per-message log-normal latency, lock-step rounds) and checks the
conjecture: gossip-spread + immediate ACK beats 50 aggregation round trips
and the sequential wait for ≈sqrt(2lN) walk samples.

Execution model
---------------
The study runs as one ``delay_probe`` batch of four trials — one per
completion-time row, in the fixed pricing order of
:data:`~repro.runtime.DELAY_PRICINGS`.  The latency model travels as a
declarative :class:`~repro.sim.latency.LatencySpec` and is rebuilt inside
the worker against the hub's ``"lat"`` stream; protocol structure (walks,
spread rounds) is measured by running the real estimators once per chunk.
Passing ``runtime=`` shards/caches the batch; results are bit-identical to
the historical serial loop at any worker count because pricing replays the
shared latency stream from the start of the sequence.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.curves import TableResult
from ..runtime import RuntimeOptions, TrialSpec, run_trials
from ..sim.latency import LatencySpec
from ..sim.rng import derive_seed
from .config import ExperimentConfig, resolve_scale
from .runner import overlay_spec

__all__ = ["delay_comparison"]


def delay_comparison(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    median_latency_ms: float = 50.0,
    runtime: Optional[RuntimeOptions] = None,
) -> TableResult:
    """Estimated completion time per algorithm on one overlay.

    Protocol structure (walks taken, spread rounds) is measured by running
    the real estimators; the latency model then prices each structure.
    """
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    hub_seed = derive_seed(cfg.seed, "child:delay")
    params = {
        "latency": LatencySpec(median_ms=median_latency_ms).as_config(),
        "sc": {"l": cfg.sc_l, "timer": cfg.sc_timer},
        "hops": {
            "gossip_to": cfg.hops_fanout,
            "min_hops_reporting": cfg.hops_min_reporting,
        },
        "agg_rounds": cfg.scale.restart_interval,
    }
    specs = [
        TrialSpec(
            "delay_probe",
            hub_seed,
            index,
            overlay=overlay_spec(cfg, cfg.scale.n_100k),
            params=params,
        )
        for index in range(4)
    ]
    results = run_trials(specs, runtime=runtime, tag="ablation_delay")
    by = {r.extra["pricing"]: r for r in results}
    first = next(iter(by.values()))
    structure = first.extra  # measured once per chunk, stamped on every row
    walks = structure["walks"]
    hops_per_walk = structure["hops_per_walk"]
    spread_rounds = structure["spread_rounds"]
    agg_rounds = structure["agg_rounds"]

    table = TableResult(
        table_id="ablation_delay",
        title=(
            f"Estimated completion time (median link latency "
            f"{median_latency_ms:.0f} ms, n={int(first.true_size)})"
        ),
        columns=["algorithm", "structure", "completion_seconds"],
        notes=(
            "paper section V conjecture: gossip spread + immediate ACK is much "
            "shorter than 50 aggregation rounds or the wait for the walk samples"
        ),
    )
    table.add_row(
        algorithm="HopsSampling",
        structure=f"{spread_rounds} spread rounds + 1 reply",
        completion_seconds=round(by["hops"].value, 3),
    )
    table.add_row(
        algorithm="Aggregation",
        structure=f"{agg_rounds} lock-step round trips",
        completion_seconds=round(by["aggregation"].value, 3),
    )
    table.add_row(
        algorithm="Sample&Collide (parallel walks)",
        structure=f"{walks} concurrent walks x {hops_per_walk:.0f} hops",
        completion_seconds=round(by["sc_parallel"].value, 3),
    )
    table.add_row(
        algorithm="Sample&Collide (sequential walks)",
        structure=f"{walks} sequential walks x {hops_per_walk:.0f} hops",
        completion_seconds=round(by["sc_sequential"].value, 3),
    )
    return table
