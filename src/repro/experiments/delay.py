"""Delay ablation — quantifying the paper's §V conjecture.

"HopsSampling probably outperforms the other algorithms in terms of delay,
which we haven't measured in this comparison due to the fact that physical
network topology was not modeled in our simulator."  The conclusion lists
physical-network modelling as future work; this experiment implements it
(per-message log-normal latency, lock-step rounds) and checks the
conjecture: gossip-spread + immediate ACK beats 50 aggregation round trips
and the sequential wait for ≈sqrt(2lN) walk samples.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.curves import TableResult
from ..core.hops_sampling import HopsSamplingEstimator
from ..core.sample_collide import SampleCollideEstimator
from ..sim.latency import LatencyModel
from ..sim.rng import RngHub
from .config import ExperimentConfig, resolve_scale
from .runner import build_overlay

__all__ = ["delay_comparison"]


def delay_comparison(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    median_latency_ms: float = 50.0,
) -> TableResult:
    """Estimated completion time per algorithm on one overlay.

    Protocol structure (walks taken, spread rounds) is measured by running
    the real estimators; the latency model then prices each structure.
    """
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    hub = RngHub(cfg.seed).child("delay")
    graph = build_overlay(cfg, cfg.scale.n_100k, hub)
    model = LatencyModel(median_ms=median_latency_ms, rng=hub.stream("lat"))

    # Measure real execution structure.
    sc_est = SampleCollideEstimator(
        graph, l=cfg.sc_l, timer=cfg.sc_timer, rng=hub.stream("sc")
    ).estimate()
    hops_est = HopsSamplingEstimator(
        graph,
        gossip_to=cfg.hops_fanout,
        min_hops_reporting=cfg.hops_min_reporting,
        rng=hub.stream("hops"),
    ).estimate()

    walks = sc_est.meta["draws"]
    hops_per_walk = sc_est.meta["walk_hops"] / max(walks, 1)
    spread_rounds = hops_est.meta["spread_rounds"]
    agg_rounds = cfg.scale.restart_interval

    sc_seq = model.sample_collide_delay(walks, hops_per_walk, parallel_walks=False)
    sc_par = model.sample_collide_delay(walks, hops_per_walk, parallel_walks=True)
    hops_delay = model.hops_sampling_delay(spread_rounds, fanout=cfg.hops_fanout)
    agg_delay = model.aggregation_delay(agg_rounds)

    table = TableResult(
        table_id="ablation_delay",
        title=(
            f"Estimated completion time (median link latency "
            f"{median_latency_ms:.0f} ms, n={graph.size})"
        ),
        columns=["algorithm", "structure", "completion_seconds"],
        notes=(
            "paper section V conjecture: gossip spread + immediate ACK is much "
            "shorter than 50 aggregation rounds or the wait for the walk samples"
        ),
    )
    table.add_row(
        algorithm="HopsSampling",
        structure=f"{spread_rounds} spread rounds + 1 reply",
        completion_seconds=round(hops_delay.total, 3),
    )
    table.add_row(
        algorithm="Aggregation",
        structure=f"{agg_rounds} lock-step round trips",
        completion_seconds=round(agg_delay.total, 3),
    )
    table.add_row(
        algorithm="Sample&Collide (parallel walks)",
        structure=f"{walks} concurrent walks x {hops_per_walk:.0f} hops",
        completion_seconds=round(sc_par.total, 3),
    )
    table.add_row(
        algorithm="Sample&Collide (sequential walks)",
        structure=f"{walks} sequential walks x {hops_per_walk:.0f} hops",
        completion_seconds=round(sc_seq.total, 3),
    )
    return table
