"""Dynamic-context figures: 9-17 (§IV-D).

Three churn scenarios on the heterogeneous overlay — catastrophic failures,
steady growth (+50%), steady shrinkage (−50%) — against each candidate:

* Figs 9-11  — Sample&Collide, oneShot, probing perpetually;
* Figs 12-14 — HopsSampling, last10runs, restarted per estimation;
* Figs 15-17 — Aggregation monitor with 50-round restart epochs.

The y-axis is the raw estimated size against the true (moving) size; each
figure carries three independent estimation streams over the *same*
evolving overlay, as in the paper's plots (Estimation #1/#2/#3 + Real size).

All figures route through :mod:`repro.runtime`: the probe figures express
each (stream, estimation) pair as one trial of the ``multi_probe`` kind
(workers replay the shared churn schedule, which draws from its own RNG
stream, so parallel chunks reproduce the serial overlay state exactly),
and the Aggregation figures parallelize over their independent runs.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..analysis.curves import FigureResult
from ..churn.models import (
    ChurnTrace,
    catastrophic_trace,
    growing_trace,
    shrinking_trace,
)
from ..runtime import (
    EstimatorSpec,
    RuntimeOptions,
    TrialSpec,
    run_trials,
    trace_to_payload,
)
from ..sim.metrics import EstimateSeries, RollingAverage
from ..sim.rng import RngHub
from .config import ExperimentConfig, resolve_scale
from .runner import aggregation_dynamic, overlay_spec

__all__ = [
    "fig09_sc_catastrophic",
    "fig10_sc_growing",
    "fig11_sc_shrinking",
    "fig12_hops_catastrophic",
    "fig13_hops_growing",
    "fig14_hops_shrinking",
    "fig15_agg_failures",
    "fig16_agg_growing",
    "fig17_agg_shrinking",
]

_STREAMS = 3  # the paper plots Estimation #1..#3


def _probe_trace(kind: str, n: int, count: int) -> ChurnTrace:
    """Churn schedule for the probe-style figures, on a 1..count timeline."""
    if kind == "catastrophic":
        return catastrophic_trace(
            failure_times=(count / 3.0, 2.0 * count / 3.0),
            failure_fraction=0.25,
            rejoin_time=None,
            rejoin_count=0,
        )
    if kind == "growing":
        return growing_trace(n, 0.5, start=1.0, end=float(count), steps=count - 1)
    if kind == "shrinking":
        return shrinking_trace(n, 0.5, start=1.0, end=float(count), steps=count - 1)
    raise ValueError(f"unknown scenario {kind!r}")


def _multi_probe_figure(
    figure_id: str,
    title: str,
    scenario: str,
    estimator: EstimatorSpec,
    cfg: ExperimentConfig,
    smooth_window: int = 0,
    notes: str = "",
    runtime: Optional[RuntimeOptions] = None,
) -> FigureResult:
    """Run _STREAMS estimator streams over one churning overlay."""
    hub = RngHub(cfg.seed).child(figure_id)
    n = cfg.scale.n_100k
    count = cfg.scale.dynamic_estimations
    params = {
        "trace": trace_to_payload(_probe_trace(scenario, n, count)),
        "time_per_estimation": 1.0,
        "max_degree": int(cfg.max_degree),
    }
    specs = [
        TrialSpec(
            "multi_probe",
            hub.seed,
            i,
            overlay=overlay_spec(cfg, n),
            estimator=estimator,
            params=params,
            stream=k,
        )
        for i in range(1, count + 1)
        for k in range(_STREAMS)
    ]
    results = run_trials(specs, runtime=runtime)

    streams: List[EstimateSeries] = []
    for k in range(_STREAMS):
        smoother = RollingAverage(smooth_window) if smooth_window else None
        series = EstimateSeries(name=f"Estimation #{k + 1}")
        for result in results:
            if result.stream != k:
                continue
            value = result.value
            if smoother is not None and value == value:  # skip NaN
                value = smoother.push(value)
            series.append(result.index, value, result.true_size)
        streams.append(series)

    fig = FigureResult(
        figure_id=figure_id,
        title=title,
        xlabel="Number of estimations",
        ylabel="Estimated size",
        params={
            "n0": n,
            "count": count,
            "scenario": scenario,
            "scale": cfg.scale.name,
            "smooth_window": smooth_window,
        },
        notes=notes,
    )
    fig.add("Real network size", streams[0].x, streams[0].true_sizes)
    for series in streams:
        fig.add(series.name, series.x, series.estimates)
    return fig


def _cfg(scale, seed) -> ExperimentConfig:
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    return cfg


# ----------------------------------------------------------------------
# Sample&Collide, Figs 9-11 — oneShot heuristic
# ----------------------------------------------------------------------


def _sc(cfg: ExperimentConfig) -> EstimatorSpec:
    return EstimatorSpec.sample_collide(l=cfg.sc_l, timer=cfg.sc_timer)


def fig09_sc_catastrophic(scale=None, seed=None, runtime=None) -> FigureResult:
    """Fig 9: S&C oneShot under two −25% catastrophic failures.

    Expected shape: tracks the drops immediately (no memory)."""
    cfg = _cfg(scale, seed)
    return _multi_probe_figure(
        "fig09",
        "Sample&Collide oneShot under catastrophic failures",
        "catastrophic",
        _sc(cfg),
        cfg,
        notes="paper: reacts very well to brutal size changes",
        runtime=runtime,
    )


def fig10_sc_growing(scale=None, seed=None, runtime=None) -> FigureResult:
    """Fig 10: S&C oneShot on a +50% growing overlay."""
    cfg = _cfg(scale, seed)
    return _multi_probe_figure(
        "fig10",
        "Sample&Collide oneShot, growing network (+50%)",
        "growing",
        _sc(cfg),
        cfg,
        notes="paper: estimation follows the real size closely",
        runtime=runtime,
    )


def fig11_sc_shrinking(scale=None, seed=None, runtime=None) -> FigureResult:
    """Fig 11: S&C oneShot on a −50% shrinking overlay."""
    cfg = _cfg(scale, seed)
    return _multi_probe_figure(
        "fig11",
        "Sample&Collide oneShot, shrinking network (-50%)",
        "shrinking",
        _sc(cfg),
        cfg,
        notes="paper: reliable despite overlay connectivity degradation",
        runtime=runtime,
    )


# ----------------------------------------------------------------------
# HopsSampling, Figs 12-14 — last10runs heuristic
# ----------------------------------------------------------------------


def _hops(cfg: ExperimentConfig) -> EstimatorSpec:
    return EstimatorSpec.hops_sampling(
        gossip_to=cfg.hops_fanout, min_hops_reporting=cfg.hops_min_reporting
    )


def fig12_hops_catastrophic(scale=None, seed=None, runtime=None) -> FigureResult:
    """Fig 12: HopsSampling last10runs under catastrophic failures.

    Expected shape: follows the drops with the smoothing window's lag,
    slightly under-estimated, more variance than S&C."""
    cfg = _cfg(scale, seed)
    return _multi_probe_figure(
        "fig12",
        "HopsSampling last10runs under catastrophic failures",
        "catastrophic",
        _hops(cfg),
        cfg,
        smooth_window=cfg.last_runs_window,
        notes="paper: good behaviour; slight under-estimate; lags by the averaging window",
        runtime=runtime,
    )


def fig13_hops_growing(scale=None, seed=None, runtime=None) -> FigureResult:
    """Fig 13: HopsSampling last10runs on a +50% growing overlay."""
    cfg = _cfg(scale, seed)
    return _multi_probe_figure(
        "fig13",
        "HopsSampling last10runs, growing network (+50%)",
        "growing",
        _hops(cfg),
        cfg,
        smooth_window=cfg.last_runs_window,
        notes="paper: follows growth, stays slightly under the real size",
        runtime=runtime,
    )


def fig14_hops_shrinking(scale=None, seed=None, runtime=None) -> FigureResult:
    """Fig 14: HopsSampling last10runs on a −50% shrinking overlay."""
    cfg = _cfg(scale, seed)
    return _multi_probe_figure(
        "fig14",
        "HopsSampling last10runs, shrinking network (-50%)",
        "shrinking",
        _hops(cfg),
        cfg,
        smooth_window=cfg.last_runs_window,
        notes="paper: tracks the shrink; higher variation than S&C",
        runtime=runtime,
    )


# ----------------------------------------------------------------------
# Aggregation, Figs 15-17 — continuous monitor, 50-round restarts
# ----------------------------------------------------------------------


def _agg_figure(
    figure_id: str,
    title: str,
    trace_factory: Callable[[int], ChurnTrace],
    cfg: ExperimentConfig,
    notes: str,
    runtime: Optional[RuntimeOptions] = None,
) -> FigureResult:
    hub = RngHub(cfg.seed).child(figure_id)
    n = cfg.scale.n_100k
    horizon = cfg.scale.aggregation_horizon
    series_list, failures = aggregation_dynamic(
        cfg, n, trace_factory, horizon, hub, runs=_STREAMS, runtime=runtime
    )
    fig = FigureResult(
        figure_id=figure_id,
        title=title,
        xlabel="#Round",
        ylabel="Estimated size",
        params={
            "n0": n,
            "horizon": horizon,
            "restart_interval": cfg.scale.restart_interval,
            "failed_epochs": failures,
            "scale": cfg.scale.name,
        },
        notes=notes,
    )
    fig.add("Real size", series_list[0].x, series_list[0].true_sizes)
    for k, series in enumerate(series_list, start=1):
        fig.add(f"Estimation #{k}", series.x, series.estimates)
    return fig


def fig15_agg_failures(scale=None, seed=None, runtime=None) -> FigureResult:
    """Fig 15: Aggregation under catastrophic failures.

    Paper schedule (on the 10,000-round horizon): −25% at rounds 100 and
    500, +25% of the initial size back at round 700 — rescaled onto this
    preset's horizon.  Expected shape: the estimate is a staircase lagging
    one restart epoch; each −25% shows the conservative effect until the
    next restart."""
    cfg = _cfg(scale, seed)
    t1, t2, t3 = cfg.scale.scaled_events(100.0, 500.0, 700.0)

    def trace(n0: int) -> ChurnTrace:
        return catastrophic_trace(
            failure_times=(t1, t2),
            failure_fraction=0.25,
            rejoin_time=t3,
            rejoin_count=n0 // 4,
        )

    return _agg_figure(
        "fig15",
        "Aggregation monitor under catastrophic failures",
        trace,
        cfg,
        notes="paper: reasonable until ~30% cumulative departures; lag = one epoch",
        runtime=runtime,
    )


def fig16_agg_growing(scale=None, seed=None, runtime=None) -> FigureResult:
    """Fig 16: Aggregation on a +50% growing overlay.

    Expected shape: good adaptation — joiners enter epochs at value 0,
    which preserves mass, so even within an epoch the average tracks
    1/N(t)."""
    cfg = _cfg(scale, seed)
    horizon = cfg.scale.aggregation_horizon

    # "Constant arrivals" discretized to one batch per ~10 rounds: at
    # ≤0.5% of the population per batch this is indistinguishable from
    # per-round churn for 50-round epochs, and it keeps overlay-snapshot
    # rebuilds off the critical path.
    def trace(n0: int) -> ChurnTrace:
        return growing_trace(
            n0, 0.5, start=1.0, end=float(horizon), steps=max(horizon // 10, 10)
        )

    return _agg_figure(
        "fig16",
        "Aggregation monitor, growing network (+50%)",
        trace,
        cfg,
        notes="paper: fairly good adaptation to growth",
        runtime=runtime,
    )


def fig17_agg_shrinking(scale=None, seed=None, runtime=None) -> FigureResult:
    """Fig 17: Aggregation on a −50% shrinking overlay.

    Expected shape: tracks with epoch lag until cumulative departures
    (~30%) fragment the unrepai­red overlay; then epochs stop converging and
    estimates go wild — the paper's headline failure mode."""
    cfg = _cfg(scale, seed)
    horizon = cfg.scale.aggregation_horizon

    # Same ~10-round discretization of "constant departures" as fig16.
    def trace(n0: int) -> ChurnTrace:
        return shrinking_trace(
            n0, 0.5, start=1.0, end=float(horizon), steps=max(horizon // 10, 10)
        )

    return _agg_figure(
        "fig17",
        "Aggregation monitor, shrinking network (-50%)",
        trace,
        cfg,
        notes="paper: degrades past ~30% departures (overlay loses connectivity)",
        runtime=runtime,
    )
