"""Timer-budget ablation — §III-A's expansion caveat, measured.

The paper fixes ``T = 10`` as "sufficient for an accurate sampling" and
notes that "the expansion properties of the graph influence how large T
should be selected in order to have negligible bias".  This experiment
sweeps ``T`` on two topologies at opposite ends of the expansion spectrum —
the paper's heterogeneous random overlay (an expander) and a ring lattice
(diameter Θ(N), the worst case) — and reports Sample&Collide's bias at
each point.

Expected shape: on the expander, small ``T`` under-estimates severely
(walks stay near the initiator, samples collide early) and ``T ≈ 5-10``
already removes the bias; on the ring, even ``T = 10`` is insufficient —
the quantitative form of the paper's caveat, and the reason ``T`` cannot
be blindly ported to overlays with poor expansion.

Each (topology × T) grid point runs as one cached ``fresh_probe`` batch
through :func:`repro.runtime.sweep` — pass ``runtime=`` to shard the
repetitions over workers and serve reruns from the results store, with
output bit-identical to the serial loops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.curves import TableResult
from ..runtime import (
    EstimatorSpec,
    OverlaySpec,
    RuntimeOptions,
    TrialSpec,
    sweep,
)
from ..sim.rng import derive_seed
from .config import ExperimentConfig, resolve_scale

__all__ = ["sc_timer_sweep"]


def sc_timer_sweep(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    timers: Sequence[float] = (1.0, 2.0, 5.0, 10.0),
    repetitions: int = 8,
    runtime: Optional[RuntimeOptions] = None,
) -> TableResult:
    """Sample&Collide quality vs walk budget ``T`` on expander vs ring.

    Grid: one cached batch per (topology, T) cell, ``repetitions``
    one-shot estimations each; the batch's content address covers the
    derived hub seed, overlay spec, ``l``/``T``, and repetition indices.
    """
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    hub_seed = derive_seed(cfg.seed, "child:timer")
    # Keep the sweep affordable: the ring's mixing is so slow that the
    # interesting regime is fully visible at a fraction of n_100k.
    n = max(cfg.scale.n_100k // 4, 500)
    overlays: Dict[str, OverlaySpec] = {
        "heterogeneous (expander)": OverlaySpec.heterogeneous(
            n, max_degree=cfg.max_degree, min_degree=cfg.min_degree
        ),
        "ring lattice (poor expansion)": OverlaySpec.ring_lattice(n, k=2),
    }
    l = 50  # modest collision target: the sweep isolates sampling bias
    cells = [(topo, timer) for topo in overlays for timer in timers]

    def _cell_batch(cell: Tuple[str, float]) -> List[TrialSpec]:
        topo_name, timer = cell
        return [
            TrialSpec(
                "fresh_probe",
                hub_seed,
                k,
                overlay=overlays[topo_name],
                estimator=EstimatorSpec.sample_collide(l=l, timer=timer),
                params={"fresh_name": f"{topo_name}:{timer}"},
            )
            for k in range(repetitions)
        ]

    grid = sweep(_cell_batch, cells, runtime=runtime, tag="ablation_sc_timer")
    table = TableResult(
        table_id="ablation_sc_timer",
        title=f"Sample&Collide quality vs timer budget T (n={n})",
        columns=["topology", "timer", "mean_quality_pct", "mean_messages"],
        notes=(
            "paper section III-A: T=10 suffices for accurate sampling, but "
            "'the expansion properties of the graph influence how large T "
            "should be selected'"
        ),
    )
    for (topo_name, timer), results in grid.items():
        quals = [100.0 * r.value / r.true_size for r in results]
        msgs = [r.extra["messages"] for r in results]
        table.add_row(
            topology=topo_name,
            timer=timer,
            mean_quality_pct=round(float(np.mean(quals)), 1),
            mean_messages=int(np.mean(msgs)),
        )
    return table
