"""Timer-budget ablation — §III-A's expansion caveat, measured.

The paper fixes ``T = 10`` as "sufficient for an accurate sampling" and
notes that "the expansion properties of the graph influence how large T
should be selected in order to have negligible bias".  This experiment
sweeps ``T`` on two topologies at opposite ends of the expansion spectrum —
the paper's heterogeneous random overlay (an expander) and a ring lattice
(diameter Θ(N), the worst case) — and reports Sample&Collide's bias at
each point.

Expected shape: on the expander, small ``T`` under-estimates severely
(walks stay near the initiator, samples collide early) and ``T ≈ 5-10``
already removes the bias; on the ring, even ``T = 10`` is insufficient —
the quantitative form of the paper's caveat, and the reason ``T`` cannot
be blindly ported to overlays with poor expansion.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..analysis.curves import TableResult
from ..core.sample_collide import SampleCollideEstimator
from ..overlay.builders import ring_lattice
from ..sim.rng import RngHub
from .config import ExperimentConfig, resolve_scale
from .runner import build_overlay

__all__ = ["sc_timer_sweep"]


def sc_timer_sweep(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    timers: Sequence[float] = (1.0, 2.0, 5.0, 10.0),
    repetitions: int = 8,
) -> TableResult:
    """Sample&Collide quality vs walk budget ``T`` on expander vs ring."""
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    hub = RngHub(cfg.seed).child("timer")
    # Keep the sweep affordable: the ring's mixing is so slow that the
    # interesting regime is fully visible at a fraction of n_100k.
    n = max(cfg.scale.n_100k // 4, 500)
    graphs = {
        "heterogeneous (expander)": build_overlay(cfg, n, hub),
        "ring lattice (poor expansion)": ring_lattice(n, k=2),
    }
    table = TableResult(
        table_id="ablation_sc_timer",
        title=f"Sample&Collide quality vs timer budget T (n={n})",
        columns=["topology", "timer", "mean_quality_pct", "mean_messages"],
        notes=(
            "paper section III-A: T=10 suffices for accurate sampling, but "
            "'the expansion properties of the graph influence how large T "
            "should be selected'"
        ),
    )
    l = 50  # modest collision target: the sweep isolates sampling bias
    for topo_name, graph in graphs.items():
        true = graph.size
        for timer in timers:
            quals, msgs = [], []
            for _ in range(repetitions):
                est = SampleCollideEstimator(
                    graph, l=l, timer=timer, rng=hub.fresh(f"{topo_name}:{timer}")
                ).estimate()
                quals.append(100.0 * est.value / true)
                msgs.append(est.messages)
            table.add_row(
                topology=topo_name,
                timer=timer,
                mean_quality_pct=round(float(np.mean(quals)), 1),
                mean_messages=int(np.mean(msgs)),
            )
    return table
