"""Static-context figures: 1-6 and 18 (§IV-C).

All run on the heterogeneous random overlay (max degree 10, average ≈7.2)
with the size held constant; quality is normalized to 100.

Every figure routes through the :mod:`repro.runtime` subsystem: trials are
declared as picklable specs, so ``runtime=RuntimeOptions(workers=...)``
shards them over a process pool and ``store=`` turns reruns into cache
hits, with results bit-identical to a serial run.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.curves import FigureResult
from ..runtime import EstimatorSpec, RuntimeOptions
from ..sim.rng import RngHub
from .config import ExperimentConfig, resolve_scale
from .runner import aggregation_convergence, overlay_spec, static_probe_series

__all__ = [
    "fig01_sample_collide_100k",
    "fig02_sample_collide_1m",
    "fig03_hops_sampling_100k",
    "fig04_hops_sampling_1m",
    "fig05_aggregation_100k",
    "fig06_aggregation_1m",
    "fig18_sample_collide_l10",
]


def _sc_spec(cfg: ExperimentConfig, l: int) -> EstimatorSpec:
    return EstimatorSpec.sample_collide(l=l, timer=cfg.sc_timer)


def _hops_spec(cfg: ExperimentConfig) -> EstimatorSpec:
    return EstimatorSpec.hops_sampling(
        gossip_to=cfg.hops_fanout, min_hops_reporting=cfg.hops_min_reporting
    )


def _probe_figure(
    figure_id: str,
    title: str,
    estimator: EstimatorSpec,
    n: int,
    count: int,
    cfg: ExperimentConfig,
    notes: str,
    runtime: Optional[RuntimeOptions] = None,
) -> FigureResult:
    hub = RngHub(cfg.seed).child(figure_id)
    series = static_probe_series(
        estimator,
        overlay_spec(cfg, n),
        count,
        hub,
        label=figure_id,
        runtime=runtime,
    )
    fig = FigureResult(
        figure_id=figure_id,
        title=title,
        xlabel="Number of estimations",
        ylabel="Quality %",
        params={"n": n, "count": count, "scale": cfg.scale.name},
        notes=notes,
    )
    fig.add("one shot", series.x, series.qualities())
    fig.add(
        "last 10 runs",
        series.x,
        series.rolling_qualities(cfg.last_runs_window),
    )
    return fig


def fig01_sample_collide_100k(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    runtime: Optional[RuntimeOptions] = None,
) -> FigureResult:
    """Fig 1: Sample&Collide oneShot & last10runs, l=200, '100k' overlay.

    Expected shape: oneShot mostly within ±10% (peaks 10-20%); last10runs
    within ≈3-4%.
    """
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    return _probe_figure(
        "fig01",
        "Sample&Collide oneShot/last10runs, l=200, static (paper: 100,000 nodes)",
        _sc_spec(cfg, cfg.sc_l),
        cfg.scale.n_100k,
        cfg.scale.static_estimations,
        cfg,
        notes="paper shape: oneShot within ~10% (peaks to 20%), last10runs within 3-4%",
        runtime=runtime,
    )


def fig02_sample_collide_1m(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    runtime: Optional[RuntimeOptions] = None,
) -> FigureResult:
    """Fig 2: as Fig 1 on the '1M' overlay (18 estimations)."""
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    return _probe_figure(
        "fig02",
        "Sample&Collide oneShot/last10runs, l=200, static (paper: 1,000,000 nodes)",
        _sc_spec(cfg, cfg.sc_l),
        cfg.scale.n_1m,
        cfg.scale.static_estimations_1m,
        cfg,
        notes="accuracy depends on l only, not N: same bands as fig01",
        runtime=runtime,
    )


def fig03_hops_sampling_100k(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    runtime: Optional[RuntimeOptions] = None,
) -> FigureResult:
    """Fig 3: HopsSampling oneShot & last10runs, '100k' overlay.

    Expected shape: noisier than S&C, last10runs within ≈20%, oneShot peaks
    beyond 50%, consistent under-estimation.
    """
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    return _probe_figure(
        "fig03",
        "HopsSampling oneShot/last10runs, static (paper: 100,000 nodes)",
        _hops_spec(cfg),
        cfg.scale.n_100k,
        cfg.scale.static_estimations,
        cfg,
        notes="paper shape: last10runs within ~20%, oneShot peaks >50%, under-estimates",
        runtime=runtime,
    )


def fig04_hops_sampling_1m(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    runtime: Optional[RuntimeOptions] = None,
) -> FigureResult:
    """Fig 4: as Fig 3 on the '1M' overlay (20 estimations)."""
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    return _probe_figure(
        "fig04",
        "HopsSampling oneShot/last10runs, static (paper: 1,000,000 nodes)",
        _hops_spec(cfg),
        cfg.scale.n_1m,
        max(cfg.scale.static_estimations_1m, 20),
        cfg,
        notes="algorithm scales: same bands as fig03",
        runtime=runtime,
    )


def _aggregation_figure(
    figure_id: str,
    title: str,
    n: int,
    cfg: ExperimentConfig,
    runtime: Optional[RuntimeOptions] = None,
) -> FigureResult:
    hub = RngHub(cfg.seed).child(figure_id)
    curves = aggregation_convergence(
        overlay_spec(cfg, n),
        cfg.scale.aggregation_rounds,
        hub,
        runs=3,
        runtime=runtime,
    )
    fig = FigureResult(
        figure_id=figure_id,
        title=title,
        xlabel="#Round",
        ylabel="Quality %",
        params={"n": n, "rounds": cfg.scale.aggregation_rounds, "scale": cfg.scale.name},
        notes="paper shape: converges to ~100% by ~40 rounds (100k) / ~50 (1M)",
    )
    for i, (xs, qs) in enumerate(curves, start=1):
        fig.add(f"Estimation #{i}", xs, qs)
    return fig


def fig05_aggregation_100k(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    runtime: Optional[RuntimeOptions] = None,
) -> FigureResult:
    """Fig 5: Aggregation quality vs round, 3 epochs, '100k' overlay."""
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    return _aggregation_figure(
        "fig05",
        "Aggregation convergence (paper: 100,000 nodes)",
        cfg.scale.n_100k,
        cfg,
        runtime=runtime,
    )


def fig06_aggregation_1m(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    runtime: Optional[RuntimeOptions] = None,
) -> FigureResult:
    """Fig 6: Aggregation quality vs round, 3 epochs, '1M' overlay."""
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    return _aggregation_figure(
        "fig06",
        "Aggregation convergence (paper: 1,000,000 nodes)",
        cfg.scale.n_1m,
        cfg,
        runtime=runtime,
    )


def fig18_sample_collide_l10(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    runtime: Optional[RuntimeOptions] = None,
) -> FigureResult:
    """Fig 18: Sample&Collide with l=10 — the cheap/noisy configuration.

    Expected shape: one-shot noise ≈1/sqrt(10)≈32% relative std, overhead
    ≈1/4.6 of the l=200 configuration (§V: "only 100,000 messages" at 100k).
    """
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    hub = RngHub(cfg.seed).child("fig18")
    n = cfg.scale.n_100k
    count = max(cfg.scale.static_estimations // 2, 25)
    series = static_probe_series(
        _sc_spec(cfg, 10),
        overlay_spec(cfg, n),
        count,
        hub,
        label="fig18",
        runtime=runtime,
    )
    fig = FigureResult(
        figure_id="fig18",
        title="Sample&Collide with l=10 (paper: 100,000 nodes)",
        xlabel="Number of estimations",
        ylabel="Quality %",
        params={"n": n, "l": 10, "count": count, "scale": cfg.scale.name},
        notes="paper shape: noisy one-shot (rel. std ~32%) at ~1/5 the l=200 cost",
    )
    fig.add("One Shot", series.x, series.qualities())
    return fig
