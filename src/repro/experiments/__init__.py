"""Experiment harness: one callable per paper figure/table, plus ablations.

See DESIGN.md §4 for the experiment index.  Every function takes
``scale=`` (``"small" | "default" | "paper"`` or a
:class:`~repro.experiments.config.Scale`) and ``seed=``, and returns a
:class:`~repro.analysis.curves.FigureResult` or
:class:`~repro.analysis.curves.TableResult`.
"""

from .ablations import (
    hops_min_reporting_sweep,
    hops_oracle_bias,
    random_tour_gap,
    sc_cost_vs_l,
    topology_comparison,
)
from .config import SCALES, ExperimentConfig, Scale, resolve_scale
from .delay import delay_comparison
from .dynamic import (
    fig09_sc_catastrophic,
    fig10_sc_growing,
    fig11_sc_shrinking,
    fig12_hops_catastrophic,
    fig13_hops_growing,
    fig14_hops_shrinking,
    fig15_agg_failures,
    fig16_agg_growing,
    fig17_agg_shrinking,
)
from .overhead import analytic_overhead_models, table1_overhead
from .idspace_exp import idspace_comparison
from .repair_exp import repair_comparison
from .timer_exp import sc_timer_sweep
from .scale_free_exp import fig07_scale_free_degrees, fig08_scale_free_comparison
from .static import (
    fig01_sample_collide_100k,
    fig02_sample_collide_1m,
    fig03_hops_sampling_100k,
    fig04_hops_sampling_1m,
    fig05_aggregation_100k,
    fig06_aggregation_1m,
    fig18_sample_collide_l10,
)

#: All figure functions keyed by their paper id (used by the CLI).
FIGURES = {
    "fig1": fig01_sample_collide_100k,
    "fig2": fig02_sample_collide_1m,
    "fig3": fig03_hops_sampling_100k,
    "fig4": fig04_hops_sampling_1m,
    "fig5": fig05_aggregation_100k,
    "fig6": fig06_aggregation_1m,
    "fig7": fig07_scale_free_degrees,
    "fig8": fig08_scale_free_comparison,
    "fig9": fig09_sc_catastrophic,
    "fig10": fig10_sc_growing,
    "fig11": fig11_sc_shrinking,
    "fig12": fig12_hops_catastrophic,
    "fig13": fig13_hops_growing,
    "fig14": fig14_hops_shrinking,
    "fig15": fig15_agg_failures,
    "fig16": fig16_agg_growing,
    "fig17": fig17_agg_shrinking,
    "fig18": fig18_sample_collide_l10,
}

#: All table/ablation functions keyed by name (used by the CLI).
TABLES = {
    "table1": table1_overhead,
    "ablation_sc_l": sc_cost_vs_l,
    "ablation_hops_oracle": hops_oracle_bias,
    "ablation_random_tour": random_tour_gap,
    "ablation_min_hops": hops_min_reporting_sweep,
    "ablation_topology": topology_comparison,
    "ablation_delay": delay_comparison,
    "ablation_repair": repair_comparison,
    "ablation_idspace": idspace_comparison,
    "ablation_sc_timer": sc_timer_sweep,
}

__all__ = [
    "FIGURES",
    "TABLES",
    "SCALES",
    "ExperimentConfig",
    "Scale",
    "analytic_overhead_models",
    "delay_comparison",
    "idspace_comparison",
    "repair_comparison",
    "sc_timer_sweep",
    "resolve_scale",
    "table1_overhead",
    "sc_cost_vs_l",
    "hops_oracle_bias",
    "random_tour_gap",
    "hops_min_reporting_sweep",
    "topology_comparison",
    "fig01_sample_collide_100k",
    "fig02_sample_collide_1m",
    "fig03_hops_sampling_100k",
    "fig04_hops_sampling_1m",
    "fig05_aggregation_100k",
    "fig06_aggregation_1m",
    "fig07_scale_free_degrees",
    "fig08_scale_free_comparison",
    "fig09_sc_catastrophic",
    "fig10_sc_growing",
    "fig11_sc_shrinking",
    "fig12_hops_catastrophic",
    "fig13_hops_growing",
    "fig14_hops_shrinking",
    "fig15_agg_failures",
    "fig16_agg_growing",
    "fig17_agg_shrinking",
    "fig18_sample_collide_l10",
]
