"""Scale-free topology experiments: Figs 7 and 8 (§IV-C-g).

Fig 7 plots the Barabási–Albert overlay's power-law degree distribution;
Fig 8 runs all three candidates on it with the standard parameters
(S&C l=200 oneShot, Aggregation read after 50 rounds per estimation,
HopsSampling last10runs).  Expected shapes: S&C unbiased (the timer walk
corrects the degree bias), Aggregation accurate, HopsSampling's
under-estimation *amplified* (hubs make the fanout-2 spread miss more of
the periphery... the paper flags this as its §V discussion point).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..analysis.curves import FigureResult
from ..runtime import (
    EstimatorSpec,
    OverlaySpec,
    RuntimeOptions,
    TrialSpec,
    run_trials,
    series_from_results,
)
from ..sim.rng import RngHub
from .config import ExperimentConfig, resolve_scale
from .runner import static_probe_series

__all__ = ["fig07_scale_free_degrees", "fig08_scale_free_comparison"]


def fig07_scale_free_degrees(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    runtime: Optional[RuntimeOptions] = None,
) -> FigureResult:
    """Fig 7: degree distribution of the BA overlay (log-log power law).

    Paper at 100,000 nodes: min degree 3, max ≈1177, average ≈6.

    The overlay build and its degree reduction run as one
    ``overlay_stats`` trial through :func:`~repro.runtime.run_trials`, so
    the (expensive at paper scale) BA construction caches and journals
    like every other experiment.  The trial rebuilds the graph from the
    same ``fig07`` child-hub seed and ``overlay.sf`` stream the serial
    code used, so the histogram is bit-identical.
    """
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    hub = RngHub(cfg.seed).child("fig07")
    spec = TrialSpec(
        "overlay_stats",
        hub.seed,
        0,
        overlay=OverlaySpec.scale_free(cfg.scale.n_100k, m=3),
    )
    [result] = run_trials([spec], runtime=runtime)
    stats = result.extra
    hist = [(int(d), int(c)) for d, c in stats["histogram"]]
    degrees = np.array([d for d, _ in hist], dtype=float)
    counts = np.array([c for _, c in hist], dtype=float)
    fig = FigureResult(
        figure_id="fig07",
        title="Scale-free degree distribution (BA, m=3)",
        xlabel="Degree (log scale in the paper)",
        ylabel="Number of nodes (log scale in the paper)",
        params={
            "n": int(result.true_size),
            "min_degree": int(stats["min_degree"]),
            "max_degree": int(stats["max_degree"]),
            "mean_degree": round(float(stats["mean_degree"]), 2),
            "powerlaw_exponent": round(float(stats["powerlaw_exponent"]), 2),
            "scale": cfg.scale.name,
        },
        notes="paper at 100k: min 3, max ~1177, average ~6; BA theory gamma~3",
    )
    fig.add("Scale Free Distribution", degrees, counts)
    # Log-log version for direct slope inspection.
    fig.add("log10-log10", np.log10(degrees), np.log10(counts))
    return fig


def fig08_scale_free_comparison(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    runtime: Optional[RuntimeOptions] = None,
) -> FigureResult:
    """Fig 8: the three candidates head-to-head on one scale-free overlay.

    Expected shape: Sample&Collide and Aggregation stay near 100%;
    HopsSampling's under-estimation is amplified versus the random overlay.

    All three series share one overlay realization: the spec is rebuilt in
    each worker from the figure hub's seed (``overlay_seed``), while each
    series draws estimation randomness from its own child hub.
    """
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    hub = RngHub(cfg.seed).child("fig08")
    n = cfg.scale.n_100k
    count = cfg.scale.static_estimations
    overlay = OverlaySpec.scale_free(n, m=3)

    sc_series = static_probe_series(
        EstimatorSpec.sample_collide(l=cfg.sc_l, timer=cfg.sc_timer),
        overlay,
        count,
        hub.child("sc"),
        label="sample_collide",
        runtime=runtime,
        overlay_seed=hub.seed,
    )
    hops_series = static_probe_series(
        EstimatorSpec.hops_sampling(
            gossip_to=cfg.hops_fanout, min_hops_reporting=cfg.hops_min_reporting
        ),
        overlay,
        count,
        hub.child("hops"),
        label="hops_sampling",
        runtime=runtime,
        overlay_seed=hub.seed,
    )
    # Aggregation: one fresh 50-round epoch per estimation (paper: "each
    # Aggregation estimation occurs after 50 rounds" — kept fixed at the
    # paper's value rather than the scaled restart interval, since this is
    # a static experiment where only full convergence is of interest).
    agg_specs = [
        TrialSpec(
            "agg_epoch",
            hub.child("agg").seed,
            i,
            overlay=overlay,
            overlay_seed=hub.seed,
            params={"rounds": 50},
        )
        for i in range(1, count + 1)
    ]
    agg_series = series_from_results(
        run_trials(agg_specs, runtime=runtime), name="aggregation"
    )

    fig = FigureResult(
        figure_id="fig08",
        title="All three algorithms on a scale-free overlay",
        xlabel="Number of estimations",
        ylabel="Quality %",
        params={"n": n, "count": count, "scale": cfg.scale.name},
        notes=(
            "paper shape: S&C unbiased, Aggregation accurate, "
            "HopsSampling under-estimation amplified"
        ),
    )
    fig.add("Aggregation", agg_series.x, agg_series.qualities())
    fig.add("Sample&collide", sc_series.x, sc_series.qualities())
    fig.add(
        "HopsSampling",
        hops_series.x,
        hops_series.rolling_qualities(cfg.last_runs_window),
    )
    return fig
