"""Table I: per-estimation overhead of each algorithm (§IV-E).

The paper's Table I, on a 100,000-node overlay:

=============================  ============  ==========  ===========
configuration                  accuracy      overhead    (messages)
=============================  ============  ==========  ===========
Sample&Collide l=200 oneShot   ±10%          0.5M
HopsSampling last10runs        −20%          2.5M
Sample&Collide l=200 last10    ±4%           5M
Aggregation 50 rounds          −1%           10M
=============================  ============  ==========  ===========

This module measures the same four rows (plus the analytic models) at any
scale.  The closed forms the measurements should match:

* S&C oneShot ≈ ``sqrt(2·l·N) · (T·d̄ + 1)``; last10runs = 10×;
* HopsSampling ≈ ``(spread ≈ 2.5·N) + replies`` per shot; last10runs = 10×;
* Aggregation = ``N · rounds · 2`` exactly (push/pull).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..analysis.curves import TableResult
from ..runtime import EstimatorSpec, RuntimeOptions, TrialSpec, run_trials
from ..sim.rng import RngHub
from .config import ExperimentConfig, resolve_scale
from .runner import overlay_spec

__all__ = ["table1_overhead", "analytic_overhead_models"]

COLUMNS = [
    "algorithm",
    "parameters",
    "accuracy_pct",
    "overhead_messages",
    "overhead_model",
]


def analytic_overhead_models(
    n: int, l: int = 200, timer: float = 10.0, avg_degree: float = 7.2, rounds: int = 50
) -> dict:
    """Closed-form per-estimation message costs (see module docstring)."""
    sc_one = math.sqrt(2.0 * l * n) * (timer * avg_degree + 1.0)
    return {
        "sample_collide_oneshot": sc_one,
        "sample_collide_last10": 10.0 * sc_one,
        "hops_sampling_oneshot": 2.5 * n + 0.8 * n,  # spread + typical replies
        "hops_sampling_last10": 10.0 * (2.5 * n + 0.8 * n),
        "aggregation": 2.0 * n * rounds,
    }


def table1_overhead(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    repetitions: int = 10,
    runtime: Optional[RuntimeOptions] = None,
) -> TableResult:
    """Measure Table I on one heterogeneous overlay.

    ``repetitions`` one-shot estimations are run per probe algorithm; the
    last10runs rows report 10× the mean per-shot cost and the accuracy of
    the window-averaged estimate, exactly as the paper's heuristics define.

    Each row is one :func:`~repro.runtime.run_trials` batch (so rows
    parallelize, cache and journal like the figures).  RNG lineage is
    preserved exactly: the probe rows reproduce the historical
    ``hub.fresh("sc")``/``hub.fresh("hops")`` draws via ``fresh_probe``
    trials whose index *is* the fresh counter, the aggregation row draws
    the hub's continuous ``"agg"`` stream via ``stream_epoch``, and the
    overlay statistics the analytic models need come from a cached
    ``overlay_stats`` trial on the same overlay realization.
    """
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    hub = RngHub(cfg.seed).child("table1")
    n = cfg.scale.n_100k
    overlay = overlay_spec(cfg, n)

    sc_specs = [
        TrialSpec(
            "fresh_probe",
            hub.seed,
            i,
            overlay=overlay,
            estimator=EstimatorSpec.sample_collide(l=cfg.sc_l, timer=cfg.sc_timer),
            params={"fresh_name": "sc"},
        )
        for i in range(repetitions)
    ]
    hops_specs = [
        TrialSpec(
            "fresh_probe",
            hub.seed,
            i,
            overlay=overlay,
            estimator=EstimatorSpec.hops_sampling(
                gossip_to=cfg.hops_fanout,
                min_hops_reporting=cfg.hops_min_reporting,
            ),
            params={"fresh_name": "hops"},
        )
        for i in range(repetitions)
    ]
    agg_specs = [
        TrialSpec(
            "stream_epoch",
            hub.seed,
            0,
            overlay=overlay,
            params={"stream": "agg", "rounds": int(cfg.scale.restart_interval)},
        )
    ]
    stats_specs = [TrialSpec("overlay_stats", hub.seed, 0, overlay=overlay)]

    sc_results = run_trials(sc_specs, runtime=runtime)
    hops_results = run_trials(hops_specs, runtime=runtime)
    [agg_result] = run_trials(agg_specs, runtime=runtime)
    [stats_result] = run_trials(stats_specs, runtime=runtime)

    true = int(sc_results[0].true_size)

    # --- Sample&Collide -------------------------------------------------
    sc_vals = [r.value for r in sc_results]
    sc_msgs = [r.extra["messages"] for r in sc_results]
    sc_mean_msgs = float(np.mean(sc_msgs))
    sc_one_acc = float(np.mean(np.abs(100.0 * np.array(sc_vals) / true - 100.0)))
    sc_last_acc = abs(100.0 * float(np.mean(sc_vals[-10:])) / true - 100.0)

    # --- HopsSampling ---------------------------------------------------
    hops_vals = [r.value for r in hops_results]
    hops_msgs = [r.extra["messages"] for r in hops_results]
    hops_mean_msgs = float(np.mean(hops_msgs))
    hops_last = float(np.mean(hops_vals[-10:]))
    hops_last_acc = 100.0 * hops_last / true - 100.0  # signed: bias is the story

    # --- Aggregation ----------------------------------------------------
    agg_acc = 100.0 * agg_result.value / true - 100.0

    models = analytic_overhead_models(
        true,
        l=cfg.sc_l,
        timer=cfg.sc_timer,
        avg_degree=stats_result.extra["average_degree"],
        rounds=cfg.scale.restart_interval,
    )

    table = TableResult(
        table_id="table1",
        title=f"Per-estimation overhead on an n={true} heterogeneous overlay",
        columns=COLUMNS,
        notes=(
            "paper at n=100,000: 0.5M / 2.5M / 5M / 10M messages; "
            "accuracy +/-10% / -20% / +/-4% / -1%"
        ),
    )
    table.add_row(
        algorithm="Sample&Collide (l=200)",
        parameters="oneShot",
        accuracy_pct=round(sc_one_acc, 2),
        overhead_messages=int(sc_mean_msgs),
        overhead_model=int(models["sample_collide_oneshot"]),
    )
    table.add_row(
        algorithm="HopsSampling",
        parameters="last10runs",
        accuracy_pct=round(hops_last_acc, 2),
        overhead_messages=int(10 * hops_mean_msgs),
        overhead_model=int(models["hops_sampling_last10"]),
    )
    table.add_row(
        algorithm="Sample&Collide (l=200)",
        parameters="last10runs",
        accuracy_pct=round(sc_last_acc, 2),
        overhead_messages=int(10 * sc_mean_msgs),
        overhead_model=int(models["sample_collide_last10"]),
    )
    table.add_row(
        algorithm="Aggregation",
        parameters=f"{cfg.scale.restart_interval} rounds",
        accuracy_pct=round(agg_acc, 2),
        overhead_messages=int(agg_result.extra["messages"]),
        overhead_model=int(models["aggregation"]),
    )
    return table
