"""Ablation experiments backing the paper's §V discussion claims.

Each function measures one claim the paper makes in prose:

* :func:`sc_cost_vs_l` — "the algorithm with l = 100 incurs a cost which is
  only 3.27 times the one incurred for l = 10" and l=200 costs "1.40 times
  the one incurred for l = 100" (§IV-E);
* :func:`hops_oracle_bias` — "we verified our intuition by giving the
  accurate distance from the initiator to all nodes in the overlay, and the
  resulting size estimation was correct" (§V);
* :func:`random_tour_gap` — "the overhead of the Sample&Collide algorithm
  is much lower than the one of Random Tour" (§II);
* :func:`hops_min_reporting_sweep` — "using a lower minHopsReporting
  parameter does not significantly reduce the overhead, while degrading
  accuracy" (§V);
* :func:`topology_comparison` — homogeneous graphs "consistently improved
  all algorithms" over heterogeneous ones (§IV-A).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..analysis.curves import TableResult
from ..core.aggregation import AggregationProtocol
from ..core.hops_sampling import HopsSamplingEstimator
from ..core.random_tour import RandomTourEstimator
from ..core.sample_collide import SampleCollideEstimator
from ..overlay.builders import heterogeneous_random, homogeneous_random
from ..sim.rng import RngHub
from .config import ExperimentConfig, resolve_scale
from .runner import build_overlay

__all__ = [
    "sc_cost_vs_l",
    "hops_oracle_bias",
    "random_tour_gap",
    "hops_min_reporting_sweep",
    "topology_comparison",
]


def _setup(scale, seed, tag: str):
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    hub = RngHub(cfg.seed).child(tag)
    graph = build_overlay(cfg, cfg.scale.n_100k, hub)
    return cfg, hub, graph


def sc_cost_vs_l(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    ls: Sequence[int] = (10, 100, 200),
    repetitions: int = 8,
) -> TableResult:
    """Sample&Collide overhead and accuracy across ``l`` values.

    Cost grows as ``sqrt(l)``: expected ratios l=100/l=10 ≈ 3.16 (paper
    measured 3.27) and l=200/l=100 ≈ 1.41 (paper: 1.40).
    """
    cfg, hub, graph = _setup(scale, seed, "abl_sc_l")
    true = graph.size
    table = TableResult(
        table_id="ablation_sc_l",
        title=f"Sample&Collide cost vs l (n={true})",
        columns=["l", "mean_messages", "cost_ratio_vs_prev", "mean_abs_error_pct"],
        notes="paper ratios: cost(100)/cost(10)=3.27, cost(200)/cost(100)=1.40",
    )
    prev = None
    for l in ls:
        msgs: List[int] = []
        errs: List[float] = []
        for _ in range(repetitions):
            est = SampleCollideEstimator(
                graph, l=l, timer=cfg.sc_timer, rng=hub.fresh(f"sc{l}")
            ).estimate()
            msgs.append(est.messages)
            errs.append(abs(100.0 * est.value / true - 100.0))
        mean_msgs = float(np.mean(msgs))
        table.add_row(
            l=l,
            mean_messages=int(mean_msgs),
            cost_ratio_vs_prev=round(mean_msgs / prev, 2) if prev else float("nan"),
            mean_abs_error_pct=round(float(np.mean(errs)), 2),
        )
        prev = mean_msgs
    return table


def hops_oracle_bias(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    repetitions: int = 10,
) -> TableResult:
    """HopsSampling with gossip distances vs exact (oracle) distances.

    The oracle run removes the spread's reach/distance errors; the paper
    found it "correct", pinning the under-estimation on the spread phase.
    """
    cfg, hub, graph = _setup(scale, seed, "abl_oracle")
    true = graph.size
    table = TableResult(
        table_id="ablation_hops_oracle",
        title=f"HopsSampling bias: gossip vs oracle distances (n={true})",
        columns=["mode", "mean_quality_pct", "mean_coverage"],
        notes="paper: with exact distances the estimation was correct (bias ~0)",
    )
    for mode, oracle in (("gossip distances", False), ("oracle distances", True)):
        quals: List[float] = []
        covs: List[float] = []
        for _ in range(repetitions):
            est = HopsSamplingEstimator(
                graph,
                gossip_to=cfg.hops_fanout,
                min_hops_reporting=cfg.hops_min_reporting,
                rng=hub.fresh(f"hops_{oracle}"),
                oracle_distances=oracle,
            ).estimate()
            quals.append(100.0 * est.value / true)
            covs.append(est.meta["coverage"])
        table.add_row(
            mode=mode,
            mean_quality_pct=round(float(np.mean(quals)), 2),
            mean_coverage=round(float(np.mean(covs)), 3),
        )
    return table


def random_tour_gap(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    repetitions: int = 8,
) -> TableResult:
    """Random Tour vs Sample&Collide: the §II cost gap.

    Random Tour costs Θ(2m/deg(init)) ≈ Θ(N) messages per estimate versus
    S&C's Θ(sqrt(2lN)·(T·d̄+1)); the gap widens with N.
    """
    cfg, hub, graph = _setup(scale, seed, "abl_rt")
    true = graph.size
    table = TableResult(
        table_id="ablation_random_tour",
        title=f"Random Tour vs Sample&Collide overhead (n={true})",
        columns=["algorithm", "mean_messages", "mean_abs_error_pct"],
        notes="paper (section II): S&C overhead much lower than Random Tour",
    )
    for name, make in (
        (
            "Random Tour",
            lambda: RandomTourEstimator(graph, rng=hub.fresh("rt")),
        ),
        (
            "Sample&Collide (l=200)",
            lambda: SampleCollideEstimator(
                graph, l=cfg.sc_l, timer=cfg.sc_timer, rng=hub.fresh("sc")
            ),
        ),
    ):
        msgs: List[int] = []
        errs: List[float] = []
        for _ in range(repetitions):
            est = make().estimate()
            msgs.append(est.messages)
            errs.append(abs(100.0 * est.value / true - 100.0))
        table.add_row(
            algorithm=name,
            mean_messages=int(np.mean(msgs)),
            mean_abs_error_pct=round(float(np.mean(errs)), 1),
        )
    return table


def hops_min_reporting_sweep(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    values: Sequence[int] = (1, 3, 5, 7),
    repetitions: int = 8,
) -> TableResult:
    """Accuracy/overhead across minHopsReporting values.

    Expected: overhead barely moves (the spread dominates, replies are a
    minority share), while small values degrade accuracy (fewer certain
    reporters, heavier extrapolation weights ⇒ more variance).
    """
    cfg, hub, graph = _setup(scale, seed, "abl_minhops")
    true = graph.size
    table = TableResult(
        table_id="ablation_min_hops",
        title=f"HopsSampling minHopsReporting sweep (n={true})",
        columns=[
            "min_hops_reporting",
            "mean_messages",
            "mean_quality_pct",
            "std_quality_pct",
        ],
        notes="paper: lowering minHopsReporting does not cut overhead but hurts accuracy",
    )
    for mh in values:
        msgs: List[int] = []
        quals: List[float] = []
        for _ in range(repetitions):
            est = HopsSamplingEstimator(
                graph,
                gossip_to=cfg.hops_fanout,
                min_hops_reporting=mh,
                rng=hub.fresh(f"mh{mh}"),
            ).estimate()
            msgs.append(est.messages)
            quals.append(100.0 * est.value / true)
        table.add_row(
            min_hops_reporting=mh,
            mean_messages=int(np.mean(msgs)),
            mean_quality_pct=round(float(np.mean(quals)), 1),
            std_quality_pct=round(float(np.std(quals)), 1),
        )
    return table


def topology_comparison(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    repetitions: int = 8,
) -> TableResult:
    """All three candidates on heterogeneous vs homogeneous overlays.

    §IV-A: homogeneous degree "consistently improved all algorithms"; the
    heterogeneous overlay is the worst-case setting the paper reports.
    """
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    hub = RngHub(cfg.seed).child("abl_topo")
    n = cfg.scale.n_100k
    k = cfg.max_degree - 2  # homogeneous degree ≈ the heterogeneous mean
    graphs = {
        "heterogeneous (1..10)": heterogeneous_random(
            n, max_degree=cfg.max_degree, rng=hub.stream("het")
        ),
        f"homogeneous (k={k})": homogeneous_random(n, k=k, rng=hub.stream("hom")),
    }
    table = TableResult(
        table_id="ablation_topology",
        title=f"Estimator error: heterogeneous vs homogeneous overlays (n={n})",
        columns=["topology", "algorithm", "mean_abs_error_pct"],
        notes="paper: homogeneous degree consistently improved all algorithms",
    )
    for topo_name, graph in graphs.items():
        true = graph.size
        for alg_name, run in (
            (
                "Sample&Collide (l=200)",
                lambda g=graph: SampleCollideEstimator(
                    g, l=cfg.sc_l, rng=hub.fresh("sc")
                ).estimate(),
            ),
            (
                "HopsSampling",
                lambda g=graph: HopsSamplingEstimator(
                    g, rng=hub.fresh("hops")
                ).estimate(),
            ),
            (
                "Aggregation (50 rounds)",
                lambda g=graph: AggregationProtocol(
                    g, rng=hub.fresh("agg")
                ).estimate(rounds=50),
            ),
        ):
            errs = [
                abs(100.0 * run().value / true - 100.0) for _ in range(repetitions)
            ]
            table.add_row(
                topology=topo_name,
                algorithm=alg_name,
                mean_abs_error_pct=round(float(np.mean(errs)), 2),
            )
    return table
