"""Ablation experiments backing the paper's §V discussion claims.

Each function measures one claim the paper makes in prose:

* :func:`sc_cost_vs_l` — "the algorithm with l = 100 incurs a cost which is
  only 3.27 times the one incurred for l = 10" and l=200 costs "1.40 times
  the one incurred for l = 100" (§IV-E);
* :func:`hops_oracle_bias` — "we verified our intuition by giving the
  accurate distance from the initiator to all nodes in the overlay, and the
  resulting size estimation was correct" (§V);
* :func:`random_tour_gap` — "the overhead of the Sample&Collide algorithm
  is much lower than the one of Random Tour" (§II);
* :func:`hops_min_reporting_sweep` — "using a lower minHopsReporting
  parameter does not significantly reduce the overhead, while degrading
  accuracy" (§V);
* :func:`topology_comparison` — homogeneous graphs "consistently improved
  all algorithms" over heterogeneous ones (§IV-A).

Execution model
---------------
Every study is a *parameter grid*: one table row (or row group) per grid
point, ``repetitions`` independent estimations per point.  Each grid point
is expressed as a batch of picklable ``fresh_probe``
:class:`~repro.runtime.TrialSpec` units and executed through
:func:`repro.runtime.sweep` / :func:`repro.runtime.run_trials`, so passing
``runtime=RuntimeOptions(workers=…, store=…)`` shards the repetitions over
a process pool and serves reruns from the content-addressed store.
``runtime=None`` (the default) runs serially and uncached — and produces
**bit-identical numbers** either way, because each repetition's generator
is derived from ``(ablation seed, fresh-stream name, repetition index)``
alone, exactly reproducing the historical ``RngHub.fresh`` lineage.

Cache-key semantics: a grid point's artifact is addressed by the ablation's
derived hub seed, the overlay spec (builder + size + degree parameters),
the estimator spec (kind + parameters), the fresh-stream name, and the
repetition indices.  Changing ``seed``, ``scale`` (through the overlay
size), any estimator knob, or the repetition count therefore invalidates —
re-keys — the artifact; worker count, cache directory, and progress
reporting never do.  Grid-point units: one artifact per
(parameter value × ``repetitions`` one-shot estimations).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.curves import TableResult
from ..runtime import (
    EstimatorSpec,
    OverlaySpec,
    RuntimeOptions,
    TrialResult,
    TrialSpec,
    sweep,
)
from ..sim.rng import derive_seed
from .config import ExperimentConfig, resolve_scale

__all__ = [
    "sc_cost_vs_l",
    "hops_oracle_bias",
    "random_tour_gap",
    "hops_min_reporting_sweep",
    "topology_comparison",
]


def _config(scale: Optional[object], seed: Optional[int]) -> ExperimentConfig:
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    return cfg


def _ablation_seed(cfg: ExperimentConfig, tag: str) -> int:
    """Hub seed of the ablation: ``RngHub(cfg.seed).child(tag).seed``.

    Every trial of the study derives from this one integer (plus the
    fresh-stream name and repetition index), which is also why it anchors
    the content address of every grid-point artifact.
    """
    return derive_seed(cfg.seed, f"child:{tag}")


def _overlay(cfg: ExperimentConfig) -> OverlaySpec:
    """The paper's standard heterogeneous overlay at the 100k stand-in size."""
    return OverlaySpec.heterogeneous(
        cfg.scale.n_100k, max_degree=cfg.max_degree, min_degree=cfg.min_degree
    )


def _fresh_batch(
    hub_seed: int,
    overlay: OverlaySpec,
    estimator: EstimatorSpec,
    fresh_name: str,
    repetitions: int,
    start: int = 0,
) -> List[TrialSpec]:
    """One grid point: ``repetitions`` fresh-lineage one-shot estimations.

    ``start`` offsets the repetition indices for studies whose serial loops
    shared one fresh counter across grid points (the topology comparison
    advances "sc"/"hops"/"agg" counters across both overlays).
    """
    return [
        TrialSpec(
            "fresh_probe",
            hub_seed,
            k,
            overlay=overlay,
            estimator=estimator,
            params={"fresh_name": fresh_name},
        )
        for k in range(start, start + repetitions)
    ]


def _qualities(results: Sequence[TrialResult]) -> List[float]:
    return [100.0 * r.value / r.true_size for r in results]


def _errors(results: Sequence[TrialResult]) -> List[float]:
    return [abs(100.0 * r.value / r.true_size - 100.0) for r in results]


def _messages(results: Sequence[TrialResult]) -> List[int]:
    return [r.extra["messages"] for r in results]


def _true_size(results: Sequence[TrialResult]) -> int:
    return int(results[0].true_size)


def sc_cost_vs_l(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    ls: Sequence[int] = (10, 100, 200),
    repetitions: int = 8,
    runtime: Optional[RuntimeOptions] = None,
) -> TableResult:
    """Sample&Collide overhead and accuracy across ``l`` values.

    Cost grows as ``sqrt(l)``: expected ratios l=100/l=10 ≈ 3.16 (paper
    measured 3.27) and l=200/l=100 ≈ 1.41 (paper: 1.40).

    Grid: one cached batch per ``l`` (``repetitions`` estimations each);
    adding an ``l`` value to a warm sweep only computes the new point.
    """
    cfg = _config(scale, seed)
    hub_seed = _ablation_seed(cfg, "abl_sc_l")
    overlay = _overlay(cfg)
    grid = sweep(
        lambda l: _fresh_batch(
            hub_seed,
            overlay,
            EstimatorSpec.sample_collide(l=l, timer=cfg.sc_timer),
            f"sc{l}",
            repetitions,
        ),
        ls,
        runtime=runtime,
        tag="ablation_sc_l",
    )
    true = _true_size(next(iter(grid.values())))
    table = TableResult(
        table_id="ablation_sc_l",
        title=f"Sample&Collide cost vs l (n={true})",
        columns=["l", "mean_messages", "cost_ratio_vs_prev", "mean_abs_error_pct"],
        notes="paper ratios: cost(100)/cost(10)=3.27, cost(200)/cost(100)=1.40",
    )
    prev = None
    for l in ls:
        results = grid[l]
        mean_msgs = float(np.mean(_messages(results)))
        table.add_row(
            l=l,
            mean_messages=int(mean_msgs),
            cost_ratio_vs_prev=round(mean_msgs / prev, 2) if prev else float("nan"),
            mean_abs_error_pct=round(float(np.mean(_errors(results))), 2),
        )
        prev = mean_msgs
    return table


def hops_oracle_bias(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    repetitions: int = 10,
    runtime: Optional[RuntimeOptions] = None,
) -> TableResult:
    """HopsSampling with gossip distances vs exact (oracle) distances.

    The oracle run removes the spread's reach/distance errors; the paper
    found it "correct", pinning the under-estimation on the spread phase.

    Grid: one cached batch per distance mode (gossip / oracle).
    """
    cfg = _config(scale, seed)
    hub_seed = _ablation_seed(cfg, "abl_oracle")
    overlay = _overlay(cfg)
    modes: Tuple[Tuple[str, bool], ...] = (
        ("gossip distances", False),
        ("oracle distances", True),
    )
    grid = sweep(
        lambda mode: _fresh_batch(
            hub_seed,
            overlay,
            EstimatorSpec.hops_sampling(
                gossip_to=cfg.hops_fanout,
                min_hops_reporting=cfg.hops_min_reporting,
                oracle_distances=mode[1],
            ),
            f"hops_{mode[1]}",
            repetitions,
        ),
        modes,
        runtime=runtime,
        tag="ablation_hops_oracle",
    )
    true = _true_size(next(iter(grid.values())))
    table = TableResult(
        table_id="ablation_hops_oracle",
        title=f"HopsSampling bias: gossip vs oracle distances (n={true})",
        columns=["mode", "mean_quality_pct", "mean_coverage"],
        notes="paper: with exact distances the estimation was correct (bias ~0)",
    )
    for mode, results in grid.items():
        covs = [r.extra["meta"]["coverage"] for r in results]
        table.add_row(
            mode=mode[0],
            mean_quality_pct=round(float(np.mean(_qualities(results))), 2),
            mean_coverage=round(float(np.mean(covs)), 3),
        )
    return table


def random_tour_gap(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    repetitions: int = 8,
    runtime: Optional[RuntimeOptions] = None,
) -> TableResult:
    """Random Tour vs Sample&Collide: the §II cost gap.

    Random Tour costs Θ(2m/deg(init)) ≈ Θ(N) messages per estimate versus
    S&C's Θ(sqrt(2lN)·(T·d̄+1)); the gap widens with N.

    Grid: one cached batch per algorithm.
    """
    cfg = _config(scale, seed)
    hub_seed = _ablation_seed(cfg, "abl_rt")
    overlay = _overlay(cfg)
    algorithms: Dict[str, Tuple[EstimatorSpec, str]] = {
        "Random Tour": (EstimatorSpec.random_tour(), "rt"),
        "Sample&Collide (l=200)": (
            EstimatorSpec.sample_collide(l=cfg.sc_l, timer=cfg.sc_timer),
            "sc",
        ),
    }
    grid = sweep(
        lambda name: _fresh_batch(
            hub_seed, overlay, algorithms[name][0], algorithms[name][1], repetitions
        ),
        algorithms,
        runtime=runtime,
        tag="ablation_random_tour",
    )
    true = _true_size(next(iter(grid.values())))
    table = TableResult(
        table_id="ablation_random_tour",
        title=f"Random Tour vs Sample&Collide overhead (n={true})",
        columns=["algorithm", "mean_messages", "mean_abs_error_pct"],
        notes="paper (section II): S&C overhead much lower than Random Tour",
    )
    for name, results in grid.items():
        table.add_row(
            algorithm=name,
            mean_messages=int(np.mean(_messages(results))),
            mean_abs_error_pct=round(float(np.mean(_errors(results))), 1),
        )
    return table


def hops_min_reporting_sweep(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    values: Sequence[int] = (1, 3, 5, 7),
    repetitions: int = 8,
    runtime: Optional[RuntimeOptions] = None,
) -> TableResult:
    """Accuracy/overhead across minHopsReporting values.

    Expected: overhead barely moves (the spread dominates, replies are a
    minority share), while small values degrade accuracy (fewer certain
    reporters, heavier extrapolation weights ⇒ more variance).

    Grid: one cached batch per ``minHopsReporting`` value.
    """
    cfg = _config(scale, seed)
    hub_seed = _ablation_seed(cfg, "abl_minhops")
    overlay = _overlay(cfg)
    grid = sweep(
        lambda mh: _fresh_batch(
            hub_seed,
            overlay,
            EstimatorSpec.hops_sampling(
                gossip_to=cfg.hops_fanout, min_hops_reporting=mh
            ),
            f"mh{mh}",
            repetitions,
        ),
        values,
        runtime=runtime,
        tag="ablation_min_hops",
    )
    true = _true_size(next(iter(grid.values())))
    table = TableResult(
        table_id="ablation_min_hops",
        title=f"HopsSampling minHopsReporting sweep (n={true})",
        columns=[
            "min_hops_reporting",
            "mean_messages",
            "mean_quality_pct",
            "std_quality_pct",
        ],
        notes="paper: lowering minHopsReporting does not cut overhead but hurts accuracy",
    )
    for mh, results in grid.items():
        quals = _qualities(results)
        table.add_row(
            min_hops_reporting=mh,
            mean_messages=int(np.mean(_messages(results))),
            mean_quality_pct=round(float(np.mean(quals)), 1),
            std_quality_pct=round(float(np.std(quals)), 1),
        )
    return table


def topology_comparison(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    repetitions: int = 8,
    runtime: Optional[RuntimeOptions] = None,
) -> TableResult:
    """All three candidates on heterogeneous vs homogeneous overlays.

    §IV-A: homogeneous degree "consistently improved all algorithms"; the
    heterogeneous overlay is the worst-case setting the paper reports.

    Grid: one cached batch per (topology × algorithm) cell.  The serial
    study advanced one fresh counter per algorithm *across* topologies, so
    the homogeneous batches carry offset repetition indices — preserved
    here so results stay bit-identical to the historical loops.
    """
    cfg = _config(scale, seed)
    hub_seed = _ablation_seed(cfg, "abl_topo")
    n = cfg.scale.n_100k
    k = cfg.max_degree - 2  # homogeneous degree ≈ the heterogeneous mean
    topologies: Dict[str, Tuple[int, OverlaySpec]] = {
        "heterogeneous (1..10)": (
            0,
            OverlaySpec.heterogeneous(n, max_degree=cfg.max_degree, stream="het"),
        ),
        f"homogeneous (k={k})": (1, OverlaySpec.homogeneous(n, k=k, stream="hom")),
    }
    algorithms: Dict[str, Tuple[EstimatorSpec, str]] = {
        "Sample&Collide (l=200)": (EstimatorSpec.sample_collide(l=cfg.sc_l), "sc"),
        "HopsSampling": (EstimatorSpec.hops_sampling(), "hops"),
        "Aggregation (50 rounds)": (EstimatorSpec.aggregation_epoch(rounds=50), "agg"),
    }
    cells = [
        (topo_name, alg_name)
        for topo_name in topologies
        for alg_name in algorithms
    ]

    def _cell_batch(cell: Tuple[str, str]) -> List[TrialSpec]:
        topo_idx, overlay = topologies[cell[0]]
        estimator, fresh = algorithms[cell[1]]
        # the serial loops advanced each algorithm's fresh counter across
        # topologies, so the second topology starts at k=repetitions
        return _fresh_batch(
            hub_seed, overlay, estimator, fresh, repetitions,
            start=topo_idx * repetitions,
        )

    grid = sweep(_cell_batch, cells, runtime=runtime, tag="ablation_topology")
    table = TableResult(
        table_id="ablation_topology",
        title=f"Estimator error: heterogeneous vs homogeneous overlays (n={n})",
        columns=["topology", "algorithm", "mean_abs_error_pct"],
        notes="paper: homogeneous degree consistently improved all algorithms",
    )
    for (topo_name, alg_name), results in grid.items():
        table.add_row(
            topology=topo_name,
            algorithm=alg_name,
            mean_abs_error_pct=round(float(np.mean(_errors(results))), 2),
        )
    return table
