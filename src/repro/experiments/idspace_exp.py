"""Structured-vs-unstructured ablation: id-density estimators head-to-head.

The paper's §I motivates its scope by noting that identifier-density
methods "provide good approximation of the system size" but "their
applicability is strictly limited to those identifier-based overlay
networks".  With the :mod:`repro.core.idspace` substrate in the library we
can put numbers on the trade the paper describes in words: on a DHT-style
overlay (uniform ids available), how much cheaper is the structured
approach than the general-purpose candidates — and what happens to it when
the id-uniformity assumption breaks (a skewed assignment, e.g. geographic
clustering or an adversarial join pattern)?

Execution model
---------------
Three cached grid cells, one per table row: the uniform and skewed
interval-density rows run as ``idspace_probe`` batches whose shared
:class:`~repro.core.idspace.IdentifierSpace` is rebuilt inside each worker
from a declarative :class:`~repro.core.idspace.IdSpaceSpec` (the skewed
assignment uses the public ``power`` transform — formerly a private
``_ids`` rewrite); the Sample&Collide row is a plain ``fresh_probe``
batch.  Passing ``runtime=`` shards repetitions over workers and serves
warm reruns from the store, bit-identical to the serial loops because
every repetition's generator derives from the historical
``RngHub.fresh`` lineage.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..analysis.curves import TableResult
from ..core.idspace import IdSpaceSpec
from ..runtime import EstimatorSpec, RuntimeOptions, TrialSpec, sweep
from ..sim.rng import derive_seed
from .config import ExperimentConfig, resolve_scale
from .runner import overlay_spec

__all__ = ["idspace_comparison"]


def idspace_comparison(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    repetitions: int = 12,
    runtime: Optional[RuntimeOptions] = None,
) -> TableResult:
    """Interval-density (uniform and skewed ids) vs Sample&Collide."""
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    hub_seed = derive_seed(cfg.seed, "child:idspace")
    overlay = overlay_spec(cfg, cfg.scale.n_100k)

    # interval density k chosen to match S&C's l=200 accuracy: both invert
    # an order statistic, error ~ 1/sqrt(k)
    k = cfg.sc_l
    cells: Dict[str, Dict[str, object]] = {
        "uniform": {
            "kind": "idspace_probe",
            "estimator": EstimatorSpec.interval_density(k=k),
            "params": {
                "fresh_name": "idu",
                "idspace": IdSpaceSpec(stream="ids").as_config(),
            },
        },
        "skewed": {
            "kind": "idspace_probe",
            "estimator": EstimatorSpec.interval_density(k=k),
            "params": {
                "fresh_name": "ids_skew_est",
                # density piles up near 0 under the cubed transform
                "idspace": IdSpaceSpec(
                    transform="power", params={"exponent": 3.0}, stream="ids_skew"
                ).as_config(),
            },
        },
        "sample_collide": {
            "kind": "fresh_probe",
            "estimator": EstimatorSpec.sample_collide(l=cfg.sc_l, timer=cfg.sc_timer),
            "params": {"fresh_name": "sc"},
        },
    }

    def _cell_batch(name: str) -> List[TrialSpec]:
        cell = cells[name]
        return [
            TrialSpec(
                cell["kind"],
                hub_seed,
                rep,
                overlay=overlay,
                estimator=cell["estimator"],
                params=cell["params"],
            )
            for rep in range(repetitions)
        ]

    grid = sweep(_cell_batch, cells, runtime=runtime, tag="ablation_idspace")
    true = int(next(iter(grid.values()))[0].true_size)

    table = TableResult(
        table_id="ablation_idspace",
        title=f"Structured (id-density) vs unstructured estimation (n={true})",
        columns=["estimator", "assumption", "mean_messages", "mean_abs_error_pct"],
        notes=(
            "paper section I: id-density methods are accurate but 'strictly "
            "limited to identifier-based overlay networks'; skewed ids break them"
        ),
    )
    labels = {
        "uniform": (f"IntervalDensity (k={k})", "uniform ids (DHT)"),
        "skewed": (f"IntervalDensity (k={k})", "skewed ids (broken)"),
        "sample_collide": (f"Sample&Collide (l={cfg.sc_l})", "none (any overlay)"),
    }
    for name, results in grid.items():
        errs = [abs(100.0 * r.value / r.true_size - 100.0) for r in results]
        msgs = [r.extra["messages"] for r in results]
        estimator, assumption = labels[name]
        table.add_row(
            estimator=estimator,
            assumption=assumption,
            mean_messages=int(np.mean(msgs)),
            mean_abs_error_pct=round(float(np.mean(errs)), 2),
        )
    return table
