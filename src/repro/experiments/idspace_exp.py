"""Structured-vs-unstructured ablation: id-density estimators head-to-head.

The paper's §I motivates its scope by noting that identifier-density
methods "provide good approximation of the system size" but "their
applicability is strictly limited to those identifier-based overlay
networks".  With the :mod:`repro.core.idspace` substrate in the library we
can put numbers on the trade the paper describes in words: on a DHT-style
overlay (uniform ids available), how much cheaper is the structured
approach than the general-purpose candidates — and what happens to it when
the id-uniformity assumption breaks (a skewed assignment, e.g. geographic
clustering or an adversarial join pattern)?
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..analysis.curves import TableResult
from ..core.idspace import IdentifierSpace, IntervalDensityEstimator
from ..core.sample_collide import SampleCollideEstimator
from ..sim.rng import RngHub
from .config import ExperimentConfig, resolve_scale
from .runner import build_overlay

__all__ = ["idspace_comparison"]


def _skewed_space(graph, rng) -> IdentifierSpace:
    """An id assignment violating uniformity: ids concentrated by x^3."""
    space = IdentifierSpace(graph, rng=rng)
    for u in graph.nodes():
        _ = space.id_of(u)
    # overwrite with a cubed transform: density piles up near 0
    space._ids = {u: (pos**3) for u, pos in space._ids.items()}
    space._stale = True
    return space


def idspace_comparison(
    scale: Optional[object] = None,
    seed: Optional[int] = None,
    repetitions: int = 12,
) -> TableResult:
    """Interval-density (uniform and skewed ids) vs Sample&Collide."""
    cfg = ExperimentConfig(scale=resolve_scale(scale))
    if seed is not None:
        cfg = ExperimentConfig(seed=seed, scale=cfg.scale)
    hub = RngHub(cfg.seed).child("idspace")
    graph = build_overlay(cfg, cfg.scale.n_100k, hub)
    true = graph.size

    table = TableResult(
        table_id="ablation_idspace",
        title=f"Structured (id-density) vs unstructured estimation (n={true})",
        columns=["estimator", "assumption", "mean_messages", "mean_abs_error_pct"],
        notes=(
            "paper section I: id-density methods are accurate but 'strictly "
            "limited to identifier-based overlay networks'; skewed ids break them"
        ),
    )

    # interval density with honest uniform ids (k chosen to match S&C's
    # l=200 accuracy: both invert an order statistic, error ~ 1/sqrt(k))
    k = cfg.sc_l
    uniform_space = IdentifierSpace(graph, rng=hub.stream("ids"))
    errs, msgs = [], []
    for _ in range(repetitions):
        est = IntervalDensityEstimator(
            graph, space=uniform_space, k=k, rng=hub.fresh("idu")
        ).estimate()
        errs.append(abs(100.0 * est.value / true - 100.0))
        msgs.append(est.messages)
    table.add_row(
        estimator=f"IntervalDensity (k={k})",
        assumption="uniform ids (DHT)",
        mean_messages=int(np.mean(msgs)),
        mean_abs_error_pct=round(float(np.mean(errs)), 2),
    )

    # the same estimator under a skewed id assignment
    skewed = _skewed_space(graph, hub.stream("ids_skew"))
    errs, msgs = [], []
    for _ in range(repetitions):
        est = IntervalDensityEstimator(
            graph, space=skewed, k=k, rng=hub.fresh("ids_skew_est")
        ).estimate()
        errs.append(abs(100.0 * est.value / true - 100.0))
        msgs.append(est.messages)
    table.add_row(
        estimator=f"IntervalDensity (k={k})",
        assumption="skewed ids (broken)",
        mean_messages=int(np.mean(msgs)),
        mean_abs_error_pct=round(float(np.mean(errs)), 2),
    )

    # the general-purpose candidate, no assumptions
    errs, msgs = [], []
    for _ in range(repetitions):
        est = SampleCollideEstimator(
            graph, l=cfg.sc_l, timer=cfg.sc_timer, rng=hub.fresh("sc")
        ).estimate()
        errs.append(abs(100.0 * est.value / true - 100.0))
        msgs.append(est.messages)
    table.add_row(
        estimator=f"Sample&Collide (l={cfg.sc_l})",
        assumption="none (any overlay)",
        mean_messages=int(np.mean(msgs)),
        mean_abs_error_pct=round(float(np.mean(errs)), 2),
    )
    return table
