"""Experiment scale presets and configuration.

The paper's evaluation runs at 100,000 and 1,000,000 nodes.  Those scales
are *supported* by this package, but pure-Python wall-clock makes them
impractical as defaults (the repro calibration explicitly flags
"slow for million-node churn sims").  Every experiment therefore accepts a
:class:`Scale`, with three presets:

=========  ==========================  ====================================
preset     sizes (100k / 1M figures)   intent
=========  ==========================  ====================================
``small``  5,000 / 10,000              benchmarks & CI — seconds per figure
``default`` 20,000 / 50,000            interactive runs — a few minutes total
``paper``  100,000 / 1,000,000         full fidelity — hours; use overnight
=========  ==========================  ====================================

The accuracy *shape* of every algorithm is scale-free in ``N`` (S&C error
depends only on ``l``; Aggregation's convergence round count grows with
``log N``; HopsSampling's coverage is set by the fanout), which is what
makes the scaled-down defaults faithful.  EXPERIMENTS.md records which
scale produced each reported number.

Select a preset globally with the environment variable ``REPRO_SCALE``
(``small`` | ``default`` | ``paper``) or per-call via the ``scale=``
argument of the figure functions.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

__all__ = ["Scale", "SCALES", "resolve_scale", "ExperimentConfig"]


@dataclass(frozen=True)
class Scale:
    """Concrete sizes/horizons for one preset."""

    name: str
    #: Node count standing in for the paper's 100,000-node experiments.
    n_100k: int
    #: Node count standing in for the paper's 1,000,000-node experiments.
    n_1m: int
    #: Estimations per static series (paper: 100 at "100k", ~18-20 at "1M").
    static_estimations: int
    static_estimations_1m: int
    #: Rounds plotted for the Aggregation static figures (paper: 100).
    aggregation_rounds: int
    #: Round horizon for the Aggregation dynamic figures (paper: 10,000).
    aggregation_horizon: int
    #: Estimations for the probe-style dynamic figures (paper: 100).
    dynamic_estimations: int
    #: Aggregation restart interval in rounds.  The paper uses 50, its
    #: ≈99%-convergence point at 10⁶ nodes; convergence time scales with
    #: log N, so smaller presets shrink the interval proportionally to
    #: keep the epoch equally *tight* — that tightness is what produces
    #: Fig 17's breakdown under shrinkage.
    restart_interval: int = 50

    def scaled_events(self, *times: float) -> tuple:
        """Rescale paper event times (given on the 10,000-round horizon)
        onto this preset's ``aggregation_horizon``."""
        f = self.aggregation_horizon / 10_000.0
        return tuple(max(1.0, round(t * f)) for t in times)


SCALES: Dict[str, Scale] = {
    "small": Scale(
        name="small",
        n_100k=5_000,
        n_1m=10_000,
        static_estimations=40,
        static_estimations_1m=18,
        aggregation_rounds=60,
        aggregation_horizon=1_000,
        dynamic_estimations=40,
        restart_interval=30,
    ),
    "default": Scale(
        name="default",
        n_100k=20_000,
        n_1m=50_000,
        static_estimations=100,
        static_estimations_1m=18,
        aggregation_rounds=100,
        aggregation_horizon=2_000,
        dynamic_estimations=100,
        restart_interval=35,
    ),
    "paper": Scale(
        name="paper",
        n_100k=100_000,
        n_1m=1_000_000,
        static_estimations=100,
        static_estimations_1m=18,
        aggregation_rounds=100,
        aggregation_horizon=10_000,
        dynamic_estimations=100,
    ),
}


def resolve_scale(scale: Optional[object] = None) -> Scale:
    """Resolve a preset name / Scale / None (env, then ``default``)."""
    if isinstance(scale, Scale):
        return scale
    if scale is None:
        scale = os.environ.get("REPRO_SCALE", "default")
    name = str(scale).lower()
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
        ) from None


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for one experiment run."""

    seed: int = 20060619  # HPDC-15 opening day
    scale: Scale = field(default_factory=lambda: resolve_scale("default"))
    max_degree: int = 10
    min_degree: int = 1
    sc_l: int = 200
    sc_timer: float = 10.0
    hops_fanout: int = 2
    hops_min_reporting: int = 5
    last_runs_window: int = 10

    def with_scale(self, scale: object) -> "ExperimentConfig":
        """Copy with a different scale preset."""
        return replace(self, scale=resolve_scale(scale))
