"""Always-on estimation service: the paper's estimators as a product surface.

Batch experiments answer "how big is the network?" once per invocation;
this package keeps the answer *warm*.  :class:`EstimationService` holds a
resident scenario — one overlay mutated by a live
:class:`~repro.churn.scheduler.ChurnScheduler` whose trace grows as
membership events stream in — plus one warm estimator per configured
family, refreshed on a round cadence and checkpointed through the same
pure-data snapshot protocol the batch runtime uses
(``docs/SNAPSHOTS.md``), so a restarted service resumes instead of
replaying.

:class:`ServiceServer` exposes the service over a small HTTP/JSON
endpoint (``/estimate``, ``/health``, ``/stats``, ``/ingest``) with
token-bucket throttling and a bounded, load-shedding ingest queue, plus
an optional length-prefixed binary mode reusing the framing discipline
of :mod:`repro.runtime.cluster`.  :class:`ServiceClient` is the matching
thin client.  Operational surface: ``repro-experiment serve`` and
``docs/SERVICE.md``.
"""

from .core import (
    SERVICE_FAMILIES,
    SERVICE_SCHEMA_VERSION,
    EstimationService,
    ServiceConfig,
    TokenBucket,
)
from .server import ServiceClient, ServiceServer, recv_frame, send_frame

__all__ = [
    "SERVICE_FAMILIES",
    "SERVICE_SCHEMA_VERSION",
    "EstimationService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceServer",
    "recv_frame",
    "send_frame",
]
