"""Network surface of the estimation service: HTTP/JSON plus framed binary.

Two transports share one :class:`~repro.service.core.EstimationService`:

* **HTTP/JSON** (:class:`ServiceServer`) — the operational surface.
  ``GET /health``, ``GET /estimate``, ``GET /stats`` and
  ``POST /ingest`` / ``/tick`` / ``/checkpoint``; throttled estimate
  reads return ``429``.  Built on the stdlib threading HTTP server so
  the service stays dependency-free.
* **binary frames** — an optional listener speaking the same
  length-prefixed framing discipline as :mod:`repro.runtime.cluster`
  (8-byte big-endian length + payload), but carrying UTF-8 JSON instead
  of pickles: the service faces untrusted clients, and JSON frames are
  safe to parse where pickles are not.  One request dict in, one
  response dict out, many per connection.  This is the "small
  self-describing request/response transport" shape of the Mercury RPC
  work cited in PAPERS.md.

:class:`ServiceClient` is the thin client for both transports (used by
``examples/churn_monitoring.py`` and ``scripts/bench_service.py``); it
only needs the stdlib.  Endpoint semantics are documented in
``docs/SERVICE.md``.
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple
from urllib import request as _urlrequest
from urllib.error import HTTPError
from urllib.parse import parse_qs, urlparse

from ..runtime.cluster import _HEADER, MAX_MESSAGE_BYTES, _recv_exact
from .core import EstimationService

__all__ = ["ServiceClient", "ServiceServer", "recv_frame", "send_frame"]


# ----------------------------------------------------------------------
# Binary framing (cluster discipline, JSON payloads)
# ----------------------------------------------------------------------


def send_frame(sock: socket.socket, message: Mapping[str, Any]) -> None:
    """Frame and send one message: 8-byte length prefix + UTF-8 JSON."""
    payload = json.dumps(dict(message)).encode("utf-8")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> Dict[str, Any]:
    """Receive one framed JSON message; :class:`EOFError` on clean close."""
    header = sock.recv(_HEADER.size)
    if not header:
        raise EOFError("peer closed the connection")
    if len(header) < _HEADER.size:
        header += _recv_exact(sock, _HEADER.size - len(header))
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise OSError(
            f"framed message of {length} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte limit (corrupt stream?)"
        )
    message = json.loads(_recv_exact(sock, length).decode("utf-8"))
    if not isinstance(message, dict):
        raise OSError(f"expected a message dict, got {type(message).__name__}")
    return message


# ----------------------------------------------------------------------
# Request dispatch (shared by both transports)
# ----------------------------------------------------------------------


def _dispatch(service: EstimationService, op: str, body: Mapping[str, Any]) -> Tuple[int, Dict[str, Any]]:
    """Map one request onto the service; returns ``(status, payload)``.

    ``op`` is the endpoint name without the slash; ``body`` carries the
    request parameters (query string or JSON body — both transports
    normalise to a dict).  Status codes follow HTTP even on the binary
    path, so both transports report throttling as 429.
    """
    if op == "health":
        return 200, service.health()
    if op == "stats":
        return 200, service.stats_dict()
    if op == "estimate":
        families = body.get("families")
        if isinstance(families, str):
            families = [f for f in families.split(",") if f]
        try:
            admitted, payload = service.serve_estimate(families)
        except KeyError as exc:
            return 404, {"error": str(exc.args[0]) if exc.args else str(exc)}
        return (200, payload) if admitted else (429, payload)
    if op == "ingest":
        events = body.get("events", [])
        if not isinstance(events, list):
            return 400, {"error": "ingest body must carry an 'events' list"}
        try:
            accepted, dropped = service.ingest(events)
        except (TypeError, ValueError) as exc:
            return 400, {"error": str(exc)}
        return 200, {"accepted": accepted, "dropped": dropped}
    if op == "tick":
        try:
            rounds = int(body.get("rounds", 1))
        except (TypeError, ValueError):
            return 400, {"error": "rounds must be an integer"}
        if rounds < 1:
            return 400, {"error": "rounds must be >= 1"}
        return 200, {"round": service.tick(rounds)}
    if op == "checkpoint":
        try:
            path = service.checkpoint(body.get("path"))
        except ValueError as exc:
            return 400, {"error": str(exc)}
        return 200, {"path": path, "round": int(service.round)}
    return 404, {"error": f"unknown endpoint {op!r}"}


_GET_OPS = frozenset({"health", "stats", "estimate"})
_POST_OPS = frozenset({"ingest", "tick", "checkpoint", "estimate"})


class _ServiceHandler(BaseHTTPRequestHandler):
    """stdlib HTTP handler bridging requests into :func:`_dispatch`."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence per-request stderr logging (journals cover telemetry)."""

    def _respond(self, status: int, payload: Mapping[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
        """Serve the read surface: /health, /stats, /estimate."""
        parsed = urlparse(self.path)
        op = parsed.path.strip("/")
        if op not in _GET_OPS:
            self._respond(404, {"error": f"unknown endpoint {parsed.path!r}"})
            return
        body = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        status, payload = _dispatch(self.server.service, op, body)
        self._respond(status, payload)

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler contract
        """Serve the write surface: /ingest, /tick, /checkpoint."""
        parsed = urlparse(self.path)
        op = parsed.path.strip("/")
        if op not in _POST_OPS:
            self._respond(404, {"error": f"unknown endpoint {parsed.path!r}"})
            return
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw.decode("utf-8")) if raw else {}
        except json.JSONDecodeError as exc:
            self._respond(400, {"error": f"invalid JSON body: {exc}"})
            return
        if not isinstance(body, dict):
            self._respond(400, {"error": "request body must be a JSON object"})
            return
        status, payload = _dispatch(self.server.service, op, body)
        self._respond(status, payload)


class _ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the shared service reference."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: EstimationService) -> None:
        super().__init__(address, _ServiceHandler)
        self.service = service


class ServiceServer:
    """Serve one :class:`EstimationService` over HTTP (+ optional frames).

    Binding port 0 picks a free port; :attr:`address` (and
    :attr:`binary_address`) report the actual ``host:port`` — the CLI
    prints them in machine-parsable ``REPRO_SERVICE_ADDR=`` lines for CI
    smoke jobs.  ``serve_forever`` blocks; ``start`` runs the acceptors
    on daemon threads for embedding (tests, the example client).
    """

    def __init__(
        self,
        service: EstimationService,
        host: str = "127.0.0.1",
        port: int = 0,
        binary_port: Optional[int] = None,
    ) -> None:
        self.service = service
        self._http = _ServiceHTTPServer((host, port), service)
        self._binary: Optional[socket.socket] = None
        self._binary_addr: Optional[Tuple[str, int]] = None
        if binary_port is not None:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, binary_port))
            sock.listen(16)
            self._binary = sock
            self._binary_addr = sock.getsockname()[:2]
        self._threads: List[threading.Thread] = []
        self._closing = threading.Event()

    @property
    def address(self) -> str:
        """The bound HTTP ``host:port`` (resolved even when port 0 was asked)."""
        host, port = self._http.server_address[:2]
        return f"{host}:{port}"

    @property
    def binary_address(self) -> Optional[str]:
        """The bound binary ``host:port``, or ``None`` without a binary listener."""
        if self._binary_addr is None:
            return None
        return f"{self._binary_addr[0]}:{self._binary_addr[1]}"

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Run both acceptors on daemon threads and return immediately."""
        http_thread = threading.Thread(
            target=self._http.serve_forever, name="service-http", daemon=True
        )
        http_thread.start()
        self._threads.append(http_thread)
        if self._binary is not None:
            accept_thread = threading.Thread(
                target=self._accept_binary, name="service-binary", daemon=True
            )
            accept_thread.start()
            self._threads.append(accept_thread)

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`close` (CLI entry point)."""
        self.start()
        try:
            self._closing.wait()
        except KeyboardInterrupt:
            pass

    def close(self) -> None:
        """Stop the acceptors and release both sockets."""
        self._closing.set()
        self._http.shutdown()
        self._http.server_close()
        if self._binary is not None:
            try:
                self._binary.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- binary transport ----------------------------------------------

    def _accept_binary(self) -> None:
        assert self._binary is not None
        while not self._closing.is_set():
            try:
                conn, _ = self._binary.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve_binary, args=(conn,), daemon=True
            ).start()

    def _serve_binary(self, conn: socket.socket) -> None:
        with conn:
            while True:
                try:
                    message = recv_frame(conn)
                except (EOFError, OSError, json.JSONDecodeError):
                    return
                op = str(message.get("op", ""))
                status, payload = _dispatch(self.service, op, message)
                try:
                    # Status code wins over any payload key of the same name
                    # (health's "status": "ok"): the frame-level code is the
                    # transport contract both sides dispatch on.
                    send_frame(conn, {**payload, "status": status})
                except OSError:
                    return


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------


class ServiceClient:
    """Thin stdlib client for a running :class:`ServiceServer`.

    ``address`` is the HTTP ``host:port``.  :exc:`Throttled` surfaces 429
    so callers can measure admission control; other HTTP errors raise
    :class:`ServiceClient.Error` with the server's JSON error payload.
    """

    class Error(RuntimeError):
        """Server-side error with its HTTP status and decoded payload."""

        def __init__(self, status: int, payload: Mapping[str, Any]) -> None:
            super().__init__(f"service error {status}: {payload.get('error')}")
            self.status = int(status)
            self.payload = dict(payload)

    class Throttled(Error):
        """The token bucket rejected the estimate read (HTTP 429)."""

    def __init__(self, address: str, timeout: float = 10.0) -> None:
        self.address = address
        self.timeout = float(timeout)

    def _call(
        self, op: str, *, query: str = "", body: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        url = f"http://{self.address}/{op}{query}"
        data = None if body is None else json.dumps(dict(body)).encode("utf-8")
        req = _urlrequest.Request(
            url, data=data, headers={"Content-Type": "application/json"}
        )
        try:
            with _urlrequest.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except (ValueError, OSError):
                payload = {"error": str(exc)}
            if exc.code == 429:
                raise ServiceClient.Throttled(exc.code, payload) from None
            raise ServiceClient.Error(exc.code, payload) from None

    def health(self) -> Dict[str, Any]:
        """``GET /health``."""
        return self._call("health")

    def stats(self) -> Dict[str, Any]:
        """``GET /stats``."""
        return self._call("stats")

    def estimate(self, families: Optional[Sequence[str]] = None) -> Dict[str, Any]:
        """``GET /estimate`` (optionally restricted to some families)."""
        query = f"?families={','.join(families)}" if families else ""
        return self._call("estimate", query=query)

    def ingest(self, events: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
        """``POST /ingest`` a batch of membership events."""
        return self._call("ingest", body={"events": [dict(e) for e in events]})

    def tick(self, rounds: int = 1) -> Dict[str, Any]:
        """``POST /tick`` to advance the scenario ``rounds`` rounds."""
        return self._call("tick", body={"rounds": int(rounds)})

    def checkpoint(self, path: Optional[str] = None) -> Dict[str, Any]:
        """``POST /checkpoint`` (to ``path`` or the server's default)."""
        body: Dict[str, Any] = {} if path is None else {"path": path}
        return self._call("checkpoint", body=body)
