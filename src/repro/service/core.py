"""The resident estimation service: live scenario, warm estimators, checkpoints.

The service is the churn-replay machinery of :mod:`repro.runtime.snapshots`
turned inside out.  A batch run replays a *fixed* trace and throws the
scenario away; the service keeps one scenario resident forever:

* membership events stream into a bounded ingest queue
  (:meth:`EstimationService.ingest`) and are folded into the live
  :class:`~repro.churn.scheduler.ChurnScheduler` at the next
  :meth:`~EstimationService.tick` — queue-based load leveling, with
  load shedding once the queue is full;
* one **warm estimator per configured family** refreshes on a round
  cadence: the probe families (``sample_collide``, ``hops_sampling``)
  re-estimate every ``probe_interval`` rounds from a persistent
  generator stream, the epidemic family (``aggregation``) advances its
  monitor every round and holds the last closed epoch's estimate;
* :meth:`~EstimationService.snapshot` captures the whole thing as pure
  data (the contract of ``docs/SNAPSHOTS.md``: JSON-able, picklable,
  content-hashable) and :meth:`~EstimationService.from_snapshot` rebuilds
  a service whose future ticks are **bit-identical** to the uninterrupted
  one's — so a crashed service restarts from its last checkpoint instead
  of replaying its event history.

Admission control for reads is a :class:`TokenBucket` (`--max-qps`);
operational counters are monotone per process and deliberately *not*
part of the snapshot (a restart starts its counters at zero — state is
what the future depends on, stats are what the past looked like).

Determinism: all randomness flows from named
:class:`~repro.sim.rng.RngHub` streams of the config seed (``overlay``,
``churn``, ``monitor``, ``svc:<family>``), so a service's estimate
sequence is a pure function of ``(seed, event stream, tick/probe
schedule)`` — the property the lifecycle tests and the kill/restore
acceptance gate assert.  See ``docs/SERVICE.md``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from ..churn.models import ChurnEvent, ChurnTrace
from ..churn.scheduler import ChurnScheduler
from ..core.aggregation import AggregationMonitor
from ..core.base import EstimatorError
from ..core.hops_sampling import HopsSamplingEstimator
from ..core.sample_collide import SampleCollideEstimator
from ..overlay.builders import heterogeneous_random
from ..runtime.progress import NullProgress, ProgressReporter
from ..sim.rng import RngHub, generator_from_state, generator_state

__all__ = [
    "SERVICE_FAMILIES",
    "SERVICE_SCHEMA_VERSION",
    "EstimationService",
    "ServiceConfig",
    "TokenBucket",
]

#: Bump when the service snapshot layout changes; a mismatched checkpoint
#: is refused at restore rather than mis-restored.
SERVICE_SCHEMA_VERSION = 1

#: Estimator families the service can keep warm.
SERVICE_FAMILIES: Tuple[str, ...] = (
    "sample_collide",
    "hops_sampling",
    "aggregation",
)


class TokenBucket:
    """Token-bucket admission control for the estimate surface.

    ``rate`` tokens refill per second up to ``burst`` (default: one
    second's worth); each admitted request spends one token.  ``rate <= 0``
    disables throttling.  The clock is injectable so tests can drive the
    bucket deterministically.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        clock=time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.capacity = float(burst) if burst is not None else max(self.rate, 1.0)
        if self.rate > 0 and self.capacity <= 0:
            raise ValueError("burst must be positive when a rate is set")
        self._tokens = self.capacity
        self._clock = clock
        self._last = float(clock())

    def allow(self) -> bool:
        """Spend one token if available; ``True`` means admitted."""
        if self.rate <= 0:
            return True
        now = float(self._clock())
        self._tokens = min(self.capacity, self._tokens + (now - self._last) * self.rate)
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class ServiceConfig:
    """Declarative configuration of an :class:`EstimationService`.

    Pure data (the spec-layer discipline of ``docs/ARCHITECTURE.md``):
    the config travels inside every checkpoint, so a restore never needs
    the original command line.
    """

    seed: int = 7
    initial_size: int = 2_000
    max_degree: int = 10
    min_degree: int = 1
    estimators: Tuple[str, ...] = ("sample_collide", "aggregation")
    #: Rounds between probe-family refreshes (aggregation steps every round).
    probe_interval: int = 5
    #: Sample&Collide collision target / timer budget (paper: l=200, T=10).
    sc_l: int = 50
    sc_timer: float = 10.0
    #: HopsSampling knobs (paper: gossipTo=2, minHopsReporting=5).
    hops_gossip_to: int = 2
    hops_min_hops: int = 5
    #: Aggregation epoch length (paper's dynamic setting: 40-50 rounds).
    agg_restart_interval: int = 40
    #: Ingest admission: queue bound (events beyond it are shed) ...
    queue_limit: int = 10_000
    #: ... and estimate admission: sustained requests/second (0 = unlimited).
    max_qps: float = 0.0
    #: Token-bucket burst (None = one second's worth of tokens).
    burst: Optional[float] = None
    #: Checkpoint cadence in rounds (0 = only explicit checkpoints).
    snapshot_every: int = 0

    def __post_init__(self) -> None:
        families = tuple(self.estimators)
        unknown = [f for f in families if f not in SERVICE_FAMILIES]
        if unknown:
            raise ValueError(
                f"unknown estimator families {unknown}; available: "
                f"{list(SERVICE_FAMILIES)}"
            )
        if not families:
            raise ValueError("service needs at least one estimator family")
        if len(set(families)) != len(families):
            raise ValueError(f"duplicate estimator families in {families}")
        object.__setattr__(self, "estimators", families)
        if self.initial_size < 1:
            raise ValueError("initial_size must be >= 1")
        if self.probe_interval < 1:
            raise ValueError("probe_interval must be >= 1")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.max_qps < 0:
            raise ValueError("max_qps must be >= 0")
        if self.snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")

    def as_config(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-able; checkpoint + journal payload)."""
        out = asdict(self)
        out["estimators"] = list(self.estimators)
        return out

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "ServiceConfig":
        """Rebuild from :meth:`as_config` output."""
        data = dict(config)
        data["estimators"] = tuple(data.get("estimators", ()))
        burst = data.get("burst")
        data["burst"] = None if burst is None else float(burst)
        return cls(**data)


# ----------------------------------------------------------------------
# Warm estimator families
# ----------------------------------------------------------------------


class _ProbeFamily:
    """A warm probe estimator (Sample&Collide / HopsSampling).

    Holds one estimator instance whose generator persists across probes,
    so the k-th probe after a restore is bit-identical to the k-th probe
    of an uninterrupted service.
    """

    def __init__(self, name: str, estimator: Any) -> None:
        self.name = name
        self.estimator = estimator

    @classmethod
    def build(cls, name: str, graph, config: ServiceConfig, rng) -> "_ProbeFamily":
        """Construct the family's warm estimator on the live overlay."""
        if name == "sample_collide":
            est = SampleCollideEstimator(
                graph, l=config.sc_l, timer=config.sc_timer, rng=rng
            )
        else:
            est = HopsSamplingEstimator(
                graph,
                gossip_to=config.hops_gossip_to,
                min_hops_reporting=config.hops_min_hops,
                rng=rng,
            )
        return cls(name, est)

    def probe(self) -> Tuple[Optional[float], int]:
        """One estimation on the current overlay: (value or None, messages)."""
        try:
            est = self.estimator.estimate()
        except EstimatorError:
            return None, 0
        return float(est.value), int(est.messages)

    def snapshot(self) -> Dict[str, Any]:
        """Pure-data state: the persistent generator is the only state."""
        return {"rng": generator_state(self.estimator.rng)}

    @classmethod
    def restore(
        cls, name: str, graph, config: ServiceConfig, snap: Mapping[str, Any]
    ) -> "_ProbeFamily":
        """Rebuild with the captured generator; future probes are identical."""
        return cls.build(name, graph, config, generator_from_state(snap["rng"]))


class _AggregationFamily:
    """The warm epidemic family: an :class:`AggregationMonitor` stepped
    once per service round (epoch staircase semantics of Figs 15-17)."""

    name = "aggregation"

    def __init__(self, monitor: AggregationMonitor) -> None:
        self.monitor = monitor

    @classmethod
    def build(cls, graph, config: ServiceConfig, rng) -> "_AggregationFamily":
        """Construct the monitor on the live overlay."""
        return cls(
            AggregationMonitor(
                graph, restart_interval=config.agg_restart_interval, rng=rng
            )
        )

    def step(self, round_number: int) -> None:
        """Advance one gossip round (close/reopen epochs at boundaries)."""
        self.monitor.on_round(round_number)

    def latest(self) -> Tuple[Optional[float], Optional[int]]:
        """(held estimate, round it was closed at); (None, None) pre-epoch."""
        if not self.monitor.epoch_estimates:
            return None, None
        rnd, value = self.monitor.epoch_estimates[-1]
        return float(value), int(rnd)

    def snapshot(self) -> Dict[str, Any]:
        """Pure-data state: the monitor's own snapshot payload."""
        return {"monitor": self.monitor.snapshot()}

    @classmethod
    def restore(
        cls, graph, config: ServiceConfig, snap: Mapping[str, Any]
    ) -> "_AggregationFamily":
        """Rebuild the monitor mid-epoch on the restored overlay."""
        return cls(
            AggregationMonitor.restore(
                graph,
                snap["monitor"],
                restart_interval=config.agg_restart_interval,
            )
        )


@dataclass
class _ServiceStats:
    """Monotone per-process operational counters (not checkpointed)."""

    served: int = 0
    throttled: int = 0
    ingest_accepted: int = 0
    ingest_dropped: int = 0
    ticks: int = 0
    probes: int = 0
    probe_failures: int = 0
    checkpoints: int = 0
    started: float = field(default_factory=time.time)

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view for the ``/stats`` endpoint."""
        out = asdict(self)
        out["uptime"] = max(0.0, time.time() - out.pop("started"))
        return out


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------


class EstimationService:
    """A resident size-estimation scenario with warm per-family estimators.

    Thread-safe: every public method takes the internal lock, so the HTTP
    handler threads, the ticker and checkpointing can interleave freely.

    Parameters
    ----------
    config:
        Declarative :class:`ServiceConfig`.
    progress:
        Optional :class:`~repro.runtime.progress.ProgressReporter`; the
        service lifecycle (``service_start``, ``estimate_served``,
        ``ingest_dropped``, ``snapshot_checkpoint``) flows through it into
        run journals (``docs/OBSERVABILITY.md``).
    snapshot_path:
        Where periodic checkpoints land (``config.snapshot_every``); also
        the default target of :meth:`checkpoint`.
    clock:
        Monotonic clock for the token bucket (injectable for tests).
    """

    def __init__(
        self,
        config: ServiceConfig,
        progress: Optional[ProgressReporter] = None,
        snapshot_path: Optional[str] = None,
        clock=time.monotonic,
        _boot: bool = True,
    ) -> None:
        self.config = config
        self.progress = progress if progress is not None else NullProgress()
        self.snapshot_path = None if snapshot_path is None else os.fspath(snapshot_path)
        self._lock = threading.RLock()
        self._bucket = TokenBucket(config.max_qps, config.burst, clock=clock)
        self._queue: Deque[Dict[str, Any]] = deque()
        self.stats = _ServiceStats()
        self.round = 0
        #: family -> {"value": float|None, "round": int|None, "messages": int}
        self.estimates: Dict[str, Dict[str, Any]] = {
            name: {"value": None, "round": None, "messages": 0}
            for name in config.estimators
        }
        if _boot:
            hub = RngHub(config.seed)
            graph = heterogeneous_random(
                config.initial_size,
                max_degree=config.max_degree,
                min_degree=config.min_degree,
                rng=hub.stream("overlay"),
            )
            self.scheduler = ChurnScheduler(
                graph,
                ChurnTrace(),
                rng=hub.stream("churn"),
                max_degree=config.max_degree,
                min_degree=config.min_degree,
            )
            self._families: Dict[str, Any] = {}
            for name in config.estimators:
                if name == "aggregation":
                    self._families[name] = _AggregationFamily.build(
                        graph, config, hub.stream("monitor")
                    )
                else:
                    self._families[name] = _ProbeFamily.build(
                        name, graph, config, hub.stream(f"svc:{name}")
                    )
            self._probe(initial=True)
            self._announce()

    # -- construction helpers ------------------------------------------

    def _announce(self) -> None:
        self.progress.on_service_start(
            {
                "families": list(self.config.estimators),
                "size": self.graph.size,
                "seed": int(self.config.seed),
                "round": int(self.round),
            }
        )

    @property
    def graph(self):
        """The live (mutating) overlay."""
        return self.scheduler.graph

    # -- ingest / tick (write path) ------------------------------------

    def ingest(self, events: Sequence[Mapping[str, Any]]) -> Tuple[int, int]:
        """Queue membership events; returns ``(accepted, dropped)``.

        Each event is a mapping with any of ``joins`` / ``leaves`` /
        ``frac_joins`` / ``frac_leaves`` (the :class:`ChurnEvent` fields
        minus ``time`` — arrival order *is* the time; every queued event
        applies at the next tick's round).  Once ``queue_limit`` events
        are queued, further events are shed and counted
        (``ingest_dropped`` journal event) — bounded memory under any
        arrival rate, per the queue-based load-leveling pattern.
        """
        accepted = 0
        dropped = 0
        with self._lock:
            for event in events:
                fields = {
                    k: event[k]
                    for k in ("joins", "leaves", "frac_joins", "frac_leaves")
                    if k in event
                }
                ChurnEvent(time=0.0, **fields)  # validate before queueing
                if len(self._queue) >= self.config.queue_limit:
                    dropped += 1
                else:
                    self._queue.append(fields)
                    accepted += 1
            self.stats.ingest_accepted += accepted
            self.stats.ingest_dropped += dropped
            if dropped:
                self.progress.on_ingest_dropped(dropped, len(self._queue))
        return accepted, dropped

    def tick(self, rounds: int = 1) -> int:
        """Advance the scenario ``rounds`` rounds; returns the new round.

        Each round: drain the ingest queue into the live scheduler at the
        new round's instant, apply the churn, step the aggregation monitor,
        refresh the probe families on their cadence, and checkpoint when
        the ``snapshot_every`` boundary is crossed.
        """
        with self._lock:
            for _ in range(int(rounds)):
                self.round += 1
                self.stats.ticks += 1
                if self._queue:
                    batch = [
                        dict(fields, time=float(self.round)) for fields in self._queue
                    ]
                    self._queue.clear()
                    self.scheduler.feed(batch)
                self.scheduler.advance_to(float(self.round))
                family = self._families.get("aggregation")
                if family is not None and self.graph.size > 0:
                    family.step(self.round)
                    value, rnd = family.latest()
                    if value is not None:
                        entry = self.estimates["aggregation"]
                        entry["value"] = value
                        entry["round"] = rnd
                if self.round % self.config.probe_interval == 0:
                    self._probe()
                if (
                    self.config.snapshot_every
                    and self.snapshot_path is not None
                    and self.round % self.config.snapshot_every == 0
                ):
                    self.checkpoint()
            return self.round

    def _probe(self, initial: bool = False) -> None:
        """Refresh every probe family's estimate at the current round."""
        for name, family in self._families.items():
            if not isinstance(family, _ProbeFamily):
                continue
            if self.graph.size == 0:
                continue
            value, messages = family.probe()
            self.stats.probes += 1
            if value is None:
                self.stats.probe_failures += 1
                continue
            entry = self.estimates[name]
            entry["value"] = value
            entry["round"] = int(self.round)
            entry["messages"] = messages
        if initial:
            return

    # -- estimate / health / stats (read path) -------------------------

    def read_estimates(
        self, families: Optional[Sequence[str]] = None
    ) -> Dict[str, Dict[str, Any]]:
        """Current per-family estimates with staleness, without admission.

        ``staleness`` is the round distance between *now* and the round
        the estimate was produced at (``None`` while no estimate exists
        yet) — the freshness model ``docs/SERVICE.md`` documents and the
        service benchmark reports.
        """
        with self._lock:
            names = list(self.config.estimators) if families is None else list(families)
            unknown = [n for n in names if n not in self.estimates]
            if unknown:
                raise KeyError(
                    f"unknown estimator families {unknown}; serving "
                    f"{list(self.config.estimators)}"
                )
            out: Dict[str, Dict[str, Any]] = {}
            for name in names:
                entry = dict(self.estimates[name])
                entry["staleness"] = (
                    None if entry["round"] is None else self.round - entry["round"]
                )
                out[name] = entry
            return out

    def serve_estimate(
        self, families: Optional[Sequence[str]] = None
    ) -> Tuple[bool, Dict[str, Any]]:
        """Admission-controlled estimate read: ``(admitted, payload)``.

        A rejected request costs only the token-bucket check; an admitted
        one is journaled as ``estimate_served`` with its worst staleness.
        """
        with self._lock:
            if not self._bucket.allow():
                self.stats.throttled += 1
                return False, {
                    "error": "throttled",
                    "max_qps": self.config.max_qps,
                }
            estimates = self.read_estimates(families)
            self.stats.served += 1
            staleness = [
                e["staleness"] for e in estimates.values() if e["staleness"] is not None
            ]
            self.progress.on_estimate_served(
                sorted(estimates),
                int(self.round),
                max(staleness) if staleness else None,
            )
            return True, {"round": int(self.round), "estimates": estimates}

    def health(self) -> Dict[str, Any]:
        """Liveness payload: round, overlay size, families, queue depth."""
        with self._lock:
            return {
                "status": "ok",
                "round": int(self.round),
                "size": int(self.graph.size),
                "families": list(self.config.estimators),
                "queued": len(self._queue),
            }

    def stats_dict(self) -> Dict[str, Any]:
        """Operational counters for the ``/stats`` endpoint."""
        with self._lock:
            out = self.stats.as_dict()
            out["round"] = int(self.round)
            out["size"] = int(self.graph.size)
            out["queued"] = len(self._queue)
            out["max_qps"] = self.config.max_qps
            out["queue_limit"] = self.config.queue_limit
            return out

    # -- snapshot / checkpoint / restore (docs/SERVICE.md) -------------

    def snapshot(self) -> Dict[str, Any]:
        """Pure-data capture of everything future behaviour depends on.

        Scheduler (overlay + churn generator + trace cursor, rebased to a
        fresh empty trace — consumed history is *not* replayed on
        restore), warm-estimator states, the latest served estimates and
        the queued-but-undrained ingest events.  Deliberately excluded:
        operational stats (monotone per process) and the token bucket
        (admission is a property of *this* process's wall clock).
        """
        with self._lock:
            scheduler = self.scheduler.snapshot()
            # The live trace is fully consumed between ticks and its events
            # are never re-applied, so the restored scheduler starts from a
            # fresh, empty trace: rebase the cursor accordingly.
            scheduler["cursor"] = 0
            return {
                "schema": SERVICE_SCHEMA_VERSION,
                "config": self.config.as_config(),
                "round": int(self.round),
                "scheduler": scheduler,
                "families": {
                    name: family.snapshot()
                    for name, family in self._families.items()
                },
                "estimates": {
                    name: dict(entry) for name, entry in self.estimates.items()
                },
                "pending": [dict(fields) for fields in self._queue],
            }

    @classmethod
    def from_snapshot(
        cls,
        payload: Mapping[str, Any],
        progress: Optional[ProgressReporter] = None,
        snapshot_path: Optional[str] = None,
        clock=time.monotonic,
    ) -> "EstimationService":
        """Rebuild a service mid-stream from a :meth:`snapshot` payload.

        Future ticks, probes and checkpoints are bit-identical to the
        captured service's (given the same post-restore event stream) —
        the restart-resumes-not-replays contract the acceptance tests
        assert.
        """
        schema = payload.get("schema")
        if schema != SERVICE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported service snapshot schema {schema!r} "
                f"(expected {SERVICE_SCHEMA_VERSION})"
            )
        config = ServiceConfig.from_config(payload["config"])
        service = cls(
            config,
            progress=progress,
            snapshot_path=snapshot_path,
            clock=clock,
            _boot=False,
        )
        service.round = int(payload["round"])
        service.scheduler = ChurnScheduler.restore(
            payload["scheduler"],
            ChurnTrace(),
            max_degree=config.max_degree,
            min_degree=config.min_degree,
        )
        graph = service.scheduler.graph
        service._families = {}
        for name in config.estimators:
            snap = payload["families"][name]
            if name == "aggregation":
                service._families[name] = _AggregationFamily.restore(
                    graph, config, snap
                )
            else:
                service._families[name] = _ProbeFamily.restore(
                    name, graph, config, snap
                )
        for name, entry in payload.get("estimates", {}).items():
            if name in service.estimates:
                service.estimates[name] = dict(entry)
        service._queue.extend(dict(f) for f in payload.get("pending", ()))
        service._announce()
        return service

    @classmethod
    def from_checkpoint(
        cls,
        path: str,
        progress: Optional[ProgressReporter] = None,
        clock=time.monotonic,
    ) -> "EstimationService":
        """Load a :meth:`checkpoint` file and resume from it."""
        with open(os.fspath(path), encoding="utf-8") as fh:
            payload = json.load(fh)
        return cls.from_snapshot(
            payload, progress=progress, snapshot_path=path, clock=clock
        )

    def checkpoint(self, path: Optional[str] = None) -> str:
        """Write the current :meth:`snapshot` as JSON, atomically.

        The payload lands in a sibling temp file first and is renamed into
        place, so a crash mid-write never corrupts the last good
        checkpoint.  Journaled as ``snapshot_checkpoint``.
        """
        with self._lock:
            target = os.fspath(path) if path is not None else self.snapshot_path
            if target is None:
                raise ValueError("no checkpoint path configured (snapshot_path)")
            began = time.perf_counter()
            payload = json.dumps(self.snapshot(), sort_keys=True)
            tmp = f"{target}.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, target)
            self.stats.checkpoints += 1
            self.progress.on_snapshot_checkpoint(
                int(self.round),
                target,
                len(payload),
                time.perf_counter() - began,
            )
            return target
