"""Synchronous round driver on top of the event engine.

Both gossip protocols in the paper are round-based: Aggregation performs one
push-pull exchange per node per round ("At each predefined cycle, each node
... chooses one of its neighbor at random and swaps its estimation
parameter"), and the HopsSampling spread advances one gossip hop per round.
Churn in the dynamic experiments is likewise expressed per round/time-step
(e.g. Fig 15: "-25% of nodes at 100 and 500, +25000 nodes at 700").

:class:`RoundDriver` schedules one engine event per round at integer times
and lets any number of listeners (protocol kernels, churn scheduler, probes)
subscribe with a priority, so that e.g. churn is applied *before* the
protocol round executes at the same instant — matching the paper's "the
network changed, then the protocol ran on the degraded overlay" semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .engine import SimulationEngine

__all__ = ["RoundDriver", "RoundHook"]

#: Priorities: churn first, then protocols, then observers.
PRIORITY_CHURN = 0
PRIORITY_PROTOCOL = 10
PRIORITY_OBSERVER = 20


@dataclass
class RoundHook:
    """A subscribed per-round callback."""

    callback: Callable[[int], None]
    priority: int
    label: str = ""


class RoundDriver:
    """Drives numbered rounds ``1..horizon`` as engine events.

    Parameters
    ----------
    engine:
        The discrete-event engine to schedule on (a fresh one is created
        when omitted).
    start_round:
        First :meth:`run` continues from this round number (virtual clock
        included).  Used when restoring a mid-replay snapshot so round
        numbering — and everything keyed on it, like churn event times —
        stays aligned with the uninterrupted run (``docs/SNAPSHOTS.md``).
    """

    def __init__(
        self,
        engine: Optional[SimulationEngine] = None,
        start_round: int = 0,
    ) -> None:
        if start_round < 0:
            raise ValueError(f"start_round must be non-negative, got {start_round}")
        self.engine = (
            engine if engine is not None else SimulationEngine(start_time=float(start_round))
        )
        self._hooks: List[RoundHook] = []
        self._round = int(start_round)
        self._stopped = False

    @property
    def current_round(self) -> int:
        """The last round that has (fully) executed; 0 before any round."""
        return self._round

    def subscribe(
        self,
        callback: Callable[[int], None],
        priority: int = PRIORITY_PROTOCOL,
        label: str = "",
    ) -> RoundHook:
        """Register ``callback(round_number)`` to run every round.

        Hooks execute in ascending priority order; equal priorities keep
        subscription order.  Returns the hook (pass to :meth:`unsubscribe`).
        """
        hook = RoundHook(callback=callback, priority=priority, label=label)
        self._hooks.append(hook)
        self._hooks.sort(key=lambda h: h.priority)
        return hook

    def unsubscribe(self, hook: RoundHook) -> None:
        """Remove a previously subscribed hook (no-op if already removed)."""
        try:
            self._hooks.remove(hook)
        except ValueError:
            pass

    def stop(self) -> None:
        """Request the run loop to halt after the current round."""
        self._stopped = True

    def run(self, rounds: int) -> int:
        """Execute ``rounds`` further rounds; returns rounds executed.

        Each round is one engine event at time ``current_round + 1`` so the
        virtual clock equals the round number, which the dynamic figures use
        as their x-axis ("Time" / "#Round").
        """
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        self._stopped = False
        executed = 0
        for _ in range(rounds):
            if self._stopped:
                break
            target = self._round + 1

            def fire(_engine: SimulationEngine, rnd: int = target) -> None:
                for hook in list(self._hooks):
                    hook.callback(rnd)

            self.engine.schedule(float(target), fire, label=f"round#{target}")
            self.engine.run(until=float(target))
            self._round = target
            executed += 1
        return executed
