"""Message taxonomy and overhead accounting.

The paper's third evaluation criterion (§IV-B-c) is **overhead**, defined as
"the number of messages required to compute the system size", covering
"spreading messages for Aggregation and for HopsSampling, return messages
for HopsSampling, the message associated to the random walk for
Sample&Collide as well as each sampled node's return".

:class:`MessageMeter` is the single accounting object every protocol kernel
increments.  Counters are split by :class:`MessageKind` so Table I and the
per-algorithm overhead analyses can attribute cost to spread vs. reply vs.
walk traffic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple

__all__ = ["MessageKind", "MessageMeter", "MeterSnapshot"]


class MessageKind(enum.Enum):
    """Categories of protocol traffic, matching the paper's enumeration."""

    #: Gossip/poll dissemination hops (Aggregation exchange requests,
    #: HopsSampling spread).
    SPREAD = "spread"
    #: Responses travelling back to an initiator (HopsSampling replies,
    #: Sample&Collide sample returns).
    REPLY = "reply"
    #: Random-walk forwarding hops (Sample&Collide timer walk, Random Tour).
    WALK = "walk"
    #: Push-pull exchange payloads: each contact counts 2 messages, one in
    #: each direction (footnote 1 of the paper).
    EXCHANGE = "exchange"
    #: Protocol (re)start control traffic, e.g. Aggregation restart tags.
    CONTROL = "control"


@dataclass(frozen=True)
class MeterSnapshot:
    """Immutable view of a meter's counters at some instant."""

    counts: Mapping[str, int]

    @property
    def total(self) -> int:
        """Total messages across all kinds."""
        return sum(self.counts.values())

    def of(self, kind: MessageKind) -> int:
        """Count for one :class:`MessageKind`."""
        return self.counts.get(kind.value, 0)

    def __sub__(self, other: "MeterSnapshot") -> "MeterSnapshot":
        keys = set(self.counts) | set(other.counts)
        return MeterSnapshot(
            {k: self.counts.get(k, 0) - other.counts.get(k, 0) for k in keys}
        )


class MessageMeter:
    """Mutable message counters, incremented by protocol kernels.

    The meter is deliberately tiny: a dict of int counters plus convenience
    arithmetic.  Protocol kernels call :meth:`add` in bulk (e.g. "this gossip
    round produced 13,402 spread messages") rather than per message, keeping
    the accounting out of hot loops per the HPC guides.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, kind: MessageKind, count: int = 1) -> None:
        """Record ``count`` messages of ``kind`` (count must be >= 0)."""
        if count < 0:
            raise ValueError(f"negative message count: {count}")
        if count:
            self._counts[kind.value] = self._counts.get(kind.value, 0) + int(count)

    def count(self, kind: MessageKind) -> int:
        """Current counter for ``kind``."""
        return self._counts.get(kind.value, 0)

    @property
    def total(self) -> int:
        """Total messages recorded so far."""
        return sum(self._counts.values())

    def snapshot(self) -> MeterSnapshot:
        """Freeze the current counters."""
        return MeterSnapshot(dict(self._counts))

    @classmethod
    def restore(cls, counts: Mapping[str, int]) -> "MessageMeter":
        """Rebuild a meter holding the given counters.

        Inverse of ``snapshot().counts``; part of the chunk hand-off
        protocol (``docs/SNAPSHOTS.md``) so cumulative overhead columns
        survive a mid-replay state transfer.
        """
        meter = cls()
        meter._counts = {str(k): int(v) for k, v in counts.items()}
        return meter

    def reset(self) -> None:
        """Zero all counters."""
        self._counts.clear()

    def items(self) -> Iterator[Tuple[str, int]]:
        """Iterate ``(kind_value, count)`` pairs."""
        return iter(self._counts.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"MessageMeter({inner}, total={self.total})"
