"""Discrete-event simulation engine.

The paper evaluates all algorithms "using a discrete event simulator, able
to simulate static and dynamic network configurations.  The simulator counts
the messages over the network.  It does not model the physical network
topology nor the queuing delays and packet losses" (§IV-A).

This module implements that contract:

* a classic event heap keyed by ``(time, priority, seq)`` — ``seq`` breaks
  ties FIFO so execution is fully deterministic;
* events are arbitrary callables (churn steps, protocol rounds, estimation
  triggers);
* there is **no** link latency model: protocol kernels executed inside an
  event do all their message accounting through a shared
  :class:`~repro.sim.messages.MessageMeter`, at round granularity, exactly
  like the paper's simulator.

Protocols that are naturally synchronous (gossip rounds) are driven by
:class:`repro.sim.rounds.RoundDriver`, which schedules one event per round
on this engine.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

__all__ = ["Event", "SimulationEngine", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on invalid engine operations (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A scheduled occurrence in virtual time.

    Ordering is by ``(time, priority, seq)``; the payload callable is
    excluded from comparisons.
    """

    time: float
    priority: int
    seq: int
    action: Callable[["SimulationEngine"], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class SimulationEngine:
    """Deterministic event-loop with virtual time.

    Examples
    --------
    >>> eng = SimulationEngine()
    >>> hits = []
    >>> _ = eng.schedule(5.0, lambda e: hits.append(e.now))
    >>> _ = eng.schedule(1.0, lambda e: hits.append(e.now))
    >>> eng.run()
    >>> hits
    [1.0, 5.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._executed = 0

    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def executed(self) -> int:
        """Number of events executed so far."""
        return self._executed

    # ------------------------------------------------------------------

    def schedule(
        self,
        time: float,
        action: Callable[["SimulationEngine"], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute virtual ``time``.

        ``priority`` orders simultaneous events (lower runs first); among
        equal priorities insertion order wins.  Scheduling strictly in the
        past raises :class:`SimulationError`; scheduling *at* the current
        time is allowed (runs later in the same instant).
        """
        time = float(time)
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        ev = Event(time=time, priority=priority, seq=next(self._seq),
                   action=action, label=label)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_in(
        self,
        delay: float,
        action: Callable[["SimulationEngine"], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` after a non-negative relative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule(self._now + delay, action, priority, label)

    def schedule_every(
        self,
        interval: float,
        action: Callable[["SimulationEngine"], Any],
        start: Optional[float] = None,
        count: Optional[int] = None,
        priority: int = 0,
        label: str = "",
    ) -> None:
        """Schedule a recurring action every ``interval`` time units.

        ``count`` bounds the number of firings (``None`` = until
        :meth:`stop` / horizon).  The recurrence is implemented by each
        firing rescheduling the next, so cancelling propagates naturally
        when the run stops.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive: {interval}")
        first = self._now + interval if start is None else float(start)
        remaining = count

        def fire(engine: "SimulationEngine") -> None:
            nonlocal remaining
            action(engine)
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    return
            engine.schedule(engine.now + interval, fire, priority, label)

        if remaining is None or remaining > 0:
            self.schedule(first, fire, priority, label)

    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = ev.time
            ev.action(self)
            self._executed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue empties, ``until`` passes, or
        ``max_events`` have executed.  Returns the number executed.

        When ``until`` is given, events scheduled after it stay queued and
        the clock is advanced to ``until`` (standard horizon semantics).
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        executed = 0
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    break
                nxt = self._heap[0]
                if nxt.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and nxt.time > until:
                    break
                if self.step():
                    executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = float(until)
        return executed

    def stop(self) -> None:
        """Cancel all pending events (the run loop will then terminate)."""
        for ev in self._heap:
            ev.cancel()
