"""Accuracy metrics used throughout the evaluation.

The paper's figures plot **quality %**: the estimate divided by the true
size, times 100 ("the system size is normalized to 100 to enable us to
express the quality of the estimation in terms of percentage").  Dynamic
figures instead plot raw estimated size against the true (moving) size.

This module provides:

* :func:`quality_percent` / :func:`error_percent` — the paper's y-axis;
* :class:`RollingAverage` — the *last10runs* heuristic (average of the 10
  most recent one-shot estimates, the smoother curve in Figs 1-4);
* :class:`EstimateSeries` — an append-only log of (x, estimate, true size)
  triples with summary statistics (precision windows like "remains within a
  10% precision window", under-estimation bias checks, etc.);
* :class:`PhaseBreakdown` — aggregate of worker-phase wall-time profiles
  (boot/restore/churn/estimation/serialize spans recorded by the runtime's
  run journal, see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Mapping, Tuple

import numpy as np

__all__ = [
    "quality_percent",
    "error_percent",
    "PhaseBreakdown",
    "RollingAverage",
    "EstimateSeries",
    "SeriesSummary",
]


def quality_percent(estimate: float, true_size: float) -> float:
    """Estimate as a percentage of the true size (100 == exact).

    Raises :class:`ValueError` on a non-positive true size: quality is
    undefined for an empty system.
    """
    if true_size <= 0:
        raise ValueError(f"true size must be positive, got {true_size}")
    return 100.0 * float(estimate) / float(true_size)


def error_percent(estimate: float, true_size: float) -> float:
    """Absolute relative error in percent: ``|quality - 100|``."""
    return abs(quality_percent(estimate, true_size) - 100.0)


class RollingAverage:
    """Mean of the ``k`` most recent values — the *last10runs* heuristic.

    >>> r = RollingAverage(3)
    >>> [r.push(v) for v in (1.0, 2.0, 3.0, 4.0)][-1]
    3.0
    """

    def __init__(self, window: int = 10) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self._buf: Deque[float] = deque(maxlen=self.window)

    def push(self, value: float) -> float:
        """Append ``value`` and return the current rolling mean."""
        self._buf.append(float(value))
        return self.mean

    @property
    def mean(self) -> float:
        """Current rolling mean (NaN when empty)."""
        if not self._buf:
            return float("nan")
        return float(sum(self._buf) / len(self._buf))

    @property
    def count(self) -> int:
        """Number of values currently in the window."""
        return len(self._buf)

    def reset(self) -> None:
        """Forget all values."""
        self._buf.clear()


@dataclass(frozen=True)
class SeriesSummary:
    """Aggregate statistics over an :class:`EstimateSeries`."""

    count: int
    mean_quality: float
    median_quality: float
    worst_error: float
    mean_error: float
    rmse_quality: float
    bias: float  # mean(quality) - 100; negative == systematic under-estimate
    within_10pct: float  # fraction of points with error <= 10%
    within_20pct: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for reporting."""
        return {
            "count": self.count,
            "mean_quality": self.mean_quality,
            "median_quality": self.median_quality,
            "worst_error": self.worst_error,
            "mean_error": self.mean_error,
            "rmse_quality": self.rmse_quality,
            "bias": self.bias,
            "within_10pct": self.within_10pct,
            "within_20pct": self.within_20pct,
        }


@dataclass
class PhaseBreakdown:
    """Accumulated wall-time per named execution phase.

    Feed it the ``phases`` mappings carried by journal ``chunk_done`` /
    ``trial`` events (or :class:`~repro.runtime.TrialResult` profiles);
    it keeps the total seconds and span count per phase and derives
    shares and means.  Phase names are not validated here — the runtime
    owns the taxonomy (``repro.runtime.PHASES``).
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    def add(self, phases: Mapping[str, float]) -> None:
        """Accumulate one span's ``{phase: seconds}`` mapping."""
        for name, seconds in phases.items():
            self.totals[name] = self.totals.get(name, 0.0) + float(seconds)
            self.counts[name] = self.counts.get(name, 0) + 1

    @classmethod
    def from_profiles(
        cls, profiles: Iterable[Mapping[str, float]]
    ) -> "PhaseBreakdown":
        """Aggregate an iterable of ``{phase: seconds}`` mappings."""
        breakdown = cls()
        for phases in profiles:
            breakdown.add(phases)
        return breakdown

    @property
    def busy(self) -> float:
        """Total attributed seconds across all phases."""
        return float(sum(self.totals.values()))

    def share(self, name: str) -> float:
        """Phase's fraction of total attributed time, in percent."""
        busy = self.busy
        if busy <= 0:
            return 0.0
        return 100.0 * self.totals.get(name, 0.0) / busy

    def mean(self, name: str) -> float:
        """Mean seconds per span of ``name`` (NaN when unseen)."""
        count = self.counts.get(name, 0)
        if count == 0:
            return float("nan")
        return self.totals[name] / count

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Per-phase ``{total, spans, share, mean}`` for reporting."""
        return {
            name: {
                "total": self.totals[name],
                "spans": self.counts[name],
                "share": self.share(name),
                "mean": self.mean(name),
            }
            for name in self.totals
        }


class EstimateSeries:
    """Append-only series of estimates with the true size at each point.

    ``x`` is whatever the figure's x-axis is (estimation index, round
    number, virtual time).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._x: List[float] = []
        self._estimates: List[float] = []
        self._true: List[float] = []

    def append(self, x: float, estimate: float, true_size: float) -> None:
        """Record one estimation point."""
        if true_size <= 0:
            raise ValueError("true size must be positive")
        self._x.append(float(x))
        self._estimates.append(float(estimate))
        self._true.append(float(true_size))

    def __len__(self) -> int:
        return len(self._x)

    @property
    def x(self) -> np.ndarray:
        """X-axis values as an array."""
        return np.asarray(self._x, dtype=float)

    @property
    def estimates(self) -> np.ndarray:
        """Raw estimates as an array."""
        return np.asarray(self._estimates, dtype=float)

    @property
    def true_sizes(self) -> np.ndarray:
        """True sizes aligned with estimates."""
        return np.asarray(self._true, dtype=float)

    def qualities(self) -> np.ndarray:
        """Per-point quality % (the paper's normalized y-axis)."""
        return 100.0 * self.estimates / self.true_sizes

    def errors(self) -> np.ndarray:
        """Per-point absolute error %."""
        return np.abs(self.qualities() - 100.0)

    def rolling_qualities(self, window: int = 10) -> np.ndarray:
        """Quality % after last-``window``-runs smoothing of the estimates.

        Smoothing is applied to the raw estimates (as the paper does for
        last10runs) and then normalized by the *current* true size, so in
        dynamic settings the lag of the averaging window is visible, exactly
        as discussed in §IV-D ("there is a little convergence time to elapse
        ... facing a brutal topology changes").
        """
        roll = RollingAverage(window)
        smoothed = np.array([roll.push(v) for v in self._estimates])
        return 100.0 * smoothed / self.true_sizes

    def summary(self, skip: int = 0) -> SeriesSummary:
        """Summary statistics, optionally skipping ``skip`` warm-up points."""
        if len(self._x) <= skip:
            raise ValueError(
                f"series has {len(self._x)} points; cannot skip {skip}"
            )
        q = self.qualities()[skip:]
        err = np.abs(q - 100.0)
        return SeriesSummary(
            count=int(q.size),
            mean_quality=float(q.mean()),
            median_quality=float(np.median(q)),
            worst_error=float(err.max()),
            mean_error=float(err.mean()),
            rmse_quality=float(np.sqrt(np.mean((q - 100.0) ** 2))),
            bias=float(q.mean() - 100.0),
            within_10pct=float((err <= 10.0).mean()),
            within_20pct=float((err <= 20.0).mean()),
        )

    def rows(self) -> Iterable[Tuple[float, float, float]]:
        """Iterate ``(x, estimate, true_size)`` rows (CSV-friendly)."""
        return zip(self._x, self._estimates, self._true)
