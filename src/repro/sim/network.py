"""Message-level network simulation on the event engine.

The paper's simulator counts messages at round granularity and "does not
model the physical network topology nor the queuing delays" (§IV-A) — the
round-level kernels in :mod:`repro.core` implement exactly that, and all
figures use them.  This module adds the *finer* simulation mode the paper's
future work points at: every protocol message is an individual
:class:`~repro.sim.engine.SimulationEngine` event with a latency drawn from
a :class:`~repro.sim.latency.LatencyModel`, delivered to a per-node handler.

Two uses:

* **validation** — on small overlays, a message-level run of a protocol
  must agree with the round-level kernel (same reach, same message
  counts when latencies are constant); the test-suite checks this for the
  gossip spread, which pins down that the fast kernels are faithful
  abstractions, not approximations;
* **delay studies** — completion times emerge from actual message
  orderings instead of the closed-form models in
  :mod:`repro.sim.latency` (the models are validated against this).

The API is deliberately small: a :class:`Network` owns the engine, the
latency model and the meter; protocols are written as handler functions
``handler(network, node, message) -> None`` that may call
:meth:`Network.send`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..overlay.graph import OverlayGraph
from .engine import SimulationEngine
from .latency import LatencyModel
from .messages import MessageKind, MessageMeter
from .rng import RngLike

__all__ = ["Message", "Network", "MessageLevelSpread"]


@dataclass(frozen=True)
class Message:
    """One in-flight protocol message."""

    sender: int
    receiver: int
    kind: MessageKind
    payload: Any = None
    sent_at: float = 0.0


Handler = Callable[["Network", int, Message], None]


class Network:
    """Delivers individual messages between overlay nodes with latency.

    Parameters
    ----------
    graph:
        The overlay; only alive receivers get deliveries (messages to
        departed nodes are silently dropped — fail-stop semantics).
    latency:
        Per-message delay source; defaults to a constant 50 ms
        (``sigma=0``) so validation runs are deterministic in time.
    """

    def __init__(
        self,
        graph: OverlayGraph,
        latency: Optional[LatencyModel] = None,
        meter: Optional[MessageMeter] = None,
        rng: RngLike = None,
    ) -> None:
        self.graph = graph
        self.engine = SimulationEngine()
        self.latency = latency if latency is not None else LatencyModel(
            median_ms=50.0, sigma=0.0, rng=rng
        )
        self.meter = meter if meter is not None else MessageMeter()
        self._handlers: Dict[int, Handler] = {}
        self._default_handler: Optional[Handler] = None
        self.delivered = 0
        self.dropped = 0

    # ------------------------------------------------------------------

    def set_handler(self, node: int, handler: Handler) -> None:
        """Install ``handler`` for deliveries to ``node``."""
        self._handlers[node] = handler

    def set_default_handler(self, handler: Handler) -> None:
        """Handler used by nodes without a specific one (typical case:
        every node runs the same protocol code)."""
        self._default_handler = handler

    def send(
        self,
        sender: int,
        receiver: int,
        kind: MessageKind,
        payload: Any = None,
    ) -> None:
        """Send one message; it is metered now and delivered after latency.

        Sending is allowed even if the receiver has already departed (the
        sender cannot know) — the message is still *charged* (it was put on
        the wire) but the delivery is dropped.
        """
        self.meter.add(kind, 1)
        delay = float(self.latency.draw(1)[0])
        msg = Message(
            sender=sender,
            receiver=receiver,
            kind=kind,
            payload=payload,
            sent_at=self.engine.now,
        )

        def deliver(_engine: SimulationEngine) -> None:
            if msg.receiver not in self.graph:
                self.dropped += 1
                return
            handler = self._handlers.get(msg.receiver, self._default_handler)
            if handler is None:
                self.dropped += 1
                return
            self.delivered += 1
            handler(self, msg.receiver, msg)

        self.engine.schedule_in(delay, deliver, label=f"{kind.value}->{receiver}")

    def run(self, until: Optional[float] = None) -> int:
        """Run the engine until quiescence (or the horizon)."""
        return self.engine.run(until=until)


class MessageLevelSpread:
    """The HopsSampling gossip spread, written message-by-message.

    Functionally equivalent to
    :func:`repro.core.hops_sampling._gossip_spread` (same fanout, same
    first-infection/min-hop rules, same duplicate-triggered re-gossip
    budget) but executed as individual :class:`Network` deliveries, so it
    additionally yields the spread's *completion time*.  The test-suite
    asserts the equivalence on shared RNG-free quantities (reach within
    tolerance, message count scaling); the delay ablation uses the
    completion time to validate the closed-form lock-step model.
    """

    def __init__(
        self,
        network: Network,
        gossip_to: int = 2,
        gossip_for: int = 1,
        gossip_until: int = 1,
        rng: RngLike = None,
    ) -> None:
        if gossip_to < 1 or gossip_for < 1 or gossip_until < 1:
            raise ValueError("gossip parameters must be >= 1")
        from .rng import as_generator

        self.network = network
        self.gossip_to = gossip_to
        self.gossip_for = gossip_for
        self.gossip_until = gossip_until
        self.rng = as_generator(rng, "ml_spread")
        self.hops: Dict[int, int] = {}
        self._sends_left: Dict[int, int] = {}
        self._regossip_left: Dict[int, int] = {}
        self.finished_at: float = 0.0

    # ------------------------------------------------------------------

    def run(self, initiator: int) -> None:
        """Execute the spread from ``initiator`` to quiescence."""
        g = self.network.graph
        if initiator not in g:
            raise ValueError(f"initiator {initiator} is not alive")
        self.hops[initiator] = 0
        self.network.set_default_handler(self._on_receive)
        self._forward(initiator)
        self.network.run()
        self.finished_at = self.network.engine.now

    @property
    def reached(self) -> int:
        """Nodes that received the poll (initiator included)."""
        return len(self.hops)

    def coverage(self) -> float:
        """Reached fraction of the current overlay."""
        n = self.network.graph.size
        return self.reached / n if n else 0.0

    # ------------------------------------------------------------------

    def _forward(self, node: int) -> None:
        g = self.network.graph
        my_hop = self.hops[node]
        for _ in range(self.gossip_to):
            target = g.random_neighbor(node, self.rng)
            if target is None:
                continue
            self.network.send(node, target, MessageKind.SPREAD, payload=my_hop + 1)

    def _on_receive(self, _net: Network, node: int, msg: Message) -> None:
        hop = int(msg.payload)
        known = self.hops.get(node)
        if known is None:
            # first infection: record distance, gossip for gossip_for sends
            self.hops[node] = hop
            self._sends_left[node] = self.gossip_for
            self._regossip_left[node] = self.gossip_until
            self._sends_left[node] -= 1
            self._forward(node)
        else:
            if hop < known:
                self.hops[node] = hop  # lowest hopCount wins
            if self._sends_left.get(node, 0) > 0:
                self._sends_left[node] -= 1
                self._forward(node)
            elif self._regossip_left.get(node, 0) > 0:
                # duplicate-triggered re-gossip, once per budget unit
                self._regossip_left[node] -= 1
                self._forward(node)
