"""Message-delay modelling — the paper's stated future work.

The paper's simulator "does not model the physical network topology" and
§V therefore leaves delay unquantified, while conjecturing: "HopsSampling
probably outperforms the other algorithms in terms of delay ... a gossip
based broadcast and an immediate ACK response ... is very likely to be much
shorter than the 50 rounds of Aggregation or the wait for 200 equivalent
samples of Sample&Collide".  The conclusion lists "the physical network
modeling" as future work.

This module adds the minimal model that makes the conjecture measurable
without changing any protocol: every message experiences an i.i.d. latency
drawn from a configurable distribution, and each algorithm's *completion
time* is derived from its real execution structure:

* **Sample&Collide** — walks within one batch run in parallel, but each
  walk's hops are sequential and sampling is consumed sequentially until
  the ``l``-th collision; completion ≈ Σ over consumed walks of the walk's
  critical path when walks are issued back-to-back (the protocol as
  published issues them sequentially), or the max when issued in parallel.
* **HopsSampling** — spread rounds are lock-step (each round's length is
  the max latency of its fan-out), plus one reply latency.
* **Aggregation** — ``rounds`` lock-step cycles, each bounded by the
  slowest exchange.

The defaults use a log-normal latency (median 50 ms, heavy right tail),
a standard fit for wide-area RTT distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping

import numpy as np

from .rng import RngLike, as_generator

__all__ = [
    "LatencyModel",
    "LatencySpec",
    "DelayBreakdown",
    "completion_time_lockstep",
]


@dataclass(frozen=True)
class DelayBreakdown:
    """Completion-time estimate of one protocol execution."""

    total: float
    phases: dict

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v:.3f}s" for k, v in self.phases.items())
        return f"{self.total:.3f}s ({inner})"


@dataclass(frozen=True)
class LatencySpec:
    """Declarative, picklable description of a :class:`LatencyModel`.

    The model itself holds a live generator (it is priced by *consuming*
    a latency stream), so experiments ship this spec to workers and build
    the model there against a hub stream — the delay ablation's route into
    ``repro.runtime``.
    """

    median_ms: float = 50.0
    sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.median_ms <= 0:
            raise ValueError("median_ms must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def build(self, rng: RngLike = None) -> "LatencyModel":
        """Materialize the model drawing latencies from ``rng``."""
        return LatencyModel(median_ms=self.median_ms, sigma=self.sigma, rng=rng)

    def as_config(self) -> Dict[str, Any]:
        """Plain-dict form for content addressing."""
        return {"median_ms": float(self.median_ms), "sigma": float(self.sigma)}

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "LatencySpec":
        """Rebuild a spec from its :meth:`as_config` form (worker side)."""
        return cls(
            median_ms=float(config.get("median_ms", 50.0)),
            sigma=float(config.get("sigma", 0.5)),
        )


class LatencyModel:
    """I.i.d. per-message latency sampler.

    Parameters
    ----------
    median_ms:
        Median one-way message latency in milliseconds.
    sigma:
        Log-normal shape parameter; 0 degenerates to a constant latency.
    """

    def __init__(
        self, median_ms: float = 50.0, sigma: float = 0.5, rng: RngLike = None
    ) -> None:
        if median_ms <= 0:
            raise ValueError("median_ms must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.median_ms = float(median_ms)
        self.sigma = float(sigma)
        self.rng = as_generator(rng, "latency")

    def draw(self, count: int) -> np.ndarray:
        """``count`` latencies in seconds."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.empty(0)
        med = self.median_ms / 1000.0
        if self.sigma == 0.0:
            return np.full(count, med)
        return med * np.exp(self.sigma * self.rng.standard_normal(count))

    def mean(self) -> float:
        """Analytic mean latency in seconds (log-normal moment)."""
        return (self.median_ms / 1000.0) * math.exp(self.sigma**2 / 2.0)

    # ------------------------------------------------------------------
    # per-algorithm completion-time models
    # ------------------------------------------------------------------

    def sample_collide_delay(
        self, walks: int, hops_per_walk: float, parallel_walks: bool = False
    ) -> DelayBreakdown:
        """Completion time of an S&C estimation.

        ``walks`` sequential timer walks of ``hops_per_walk`` average hops
        each (plus the reply hop).  With ``parallel_walks`` the initiator
        launches everything concurrently and waits for the slowest chain —
        the latency-optimized deployment the paper hints at but does not
        evaluate.
        """
        if walks < 0 or hops_per_walk < 0:
            raise ValueError("walks and hops_per_walk must be non-negative")
        hops = max(int(round(hops_per_walk)), 1)
        if parallel_walks:
            # max over `walks` independent sums of (hops+1) latencies
            sums = self.draw(walks * (hops + 1)).reshape(walks, hops + 1).sum(axis=1) \
                if walks else np.zeros(1)
            walk_time = float(sums.max()) if walks else 0.0
            return DelayBreakdown(total=walk_time, phases={"walks(max)": walk_time})
        walk_time = float(self.draw(walks * (hops + 1)).sum()) if walks else 0.0
        return DelayBreakdown(total=walk_time, phases={"walks(sequential)": walk_time})

    def hops_sampling_delay(self, spread_rounds: int, fanout: int = 2) -> DelayBreakdown:
        """Completion time of a HopsSampling estimation.

        Each spread round advances in lock-step: its duration is the max of
        the round's fan-out latencies (approximated with the max of
        ``fanout·32`` draws — the frontier is large after the first couple
        of rounds, so the max concentrates quickly); one reply latency at
        the end (replies travel concurrently).
        """
        if spread_rounds < 0:
            raise ValueError("spread_rounds must be non-negative")
        spread = completion_time_lockstep(self, spread_rounds, width=max(32 * fanout, 8))
        reply = float(self.draw(1)[0])
        return DelayBreakdown(
            total=spread + reply, phases={"spread": spread, "reply": reply}
        )

    def aggregation_delay(self, rounds: int, width: int = 64) -> DelayBreakdown:
        """Completion time of ``rounds`` lock-step push-pull cycles.

        Each cycle costs a round trip (push + pull) bounded by the slowest
        of the round's exchanges.
        """
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        per_round = completion_time_lockstep(self, rounds, width=width)
        return DelayBreakdown(total=2.0 * per_round, phases={"rounds(rtt)": 2.0 * per_round})


def completion_time_lockstep(model: LatencyModel, rounds: int, width: int) -> float:
    """Total duration of ``rounds`` barriers, each the max of ``width``
    i.i.d. latencies — the standard lock-step round abstraction."""
    if rounds == 0:
        return 0.0
    draws = model.draw(rounds * width).reshape(rounds, width)
    return float(draws.max(axis=1).sum())
