"""Deterministic random-number streams for simulations.

Every stochastic component in :mod:`repro` draws from a named child stream of
a single master seed.  This gives two properties the paper's methodology
needs:

* **Reproducibility** — a whole experiment (graph construction, churn trace,
  every estimator run) is a pure function of one integer seed.
* **Isolation** — adding RNG consumption to one component (say, the churn
  scheduler) does not perturb the draws seen by another (say, the
  Sample&Collide walker), because each component owns its own
  :class:`numpy.random.Generator` spawned via ``SeedSequence``.

Example
-------
>>> hub = RngHub(42)
>>> g1 = hub.stream("overlay")
>>> g2 = hub.stream("walker")
>>> hub2 = RngHub(42)
>>> float(g1.random()) == float(hub2.stream("overlay").random())
True
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Union

import numpy as np

__all__ = ["RngHub", "as_generator", "derive_seed"]

#: Anything accepted where a random source is expected.
RngLike = Union[None, int, np.random.Generator, "RngHub"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from ``master_seed`` and a label.

    The derivation hashes the label so that stream identity depends only on
    the *name*, never on the order in which streams are requested.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngHub:
    """A factory of named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Master seed for the experiment.  ``None`` draws entropy from the OS
        (useful interactively, never in tests).

    Notes
    -----
    Streams are cached: requesting the same name twice returns the *same*
    generator object, so components that share a name share a stream.  Use
    :meth:`fresh` when a brand-new generator of the same lineage is needed
    (e.g. one per estimation run).
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        if seed is None:
            seed = int(np.random.SeedSequence().entropy) % (2**63)
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        self._fresh_counters: Dict[str, int] = {}

    @property
    def seed(self) -> int:
        """The master seed this hub was constructed with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for channel ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self._seed, name))
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator each call, seeded from ``name`` lineage.

        The ``k``-th call for a given name is deterministic across hubs with
        the same master seed.
        """
        k = self._fresh_counters.get(name, 0)
        self._fresh_counters[name] = k + 1
        return np.random.default_rng(derive_seed(self._seed, f"{name}#{k}"))

    def child(self, name: str) -> "RngHub":
        """Return a sub-hub whose master seed is derived from ``name``.

        Useful to hand a whole subsystem (e.g. one estimator instance) its
        own namespace of streams.
        """
        return RngHub(derive_seed(self._seed, f"child:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngHub(seed={self._seed}, streams={sorted(self._streams)})"


def as_generator(rng: RngLike, name: str = "default") -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS entropy), an integer seed, an existing
    generator (returned unchanged), or an :class:`RngHub` (its ``name``
    stream is used).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, RngHub):
        return rng.stream(name)
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot interpret {rng!r} as a random generator")
