"""Deterministic random-number streams for simulations.

Every stochastic component in :mod:`repro` draws from a named child stream of
a single master seed.  This gives two properties the paper's methodology
needs:

* **Reproducibility** — a whole experiment (graph construction, churn trace,
  every estimator run) is a pure function of one integer seed.
* **Isolation** — adding RNG consumption to one component (say, the churn
  scheduler) does not perturb the draws seen by another (say, the
  Sample&Collide walker), because each component owns its own
  :class:`numpy.random.Generator` spawned via ``SeedSequence``.

Example
-------
>>> hub = RngHub(42)
>>> g1 = hub.stream("overlay")
>>> g2 = hub.stream("walker")
>>> hub2 = RngHub(42)
>>> float(g1.random()) == float(hub2.stream("overlay").random())
True
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

__all__ = [
    "RngHub",
    "as_generator",
    "derive_seed",
    "generator_state",
    "generator_from_state",
]

#: Anything accepted where a random source is expected.
RngLike = Union[None, int, np.random.Generator, "RngHub"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from ``master_seed`` and a label.

    The derivation hashes the label so that stream identity depends only on
    the *name*, never on the order in which streams are requested.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def generator_state(gen: np.random.Generator) -> Dict[str, Any]:
    """Pure-data state capture of a generator (picklable, JSON-able).

    Returns the underlying bit generator's state dict — plain strings and
    (arbitrary-precision) ints, so it can be content-hashed and stored like
    any other snapshot payload (see ``docs/SNAPSHOTS.md``).
    :func:`generator_from_state` rebuilds a generator whose future draws
    are bit-identical to the captured one's.
    """
    return gen.bit_generator.state


def generator_from_state(state: Mapping[str, Any]) -> np.random.Generator:
    """Rebuild a generator from a :func:`generator_state` payload.

    The bit-generator class is looked up by the name recorded in the
    state dict (``PCG64`` for every generator this package creates).
    """
    name = str(state["bit_generator"])
    bit_gen = getattr(np.random, name)()
    bit_gen.state = dict(state)
    return np.random.Generator(bit_gen)


class RngHub:
    """A factory of named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Master seed for the experiment.  ``None`` draws entropy from the OS
        (useful interactively, never in tests).

    Notes
    -----
    Streams are cached: requesting the same name twice returns the *same*
    generator object, so components that share a name share a stream.  Use
    :meth:`fresh` when a brand-new generator of the same lineage is needed
    (e.g. one per estimation run).
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        if seed is None:
            seed = int(np.random.SeedSequence().entropy) % (2**63)
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        self._fresh_counters: Dict[str, int] = {}

    @property
    def seed(self) -> int:
        """The master seed this hub was constructed with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for channel ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self._seed, name))
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator each call, seeded from ``name`` lineage.

        The ``k``-th call for a given name is deterministic across hubs with
        the same master seed.
        """
        k = self._fresh_counters.get(name, 0)
        self._fresh_counters[name] = k + 1
        return np.random.default_rng(derive_seed(self._seed, f"{name}#{k}"))

    def child(self, name: str) -> "RngHub":
        """Return a sub-hub whose master seed is derived from ``name``.

        Useful to hand a whole subsystem (e.g. one estimator instance) its
        own namespace of streams.
        """
        return RngHub(derive_seed(self._seed, f"child:{name}"))

    def snapshot(self) -> Dict[str, Any]:
        """Pure-data capture of the hub: seed, stream states, fresh counters.

        Covers the *consumed* lineage only — streams never requested are
        absent and will be derived on demand after :meth:`restore`, exactly
        as on the original hub (stream identity depends only on the name,
        never on request order).  Child hubs are stateless derivations of
        the seed and need no capture.
        """
        return {
            "seed": self._seed,
            "streams": {
                name: generator_state(gen) for name, gen in self._streams.items()
            },
            "fresh": dict(self._fresh_counters),
        }

    @classmethod
    def restore(cls, snap: Mapping[str, Any]) -> "RngHub":
        """Rebuild a hub from a :meth:`snapshot` payload.

        Future draws from every captured stream — and the next
        :meth:`fresh` generator of every counted lineage — are
        bit-identical to what the captured hub would have produced.
        """
        hub = cls(int(snap["seed"]))
        hub._streams = {
            str(name): generator_from_state(state)
            for name, state in snap.get("streams", {}).items()
        }
        hub._fresh_counters = {
            str(name): int(k) for name, k in snap.get("fresh", {}).items()
        }
        return hub

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngHub(seed={self._seed}, streams={sorted(self._streams)})"


def as_generator(rng: RngLike, name: str = "default") -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS entropy), an integer seed, an existing
    generator (returned unchanged), or an :class:`RngHub` (its ``name``
    stream is used).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, RngHub):
        return rng.stream(name)
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot interpret {rng!r} as a random generator")
