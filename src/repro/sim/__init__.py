"""Simulation substrate: event engine, rounds, message accounting, metrics, RNG."""

from .engine import Event, SimulationEngine, SimulationError
from .latency import DelayBreakdown, LatencyModel, completion_time_lockstep
from .messages import MessageKind, MessageMeter, MeterSnapshot
from .network import Message, MessageLevelSpread, Network
from .metrics import (
    EstimateSeries,
    RollingAverage,
    SeriesSummary,
    error_percent,
    quality_percent,
)
from .rng import RngHub, as_generator, derive_seed
from .rounds import (
    PRIORITY_CHURN,
    PRIORITY_OBSERVER,
    PRIORITY_PROTOCOL,
    RoundDriver,
    RoundHook,
)

__all__ = [
    "DelayBreakdown",
    "Event",
    "EstimateSeries",
    "LatencyModel",
    "completion_time_lockstep",
    "Message",
    "MessageKind",
    "MessageLevelSpread",
    "MessageMeter",
    "MeterSnapshot",
    "Network",
    "PRIORITY_CHURN",
    "PRIORITY_OBSERVER",
    "PRIORITY_PROTOCOL",
    "RngHub",
    "RollingAverage",
    "RoundDriver",
    "RoundHook",
    "SeriesSummary",
    "SimulationEngine",
    "SimulationError",
    "as_generator",
    "derive_seed",
    "error_percent",
    "quality_percent",
]
