"""Read-only analyses over overlay graphs.

These helpers back Fig 7 (the scale-free degree distribution plot), the
connectivity arguments in §IV-A (average degree over ``log10 N`` keeps the
overlay connected) and §IV-D (aggregation degrades when departures disconnect
the overlay), and the test-suite's structural assertions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .graph import OverlayGraph

__all__ = [
    "DegreeStats",
    "degree_stats",
    "degree_histogram",
    "is_connected",
    "largest_component_fraction",
    "powerlaw_exponent",
    "connectivity_margin",
]


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a graph's degree distribution."""

    n: int
    m: int
    min_degree: int
    max_degree: int
    mean_degree: float
    median_degree: float
    isolated: int

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for reporting."""
        return {
            "n": self.n,
            "m": self.m,
            "min_degree": self.min_degree,
            "max_degree": self.max_degree,
            "mean_degree": self.mean_degree,
            "median_degree": self.median_degree,
            "isolated": self.isolated,
        }


def degree_stats(graph: OverlayGraph) -> DegreeStats:
    """Compute :class:`DegreeStats` for ``graph`` (empty graphs allowed)."""
    view = graph.csr()
    if view.n == 0:
        return DegreeStats(0, 0, 0, 0, 0.0, 0.0, 0)
    degs = view.degrees()
    return DegreeStats(
        n=view.n,
        m=view.m,
        min_degree=int(degs.min()),
        max_degree=int(degs.max()),
        mean_degree=float(degs.mean()),
        median_degree=float(np.median(degs)),
        isolated=int((degs == 0).sum()),
    )


def degree_histogram(graph: OverlayGraph) -> List[Tuple[int, int]]:
    """Return ``(degree, node_count)`` pairs, ascending by degree.

    This is exactly the data behind the paper's Fig 7 log-log plot.
    """
    view = graph.csr()
    if view.n == 0:
        return []
    degs = view.degrees()
    values, counts = np.unique(degs, return_counts=True)
    return [(int(d), int(c)) for d, c in zip(values, counts)]


def is_connected(graph: OverlayGraph) -> bool:
    """Whether all alive nodes form a single connected component."""
    view = graph.csr()
    if view.n <= 1:
        return True
    dist = view.bfs_distances(0)
    return bool((dist >= 0).all())


def largest_component_fraction(graph: OverlayGraph) -> float:
    """Fraction of alive nodes inside the largest connected component.

    The paper attributes the Aggregation algorithm's collapse past ≈30%
    departures to exactly this quantity dropping (§IV-D: "loss of
    connectivity of the overlay ... prevents the propagation").
    """
    view = graph.csr()
    if view.n == 0:
        return 0.0
    sizes = view.connected_component_sizes()
    return sizes[0] / view.n


def powerlaw_exponent(graph: OverlayGraph, d_min: int = 3) -> float:
    """Maximum-likelihood (Clauset-style, discrete approximation) power-law
    exponent of the degree distribution, restricted to degrees >= ``d_min``.

    Used to confirm that :func:`repro.overlay.builders.scale_free` produces
    the ``P(d) ~ d^-gamma`` shape of Fig 7 (BA theory predicts gamma ≈ 3).
    """
    view = graph.csr()
    degs = view.degrees()
    degs = degs[degs >= d_min]
    if degs.size < 2:
        raise ValueError("not enough high-degree nodes for a power-law fit")
    # Continuous MLE with the standard -1/2 discreteness correction.
    return 1.0 + degs.size / float(np.sum(np.log(degs / (d_min - 0.5))))


def connectivity_margin(graph: OverlayGraph) -> float:
    """The paper's §IV-A connectivity heuristic: mean degree over log10(N).

    Values comfortably above 1 indicate the random overlay stays connected
    with high probability (the Kaashoek–Karger O(log n) degree lemma the
    paper cites).  Returns ``inf`` for graphs with fewer than 2 nodes.
    """
    n = graph.size
    if n < 2:
        return float("inf")
    return graph.average_degree() / float(np.log10(n))
