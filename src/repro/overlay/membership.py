"""Membership dynamics: node joins and departures.

The churn engine (:mod:`repro.churn`) expresses *what* happens (arrival and
departure counts over time); this module implements *how* it happens on the
overlay:

* departures remove uniformly random alive nodes, severing their links with
  **no repair** (paper §IV-A);
* arrivals create fresh nodes wired to a random number of alive peers using
  the same degree policy as the heterogeneous builder, so a grown overlay is
  statistically indistinguishable from one built at that size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..sim.rng import RngLike, as_generator
from .graph import GraphError, OverlayGraph

__all__ = ["MembershipPolicy", "JoinReport"]


@dataclass(frozen=True)
class JoinReport:
    """Result of a batch join: ids added and links actually created."""

    node_ids: List[int]
    links_created: int


class MembershipPolicy:
    """Applies arrivals/departures to an :class:`OverlayGraph`.

    Parameters
    ----------
    graph:
        The overlay to mutate.
    max_degree, min_degree:
        Degree policy for joining nodes (defaults match the paper's
        heterogeneous overlays: 1..10).
    rng:
        Random source for victim selection and join wiring.
    """

    def __init__(
        self,
        graph: OverlayGraph,
        max_degree: int = 10,
        min_degree: int = 1,
        rng: RngLike = None,
    ) -> None:
        if not (0 < min_degree <= max_degree):
            raise GraphError(
                f"need 0 < min_degree <= max_degree, got {min_degree}, {max_degree}"
            )
        self.graph = graph
        self.max_degree = max_degree
        self.min_degree = min_degree
        self._rng = as_generator(rng, "membership")

    @property
    def rng(self) -> "np.random.Generator":
        """The live generator victim selection and join wiring draw from.

        Exposed so the churn scheduler's snapshot protocol can capture its
        state (``repro.sim.rng.generator_state``).
        """
        return self._rng

    # ------------------------------------------------------------------

    def join(self, count: int = 1) -> JoinReport:
        """Add ``count`` fresh nodes, each wired to random alive peers.

        A joining node draws a target degree uniformly in
        ``[min_degree, max_degree]`` and links to that many distinct random
        alive peers whose degree is below ``max_degree``.  When the overlay
        is tiny or saturated the node may end with fewer links (possibly
        zero on an empty overlay) — mirroring reality, where a joiner only
        knows the peers its bootstrap gave it.
        """
        if count < 0:
            raise GraphError("count must be non-negative")
        gen = self._rng
        created: List[int] = []
        links = 0
        # One candidate list for the whole batch (joiners are appended and
        # thus become candidates for later joiners, as in a real system
        # where a bootstrap server learns of new arrivals immediately).
        # Deliberately avoids graph.csr(): snapshot rebuilds per joiner
        # would make mass-join churn events O(n·count).
        candidates: List[int] = self.graph.nodes()
        for _ in range(count):
            u = self.graph.add_node()
            created.append(u)
            pool = len(candidates)
            if pool:
                want = int(gen.integers(self.min_degree, self.max_degree + 1))
                want = min(want, pool)
                attempts = 0
                budget = 20 * max(want, 1)
                got = 0
                while got < want and attempts < budget:
                    attempts += 1
                    v = candidates[int(gen.integers(pool))]
                    if self.graph.degree(v) >= self.max_degree:
                        continue
                    if self.graph.try_add_edge(u, v):
                        got += 1
                        links += 1
            candidates.append(u)
        return JoinReport(node_ids=created, links_created=links)

    def leave(self, count: int = 1) -> List[int]:
        """Remove ``count`` uniformly random alive nodes (fail-stop).

        Returns the removed node ids.  Raises when asked to remove more
        nodes than are alive.
        """
        if count < 0:
            raise GraphError("count must be non-negative")
        if count > self.graph.size:
            raise GraphError(
                f"cannot remove {count} nodes from an overlay of {self.graph.size}"
            )
        gen = self._rng
        alive = np.fromiter(self.graph, dtype=np.int64, count=self.graph.size)
        victims = gen.choice(alive, size=count, replace=False)
        removed: List[int] = []
        for v in victims:
            self.graph.remove_node(int(v))
            removed.append(int(v))
        return removed

    def remove_specific(self, nodes: Sequence[int]) -> None:
        """Remove the given nodes (e.g. a scripted catastrophic failure)."""
        for v in nodes:
            self.graph.remove_node(int(v))
