"""Dynamic peer-to-peer overlay graph.

The paper (§IV-A) runs all algorithms on *unstructured* overlays: undirected
graphs where each node knows a small random set of neighbours.  Overlays are
**dynamic** — nodes join and leave (churn), and when a node leaves, its
neighbours simply lose the link (the paper explicitly does *not* repair the
overlay: "the nodes that have lost one or several neighbors do not create new
links with other nodes").

Two representations are kept in sync:

* a mutable adjacency map (``dict[int, dict[int, None]]``) supporting O(1)
  joins, leaves and link edits — the source of truth;
* an immutable CSR snapshot (:class:`CsrView`) rebuilt lazily after
  mutations, used by every vectorized kernel (gossip spread, BFS, neighbour
  sampling).  Per the HPC guides, all hot loops operate on these flat,
  contiguous arrays rather than on Python dictionaries.

Node identifiers are opaque non-negative integers.  Identifiers of departed
nodes are never reused within one graph's lifetime, which lets churn traces
and estimator logs refer to nodes unambiguously.

Determinism contract (see ``docs/SNAPSHOTS.md``): node order and
per-node neighbour order are **insertion order**, a language-level dict
guarantee.  Every consumer of adjacency order (CSR row layout, hence
``CsrView.sample_neighbors``; ``random_neighbor``; join candidate lists)
therefore behaves as a pure function of the operation history — and a
graph rebuilt from :meth:`OverlayGraph.snapshot` is *behaviorally
identical* to the live one for all future operations, which is what makes
mid-replay state hand-off between worker processes bit-exact.  (Neighbour
sets would not give this: CPython set iteration order depends on internal
table history that no reconstruction can reproduce.)
"""

from __future__ import annotations

import itertools
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    KeysView,
    List,
    Mapping,
    Optional,
    Tuple,
)

import numpy as np

from ..sim.rng import RngLike, as_generator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .arraygraph import ArrayOverlayGraph

__all__ = ["OverlayGraph", "CsrView", "GraphError"]


class GraphError(ValueError):
    """Raised on structurally invalid graph operations."""


class CsrView:
    """Immutable flat-array snapshot of an :class:`OverlayGraph`.

    Attributes
    ----------
    nodes:
        Sorted array of alive node ids, shape ``(n,)``.
    indptr:
        CSR row pointer, shape ``(n + 1,)``; neighbours of the ``k``-th node
        in ``nodes`` are ``indices[indptr[k]:indptr[k+1]]``.
    indices:
        Flat neighbour array holding *positions into* ``nodes`` (not raw
        ids), so kernels can work purely in compact ``0..n-1`` space.
    index_of:
        Mapping from raw node id to its position in ``nodes``; built lazily
        on first access (churn-heavy simulations rebuild snapshots far more
        often than they look up raw ids).
    """

    __slots__ = ("nodes", "indptr", "indices", "_index_of")

    def __init__(
        self, nodes: np.ndarray, indptr: np.ndarray, indices: np.ndarray
    ) -> None:
        self.nodes = nodes
        self.indptr = indptr
        self.indices = indices
        self._index_of: Optional[Dict[int, int]] = None

    @property
    def index_of(self) -> Dict[int, int]:
        if self._index_of is None:
            self._index_of = {int(u): i for i, u in enumerate(self.nodes)}
        return self._index_of

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CsrView(n={self.n}, m={self.m})"

    @property
    def n(self) -> int:
        """Number of alive nodes in the snapshot."""
        return int(self.nodes.shape[0])

    @property
    def m(self) -> int:
        """Number of undirected edges in the snapshot."""
        return int(self.indices.shape[0]) // 2

    def degrees(self) -> np.ndarray:
        """Degree of each node, aligned with ``nodes``."""
        return np.diff(self.indptr)

    def neighbors(self, pos: int) -> np.ndarray:
        """Compact positions of the neighbours of the node at ``pos``."""
        return self.indices[self.indptr[pos] : self.indptr[pos + 1]]

    def sample_neighbors(self, positions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Vectorized choice of one uniform random neighbour per position.

        Positions with degree zero map to ``-1`` (no neighbour available);
        callers must handle that sentinel.  This is the inner step of both
        the push-pull aggregation round and gossip fan-out selection.
        """
        positions = np.asarray(positions, dtype=np.int64)
        starts = self.indptr[positions]
        degs = self.indptr[positions + 1] - starts
        out = np.full(positions.shape, -1, dtype=np.int64)
        nz = degs > 0
        if np.any(nz):
            offsets = (rng.random(int(nz.sum())) * degs[nz]).astype(np.int64)
            out[nz] = self.indices[starts[nz] + offsets]
        return out

    def bfs_distances(self, source_pos: int) -> np.ndarray:
        """Hop distance from ``source_pos`` to every node (``-1``: unreachable).

        Frontier-at-a-time BFS using vectorized neighbour expansion; used by
        graph diagnostics and the HopsSampling bias analysis (§V of the
        paper, where exact distances de-bias the poll).
        """
        n = self.n
        dist = np.full(n, -1, dtype=np.int64)
        if n == 0:
            return dist
        dist[source_pos] = 0
        frontier = np.array([source_pos], dtype=np.int64)
        d = 0
        while frontier.size:
            d += 1
            # Gather all neighbours of the frontier in one shot.
            counts = self.indptr[frontier + 1] - self.indptr[frontier]
            total = int(counts.sum())
            if total == 0:
                break
            flat = np.empty(total, dtype=np.int64)
            pos = 0
            for f, c in zip(frontier, counts):
                flat[pos : pos + c] = self.indices[self.indptr[f] : self.indptr[f] + c]
                pos += c
            fresh = flat[dist[flat] < 0]
            if fresh.size == 0:
                break
            fresh = np.unique(fresh)
            dist[fresh] = d
            frontier = fresh
        return dist

    def connected_component_sizes(self) -> List[int]:
        """Sizes of connected components, descending."""
        n = self.n
        seen = np.zeros(n, dtype=bool)
        sizes: List[int] = []
        for start in range(n):
            if seen[start]:
                continue
            seen[start] = True
            count = 1
            stack = [start]
            while stack:
                u = stack.pop()
                for v in self.neighbors(u):
                    v = int(v)
                    if not seen[v]:
                        seen[v] = True
                        count += 1
                        stack.append(v)
            sizes.append(count)
        sizes.sort(reverse=True)
        return sizes


class OverlayGraph:
    """Mutable undirected overlay with lazily rebuilt CSR snapshots.

    All links are bidirectional (paper §IV-A: "whenever a node contacts
    another one, the reached node also ... keeps a link back").  Self-loops
    and parallel edges are rejected.

    Parameters
    ----------
    nodes:
        Optional initial node ids.
    edges:
        Optional initial undirected edges as ``(u, v)`` pairs.
    """

    def __init__(
        self,
        nodes: Optional[Iterable[int]] = None,
        edges: Optional[Iterable[Tuple[int, int]]] = None,
    ) -> None:
        # Neighbour containers are insertion-ordered dicts (value always
        # None), NOT sets: iteration order must be a restorable part of the
        # graph's deterministic contract (module docstring).
        self._adj: Dict[int, Dict[int, None]] = {}
        self._next_id = 0
        self._csr: Optional[CsrView] = None
        self._array: Optional["ArrayOverlayGraph"] = None
        self._edge_count = 0
        # Incremental-twin bookkeeping: once a twin has been built
        # (``_array_base``), mutations record which rows they touched so
        # ``to_array`` can patch the base instead of re-encoding the whole
        # adjacency.  All three stay empty until the first ``to_array``
        # call, so graphs that never use the array backend pay nothing.
        self._array_base: Optional["ArrayOverlayGraph"] = None
        self._array_dirty: set = set()
        self._array_removed: set = set()
        self._array_appended: List[int] = []
        if nodes is not None:
            for u in nodes:
                self.add_node(u)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of alive nodes — the quantity every estimator targets."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._edge_count

    @property
    def next_id(self) -> int:
        """The id the next auto-assigned node will receive.

        Part of the behavioural state (see :meth:`snapshot`): two graphs
        with equal adjacency but different ``next_id`` diverge on the next
        ``add_node()``.
        """
        return self._next_id

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, node: int) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[int]:
        return iter(self._adj)

    def nodes(self) -> List[int]:
        """List of alive node ids (unspecified order)."""
        return list(self._adj)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate undirected edges once each, as ``(min, max)`` pairs."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def neighbors(self, node: int) -> KeysView[int]:
        """The (live) neighbours of ``node``, in insertion order.

        The returned view supports the full set API (membership, length,
        iteration, comparisons) — do not mutate the underlying container.
        """
        try:
            return self._adj[node].keys()
        except KeyError:
            raise GraphError(f"node {node} is not in the overlay") from None

    def degree(self, node: int) -> int:
        """Number of neighbours of ``node``."""
        return len(self.neighbors(node))

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        return u in self._adj and v in self._adj[u]

    def average_degree(self) -> float:
        """Mean degree over alive nodes (0.0 for the empty graph)."""
        if not self._adj:
            return 0.0
        return 2.0 * self._edge_count / len(self._adj)

    def degrees(self) -> np.ndarray:
        """Bulk degree array in node *insertion* order.

        One C-level pass over the adjacency — consumers that previously
        looped ``[g.degree(u) for u in g.nodes()]`` re-walked the dict per
        node.  Note :meth:`CsrView.degrees` returns the same values in
        *sorted*-id order; this accessor is aligned with :meth:`nodes` and
        with :class:`~repro.overlay.arraygraph.ArrayOverlayGraph` rows.
        """
        return np.fromiter(
            (len(nbrs) for nbrs in self._adj.values()),
            dtype=np.int64,
            count=len(self._adj),
        )

    def neighbour_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Bulk flat adjacency: ``(nodes, indptr, flat_neighbour_ids)``.

        All three arrays are in insertion order — ``nodes`` lists alive
        ids, and the neighbours of ``nodes[k]`` are
        ``flat[indptr[k]:indptr[k+1]]`` as raw ids in per-node insertion
        order.  This is the single-pass feed for
        :meth:`to_array` and for any bulk consumer that would otherwise
        issue one dict lookup per node.
        """
        n = len(self._adj)
        nodes = np.fromiter(self._adj.keys(), dtype=np.int64, count=n)
        degs = self.degrees()
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degs, out=indptr[1:])
        flat = np.fromiter(
            itertools.chain.from_iterable(self._adj.values()),
            dtype=np.int64,
            count=int(indptr[-1]),
        )
        return nodes, indptr, flat

    def random_node(self, rng: RngLike = None) -> int:
        """A uniformly random alive node (uses the CSR snapshot)."""
        view = self.csr()
        if view.n == 0:
            raise GraphError("cannot sample from an empty overlay")
        gen = as_generator(rng)
        return int(view.nodes[gen.integers(view.n)])

    def random_neighbor(self, node: int, rng: RngLike = None) -> Optional[int]:
        """A uniformly random neighbour of ``node`` or ``None`` if isolated."""
        nbrs = self.neighbors(node)
        if not nbrs:
            return None
        gen = as_generator(rng)
        # tuple() copy is O(deg) but deg is small (≤ max_degree ≈ 10) in the
        # paper's overlays; kernels that need bulk sampling use CsrView.
        options = tuple(nbrs)
        return options[int(gen.integers(len(options)))]

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------

    def add_node(self, node: Optional[int] = None) -> int:
        """Add an isolated node; auto-assigns the id when ``node`` is None.

        Returns the id of the added node.
        """
        if node is None:
            node = self._next_id
        node = int(node)
        if node < 0:
            raise GraphError("node ids must be non-negative")
        if node in self._adj:
            raise GraphError(f"node {node} already present")
        self._adj[node] = {}
        self._next_id = max(self._next_id, node + 1)
        if self._array_base is not None:
            self._array_appended.append(node)
        self._invalidate()
        return node

    def add_nodes(self, count: int) -> List[int]:
        """Add ``count`` fresh isolated nodes, returning their ids."""
        if count < 0:
            raise GraphError("count must be non-negative")
        return [self.add_node() for _ in range(count)]

    def remove_node(self, node: int) -> None:
        """Remove ``node`` and sever all of its links (no repair).

        This models an abrupt departure/failure: per the paper, remaining
        neighbours do *not* rewire.
        """
        nbrs = self._adj.pop(node, None)
        if nbrs is None:
            raise GraphError(f"node {node} is not in the overlay")
        for v in nbrs:
            self._adj[v].pop(node, None)
        self._edge_count -= len(nbrs)
        if self._array_base is not None:
            self._array_removed.add(node)
            self._array_dirty.update(nbrs)
        self._invalidate()

    def add_edge(self, u: int, v: int) -> None:
        """Create the undirected edge ``{u, v}``."""
        if u == v:
            raise GraphError("self-loops are not allowed in the overlay")
        if u not in self._adj or v not in self._adj:
            raise GraphError(f"both endpoints must exist (got {u}, {v})")
        if v in self._adj[u]:
            raise GraphError(f"edge ({u}, {v}) already present")
        self._adj[u][v] = None
        self._adj[v][u] = None
        self._edge_count += 1
        if self._array_base is not None:
            self._array_dirty.add(u)
            self._array_dirty.add(v)
        self._invalidate()

    def try_add_edge(self, u: int, v: int) -> bool:
        """Like :meth:`add_edge` but returns False instead of raising on
        duplicates/self-loops. Used by randomized builders."""
        if u == v or u not in self._adj or v not in self._adj or v in self._adj[u]:
            return False
        self._adj[u][v] = None
        self._adj[v][u] = None
        self._edge_count += 1
        if self._array_base is not None:
            self._array_dirty.add(u)
            self._array_dirty.add(v)
        self._invalidate()
        return True

    def remove_edge(self, u: int, v: int) -> None:
        """Delete the undirected edge ``{u, v}``."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u}, {v}) is not in the overlay")
        self._adj[u].pop(v, None)
        self._adj[v].pop(u, None)
        self._edge_count -= 1
        if self._array_base is not None:
            self._array_dirty.add(u)
            self._array_dirty.add(v)
        self._invalidate()

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def _invalidate(self) -> None:
        """Drop cached flat-array views after a mutation."""
        self._csr = None
        self._array = None

    def csr(self) -> CsrView:
        """Return the current CSR snapshot, rebuilding it if stale.

        Rebuild cost is O(n + m); mutations merely invalidate the cache so
        bursts of churn pay for a single rebuild at the next kernel call.
        """
        if self._csr is None:
            self._csr = self._build_csr()
        return self._csr

    def to_array(self) -> "ArrayOverlayGraph":
        """The insertion-ordered CSR twin of this graph (cached).

        Unlike :meth:`csr` (sorted node ids), the
        :class:`~repro.overlay.arraygraph.ArrayOverlayGraph` preserves node
        and per-node neighbour *insertion* order, so
        :meth:`from_array` round-trips to a behaviorally identical dict
        graph and ``to_array().snapshot() == snapshot()`` exactly.  Like
        the CSR view, the twin is immutable and rebuilt lazily after
        mutations.

        Rebuilds are *incremental* when possible: once a twin exists,
        mutations record which rows they touched, and as long as fewer
        than half of the base twin's rows changed the stale twin is
        patched (only touched rows re-read the dict; everything else is
        vectorized splicing) instead of re-encoding the whole adjacency.
        Under churn this turns the per-step conversion from O(n + m)
        Python iteration into O(changed) — the difference between the
        array backend amortizing or losing its kernel win (see
        ``docs/KERNELS.md`` and BENCH_KERNELS.json).
        """
        if self._array is None:
            from .arraygraph import ArrayOverlayGraph

            base = self._array_base
            changed = (
                len(self._array_dirty)
                + len(self._array_removed)
                + len(self._array_appended)
            )
            if base is not None and base.n and changed <= max(16, base.n // 2):
                self._array = ArrayOverlayGraph.from_overlay_incremental(
                    self,
                    base,
                    self._array_dirty,
                    self._array_removed,
                    self._array_appended,
                )
            else:
                self._array = ArrayOverlayGraph.from_overlay(self)
            self._array_base = self._array
            self._array_dirty = set()
            self._array_removed = set()
            self._array_appended = []
        return self._array

    @classmethod
    def from_array(cls, array: "ArrayOverlayGraph") -> "OverlayGraph":
        """Rebuild a dict graph from its array twin (inverse of :meth:`to_array`)."""
        return array.to_overlay()

    def _build_csr(self) -> CsrView:
        n = len(self._adj)
        ids = np.fromiter(self._adj.keys(), dtype=np.int64, count=n)
        ids.sort()
        id_list = ids.tolist()
        adj = self._adj
        degs = np.fromiter((len(adj[u]) for u in id_list), dtype=np.int64, count=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degs, out=indptr[1:])
        total = int(indptr[-1])
        # Single C-level pass over the adjacency, then one vectorized
        # id→position translation (ids are sorted, so searchsorted is it).
        flat = np.fromiter(
            itertools.chain.from_iterable(map(adj.__getitem__, id_list)),
            dtype=np.int64,
            count=total,
        )
        indices = np.searchsorted(ids, flat)
        return CsrView(nodes=ids, indptr=indptr, indices=indices)

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert structural invariants; used heavily by the test-suite.

        Raises :class:`GraphError` when symmetry or edge accounting breaks.
        """
        half_edges = 0
        for u, nbrs in self._adj.items():
            half_edges += len(nbrs)
            if u in nbrs:
                raise GraphError(f"self-loop at {u}")
            for v in nbrs:
                if v not in self._adj:
                    raise GraphError(f"dangling link {u}->{v}")
                if u not in self._adj[v]:
                    raise GraphError(f"asymmetric link {u}->{v}")
        if half_edges != 2 * self._edge_count:
            raise GraphError(
                f"edge count drift: counted {half_edges // 2}, cached {self._edge_count}"
            )

    def copy(self) -> "OverlayGraph":
        """Deep copy (snapshot caches are not shared).

        The copy preserves node and neighbour iteration order, so it is
        behaviorally identical to the original for all future operations.
        """
        g = OverlayGraph()
        g._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        g._next_id = self._next_id
        g._edge_count = self._edge_count
        return g

    # ------------------------------------------------------------------
    # state hand-off (docs/SNAPSHOTS.md)
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Pure-data state capture: JSON-able, picklable, content-hashable.

        Returns ``{"nodes": [...], "adj": [[...], ...], "next_id": n}``
        where both node and per-node neighbour lists are in live iteration
        (= insertion) order.  :meth:`restore` rebuilds a graph that is
        *behaviorally identical* to this one — every future mutation,
        CSR build and neighbour sample proceeds exactly as it would have
        on the original — which is the invariant the chunk hand-off
        protocol (``repro.runtime.snapshots``) relies on.
        """
        return {
            "nodes": list(self._adj),
            "adj": [list(nbrs) for nbrs in self._adj.values()],
            "next_id": self._next_id,
        }

    @classmethod
    def restore(cls, snap: Mapping[str, Any]) -> "OverlayGraph":
        """Rebuild a graph from a :meth:`snapshot` payload.

        Inverse of :meth:`snapshot`; validates nothing beyond basic shape
        (payloads come from our own snapshot chain or the content-addressed
        store, both of which hash the producing configuration).
        """
        g = cls()
        # Ids are born plain ints in snapshot(), and both transports
        # (pickle, JSON) preserve that — no per-element coercion needed.
        adj: Dict[int, Dict[int, None]] = {
            u: dict.fromkeys(nbrs)
            for u, nbrs in zip(snap["nodes"], snap["adj"])
        }
        g._adj = adj
        g._edge_count = sum(len(nbrs) for nbrs in adj.values()) // 2
        g._next_id = int(snap["next_id"])
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OverlayGraph(n={self.size}, m={self.num_edges})"
