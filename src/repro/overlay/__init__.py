"""Overlay-graph substrate: dynamic graphs, builders, analyses, membership."""

from .builders import (
    erdos_renyi,
    heterogeneous_random,
    homogeneous_random,
    ring_lattice,
    scale_free,
)
from .arraygraph import ArrayOverlayGraph
from .graph import CsrView, GraphError, OverlayGraph
from .membership import JoinReport, MembershipPolicy
from .repair import DegreeRepair, FullRepair, NoRepair, RepairPolicy
from .views import (
    DegreeStats,
    connectivity_margin,
    degree_histogram,
    degree_stats,
    is_connected,
    largest_component_fraction,
    powerlaw_exponent,
)

__all__ = [
    "ArrayOverlayGraph",
    "CsrView",
    "DegreeStats",
    "GraphError",
    "JoinReport",
    "DegreeRepair",
    "FullRepair",
    "MembershipPolicy",
    "NoRepair",
    "RepairPolicy",
    "OverlayGraph",
    "connectivity_margin",
    "degree_histogram",
    "degree_stats",
    "erdos_renyi",
    "heterogeneous_random",
    "homogeneous_random",
    "is_connected",
    "largest_component_fraction",
    "powerlaw_exponent",
    "ring_lattice",
    "scale_free",
]
