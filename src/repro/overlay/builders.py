"""Overlay graph constructors used in the paper's evaluation (§IV-A).

Three families are provided:

* :func:`heterogeneous_random` — the paper's main test topology.  All nodes
  exist up-front; nodes are wired one by one; each picks a target number of
  neighbours uniformly at random in ``[min_degree, max_degree]`` and fills
  its view with uniformly random peers whose degree is still below
  ``max_degree``.  With ``max_degree=10`` this yields an average degree of
  ≈7.2, matching the paper ("We used 10 neighbors max ... which leads in
  both overlay sizes to an average of approximatively 7.2").
* :func:`homogeneous_random` — every node ends with (close to) the same
  degree ``k``; the paper reports running control experiments on such graphs
  ("This parameter consistently improved all algorithms").
* :func:`scale_free` — Barabási–Albert growth with preferential attachment
  (paper Fig 7: ``min degree 3``, average ≈6, max ≈1177 at n=100,000).

:func:`erdos_renyi` is an extra builder used by the test-suite to stress
algorithms on a topology family with well-understood theory.

All builders take an explicit RNG (seed, generator or :class:`RngHub`) and
are deterministic given it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sim.rng import RngLike, as_generator
from .graph import GraphError, OverlayGraph

__all__ = [
    "heterogeneous_random",
    "homogeneous_random",
    "scale_free",
    "erdos_renyi",
    "ring_lattice",
]


def _require_positive_n(n: int) -> None:
    if n <= 0:
        raise GraphError(f"graph size must be positive, got {n}")


def heterogeneous_random(
    n: int,
    max_degree: int = 10,
    min_degree: int = 1,
    rng: RngLike = None,
    max_attempts_factor: int = 20,
) -> OverlayGraph:
    """Build the paper's heterogeneous random overlay.

    Parameters
    ----------
    n:
        Number of nodes (all present before wiring starts).
    max_degree:
        Hard cap on any node's degree (paper value: 10).
    min_degree:
        Lower bound of the per-node target-degree draw (paper value: 1).
    rng:
        Seed / generator / hub controlling the construction.
    max_attempts_factor:
        Rejection-sampling patience per requested link; prevents livelock on
        saturated graphs.

    Notes
    -----
    The procedure follows §IV-A verbatim: nodes are "taken one by one to be
    wired: the current node first chooses uniformly at random its current
    number of neighbors, and fills its view with again uniformly at random
    selected nodes as neighbors, that do not already have the max fixed
    value (otherwise other random nodes are chosen)".  Because wiring is
    sequential and links are bidirectional, earlier nodes accumulate inbound
    links, producing heterogeneous final degrees in ``[min_degree‥max_degree]``.
    """
    _require_positive_n(n)
    if not (0 < min_degree <= max_degree):
        raise GraphError(
            f"need 0 < min_degree <= max_degree, got {min_degree}, {max_degree}"
        )
    if n > 1 and max_degree >= n:
        max_degree = n - 1
        min_degree = min(min_degree, max_degree)
    gen = as_generator(rng, "overlay.heterogeneous")
    g = OverlayGraph()
    g.add_nodes(n)
    if n == 1:
        return g

    targets = gen.integers(min_degree, max_degree + 1, size=n)
    degrees = np.zeros(n, dtype=np.int64)
    adj = g  # alias; we go through graph API to keep invariants authoritative

    for u in range(n):
        want = int(targets[u])
        attempts = 0
        budget = max_attempts_factor * max(want, 1)
        while degrees[u] < want and attempts < budget:
            attempts += 1
            v = int(gen.integers(n))
            if v == u or degrees[v] >= max_degree or adj.has_edge(u, v):
                continue
            adj.add_edge(u, v)
            degrees[u] += 1
            degrees[v] += 1
    return g


def homogeneous_random(
    n: int,
    k: int = 8,
    rng: RngLike = None,
    max_attempts_factor: int = 50,
) -> OverlayGraph:
    """Build a near-``k``-regular random overlay.

    Random pairs among nodes whose degree is still below ``k`` are linked
    until no progress can be made.  For even ``n·k`` almost every node ends
    with degree exactly ``k``; a handful may fall short when the residual
    candidates are already mutually adjacent (documented, and irrelevant at
    the paper's scales).
    """
    _require_positive_n(n)
    if k < 1:
        raise GraphError(f"k must be >= 1, got {k}")
    if k >= n:
        k = n - 1
    gen = as_generator(rng, "overlay.homogeneous")
    g = OverlayGraph()
    g.add_nodes(n)
    if n == 1 or k == 0:
        return g

    degrees = np.zeros(n, dtype=np.int64)
    open_nodes = list(range(n))
    attempts = 0
    budget = max_attempts_factor * n * k
    while len(open_nodes) > 1 and attempts < budget:
        attempts += 1
        i = int(gen.integers(len(open_nodes)))
        j = int(gen.integers(len(open_nodes)))
        if i == j:
            continue
        u, v = open_nodes[i], open_nodes[j]
        if g.has_edge(u, v):
            continue
        g.add_edge(u, v)
        degrees[u] += 1
        degrees[v] += 1
        # compact the open list lazily; remove saturated entries
        if degrees[u] >= k or degrees[v] >= k:
            open_nodes = [w for w in open_nodes if degrees[w] < k]
    return g


def scale_free(
    n: int,
    m: int = 3,
    rng: RngLike = None,
    seed_clique: Optional[int] = None,
) -> OverlayGraph:
    """Barabási–Albert scale-free overlay (growth + preferential attachment).

    Each arriving node attaches to ``m`` distinct existing nodes chosen with
    probability proportional to their current degree, reproducing the paper's
    Fig 7 setup (``m=3`` → power-law degree distribution, average degree ≈2m,
    hubs with degree in the hundreds at n=100,000).

    The attachment step uses the classic "repeated-endpoints" array trick:
    sampling a uniform element of the flat edge-endpoint list is exactly
    degree-proportional sampling, and appending both endpoints of each new
    edge keeps the list current in O(1).
    """
    _require_positive_n(n)
    if m < 1:
        raise GraphError(f"m must be >= 1, got {m}")
    gen = as_generator(rng, "overlay.scale_free")
    g = OverlayGraph()
    core = seed_clique if seed_clique is not None else m + 1
    core = min(core, n)
    g.add_nodes(core)
    repeated: list[int] = []
    for u in range(core):
        for v in range(u + 1, core):
            g.add_edge(u, v)
            repeated.append(u)
            repeated.append(v)
    if core < 2 and n > 1:
        # degenerate seed; fall back to a chain start
        g.add_node()
        g.add_edge(0, 1)
        repeated.extend((0, 1))
        core = 2

    for _ in range(core, n):
        u = g.add_node()
        chosen: set[int] = set()
        want = min(m, u)  # cannot attach to more nodes than exist
        guard = 0
        while len(chosen) < want and guard < 100 * want:
            guard += 1
            if repeated:
                v = repeated[int(gen.integers(len(repeated)))]
            else:  # pragma: no cover - only for pathological tiny graphs
                v = int(gen.integers(u))
            if v != u and v not in chosen:
                chosen.add(v)
        for v in chosen:
            g.add_edge(u, v)
            repeated.append(u)
            repeated.append(v)
    return g


def erdos_renyi(n: int, avg_degree: float = 8.0, rng: RngLike = None) -> OverlayGraph:
    """G(n, M) random overlay with ``M = round(n * avg_degree / 2)`` edges.

    Not used by the paper itself; provided for the test-suite and for users
    who want a textbook-random control topology.
    """
    _require_positive_n(n)
    if avg_degree < 0:
        raise GraphError("avg_degree must be non-negative")
    gen = as_generator(rng, "overlay.er")
    g = OverlayGraph()
    g.add_nodes(n)
    if n == 1:
        return g
    target_edges = int(round(n * avg_degree / 2.0))
    max_possible = n * (n - 1) // 2
    target_edges = min(target_edges, max_possible)
    added = 0
    guard = 0
    while added < target_edges and guard < 50 * target_edges + 100:
        guard += 1
        u = int(gen.integers(n))
        v = int(gen.integers(n))
        if g.try_add_edge(u, v):
            added += 1
    return g


def ring_lattice(n: int, k: int = 2) -> OverlayGraph:
    """Deterministic ring where each node links to its ``k`` nearest
    successors.  A worst-case-diameter topology used by tests to check the
    estimators' sensitivity to poor expansion (large mixing time for the
    Sample&Collide walk, slow spread for gossip)."""
    _require_positive_n(n)
    if k < 1:
        raise GraphError("k must be >= 1")
    g = OverlayGraph()
    g.add_nodes(n)
    if n == 1:
        return g
    for u in range(n):
        for delta in range(1, k + 1):
            v = (u + delta) % n
            if u != v:
                g.try_add_edge(u, v)
    return g
