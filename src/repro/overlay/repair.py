"""Overlay repair policies — relaxing the paper's worst-case assumption.

The paper deliberately evaluates the *worst case*: "the nodes that have
lost one or several neighbors do not create new links with other nodes"
(§IV-A), and attributes Aggregation's Fig 17 breakdown to the resulting
loss of connectivity.  Real deployments run a membership protocol
(Cyclon, the peer sampling service — both cited by the paper) that repairs
the overlay continuously.

This module provides repair policies that plug into a
:class:`~repro.sim.rounds.RoundDriver` so the breakdown can be studied as
a function of maintenance effort (see
``benchmarks/test_ablation_repair.py``):

* :class:`NoRepair` — the paper's baseline (explicit no-op, for symmetry);
* :class:`DegreeRepair` — each round, every node whose degree fell below a
  floor opens links to random alive peers (bounded effort per round); this
  is the minimal abstraction of what Cyclon's view shuffling achieves;
* :class:`FullRepair` — immediately restores every node to its target
  degree after each churn event (an upper bound, not a realistic
  protocol).

All repairs are metered (``MessageKind.CONTROL``, one message per link
formed) so the maintenance traffic can be charged against the estimation
overhead it saves.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..sim.messages import MessageKind, MessageMeter
from ..sim.rng import RngLike, as_generator, generator_from_state, generator_state
from ..sim.rounds import PRIORITY_CHURN, RoundDriver
from .graph import OverlayGraph

__all__ = [
    "REPAIR_POLICIES",
    "RepairPolicy",
    "RepairPolicySpec",
    "NoRepair",
    "DegreeRepair",
    "FullRepair",
]

#: Repair runs after churn (which is PRIORITY_CHURN) but before protocols.
PRIORITY_REPAIR = PRIORITY_CHURN + 5


class RepairPolicy(abc.ABC):
    """Base class: a per-round overlay maintenance step."""

    def __init__(
        self,
        graph: OverlayGraph,
        rng: RngLike = None,
        meter: Optional[MessageMeter] = None,
    ) -> None:
        self.graph = graph
        self.rng = as_generator(rng, "repair")
        self.meter = meter if meter is not None else MessageMeter()
        self.links_formed = 0

    @abc.abstractmethod
    def repair_round(self, round_number: int) -> int:
        """Perform one maintenance step; returns links formed."""

    def attach(self, driver: RoundDriver) -> None:
        """Subscribe to the driver (after churn, before protocols)."""
        driver.subscribe(
            lambda rnd: self.repair_round(rnd),
            priority=PRIORITY_REPAIR,
            label=type(self).__name__,
        )

    # ------------------------------------------------------------------
    # state hand-off (docs/SNAPSHOTS.md)
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Pure-data capture of the policy's mutable state.

        Policies are configuration + a generator + a counter; the
        configuration travels as a :class:`RepairPolicySpec` in the trial
        spec, so only the generator state and ``links_formed`` are
        captured here.  Restore by rebuilding from the spec with
        ``rng=generator_from_state(...)`` and applying
        :meth:`apply_snapshot`.
        """
        return {
            "rng": generator_state(self.rng),
            "links_formed": int(self.links_formed),
        }

    def apply_snapshot(self, snap: Mapping[str, Any]) -> None:
        """Adopt the mutable state captured by :meth:`snapshot`.

        The generator is replaced (not advanced), so future repair rounds
        draw bit-identically to the captured policy's.
        """
        self.rng = generator_from_state(snap["rng"])
        self.links_formed = int(snap["links_formed"])

    # ------------------------------------------------------------------

    def _link_to_random_peers(self, node: int, want: int, candidates: List[int]) -> int:
        """Open up to ``want`` links from ``node`` to random candidates."""
        formed = 0
        attempts = 0
        pool = len(candidates)
        budget = 20 * max(want, 1)
        while formed < want and attempts < budget and pool > 1:
            attempts += 1
            v = candidates[int(self.rng.integers(pool))]
            if v == node or v not in self.graph:
                continue
            if self.graph.try_add_edge(node, v):
                formed += 1
        if formed:
            self.meter.add(MessageKind.CONTROL, formed)
            self.links_formed += formed
        return formed


class NoRepair(RepairPolicy):
    """The paper's baseline: never repair (explicit no-op)."""

    def repair_round(self, round_number: int) -> int:
        """Do nothing; returns 0."""
        return 0


class DegreeRepair(RepairPolicy):
    """Bounded-effort repair: under-connected nodes re-link each round.

    Parameters
    ----------
    min_degree:
        Nodes below this degree attempt repair.
    target_degree:
        Repair tops nodes up to this degree (at most).
    max_links_per_round:
        Global per-round budget — the knob that makes repair effort
        measurable against the Fig 17 breakdown.
    """

    def __init__(
        self,
        graph: OverlayGraph,
        min_degree: int = 3,
        target_degree: int = 5,
        max_links_per_round: int = 200,
        rng: RngLike = None,
        meter: Optional[MessageMeter] = None,
    ) -> None:
        super().__init__(graph, rng=rng, meter=meter)
        if not (0 < min_degree <= target_degree):
            raise ValueError("need 0 < min_degree <= target_degree")
        if max_links_per_round < 1:
            raise ValueError("max_links_per_round must be >= 1")
        self.min_degree = int(min_degree)
        self.target_degree = int(target_degree)
        self.max_links_per_round = int(max_links_per_round)

    def repair_round(self, round_number: int) -> int:
        """Re-link under-connected nodes within the round budget."""
        g = self.graph
        if g.size < 2:
            return 0
        candidates = g.nodes()
        needy = [u for u in candidates if g.degree(u) < self.min_degree]
        if not needy:
            return 0
        # Randomize service order so the budget isn't biased by node id.
        order = self.rng.permutation(len(needy))
        formed = 0
        for i in order:
            if formed >= self.max_links_per_round:
                break
            u = needy[int(i)]
            want = min(
                self.target_degree - g.degree(u),
                self.max_links_per_round - formed,
            )
            if want > 0:
                formed += self._link_to_random_peers(u, want, candidates)
        return formed


class FullRepair(RepairPolicy):
    """Idealized repair: every node restored to ``target_degree`` each round.

    An upper bound on what maintenance can achieve; useful to separate
    "breakdown is caused by connectivity loss" (it vanishes here) from
    other explanations.
    """

    def __init__(
        self,
        graph: OverlayGraph,
        target_degree: int = 7,
        rng: RngLike = None,
        meter: Optional[MessageMeter] = None,
    ) -> None:
        super().__init__(graph, rng=rng, meter=meter)
        if target_degree < 1:
            raise ValueError("target_degree must be >= 1")
        self.target_degree = int(target_degree)

    def repair_round(self, round_number: int) -> int:
        """Top every node up to the target degree."""
        g = self.graph
        if g.size < 2:
            return 0
        candidates = g.nodes()
        formed = 0
        for u in candidates:
            deficit = self.target_degree - g.degree(u)
            if deficit > 0:
                formed += self._link_to_random_peers(u, deficit, candidates)
        return formed


#: policy name -> class.  The declarative vocabulary of
#: :class:`RepairPolicySpec`; register new policies here to make them
#: addressable from trial specs.
REPAIR_POLICIES: Dict[str, type] = {
    "none": NoRepair,
    "degree": DegreeRepair,
    "full": FullRepair,
}


@dataclass(frozen=True)
class RepairPolicySpec:
    """Declarative, picklable description of a repair-policy build.

    A live :class:`RepairPolicy` is bound to a graph, a generator and a
    meter — none of which travel to worker processes.  The spec carries
    only the policy *kind* (a key of :data:`REPAIR_POLICIES`) and its
    constructor parameters; workers rebuild the policy against their local
    graph (the repair ablation's route into ``repro.runtime``).
    """

    kind: str = "none"
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in REPAIR_POLICIES:
            raise ValueError(
                f"unknown repair policy {self.kind!r}; "
                f"have {sorted(REPAIR_POLICIES)}"
            )

    def build(
        self,
        graph: OverlayGraph,
        rng: RngLike = None,
        meter: Optional[MessageMeter] = None,
    ) -> RepairPolicy:
        """Instantiate the policy on the worker-local ``graph``."""
        return REPAIR_POLICIES[self.kind](graph, rng=rng, meter=meter, **self.params)

    def as_config(self) -> Dict[str, Any]:
        """Plain-dict form for content addressing."""
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "RepairPolicySpec":
        """Rebuild a spec from its :meth:`as_config` form (worker side)."""
        return cls(
            kind=str(config.get("kind", "none")),
            params=dict(config.get("params") or {}),
        )

    @classmethod
    def none(cls) -> "RepairPolicySpec":
        """The paper's baseline: never repair."""
        return cls("none", {})

    @classmethod
    def degree(
        cls,
        min_degree: int = 3,
        target_degree: int = 5,
        max_links_per_round: int = 200,
    ) -> "RepairPolicySpec":
        """Bounded-effort repair (the realistic maintenance abstraction)."""
        return cls(
            "degree",
            {
                "min_degree": int(min_degree),
                "target_degree": int(target_degree),
                "max_links_per_round": int(max_links_per_round),
            },
        )

    @classmethod
    def full(cls, target_degree: int = 7) -> "RepairPolicySpec":
        """Idealized repair: every node restored each round (upper bound)."""
        return cls("full", {"target_degree": int(target_degree)})
