"""Insertion-ordered CSR twin of :class:`~repro.overlay.graph.OverlayGraph`.

:class:`ArrayOverlayGraph` is the flat-array representation the batched
estimator kernels (:mod:`repro.core.kernels`) run on: node ids, a CSR row
pointer and a flat neighbour array, all held as contiguous ``int64`` numpy
arrays so a walker batch advances with gathers instead of dict lookups.

It differs from :class:`~repro.overlay.graph.CsrView` in one load-bearing
way: **rows and row contents keep the dict graph's insertion order** (the
PR-5 determinism contract, ``docs/SNAPSHOTS.md``) instead of sorting node
ids.  That makes the twin a lossless re-encoding of the dict graph's
behavioural state — :meth:`to_overlay` reconstructs a graph whose node
iteration order, neighbour iteration order and ``next_id`` are identical,
and :meth:`snapshot` produces byte-for-byte the same payload as
:meth:`OverlayGraph.snapshot`.  The equivalence suite
(``tests/overlay/test_arraygraph_equivalence.py``) holds both properties
under churn/repair round-trips.

The twin is immutable: it captures one graph state.  Mutations happen on
the dict graph (the source of truth), which lazily rebuilds its cached
twin via :meth:`OverlayGraph.to_array` — incrementally
(:meth:`ArrayOverlayGraph.from_overlay_incremental`) when the mutation
log since the previous twin touched only a fraction of the rows, as churn
does.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from .graph import GraphError, OverlayGraph

__all__ = ["ArrayOverlayGraph"]


def _member_mask(ids: Iterable[int], size: int) -> np.ndarray:
    """Boolean membership table over ``0..size-1`` (ids beyond it ignored)."""
    mask = np.zeros(max(size, 1), dtype=bool)
    ids = list(ids)
    if ids:
        arr = np.fromiter(ids, dtype=np.int64, count=len(ids))
        arr = arr[arr < size]
        if arr.size:
            mask[arr] = True
    return mask


class ArrayOverlayGraph:
    """Immutable insertion-ordered CSR snapshot of an overlay.

    Attributes
    ----------
    nodes:
        Alive node ids in dict-graph insertion order, shape ``(n,)``.
    indptr:
        CSR row pointer, shape ``(n + 1,)``.
    indices:
        Flat neighbour array holding *positions into* ``nodes`` (compact
        ``0..n-1`` space); the neighbours of row ``k`` are
        ``indices[indptr[k]:indptr[k+1]]`` in per-node insertion order.
    next_id:
        The dict graph's id counter, carried so round-trips preserve the
        full behavioural state.
    """

    __slots__ = ("nodes", "indptr", "indices", "next_id", "_position_of", "_inv_deg")

    def __init__(
        self,
        nodes: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        next_id: int,
    ) -> None:
        self.nodes = nodes
        self.indptr = indptr
        self.indices = indices
        self.next_id = int(next_id)
        self._position_of: Optional[Dict[int, int]] = None
        self._inv_deg: Optional[np.ndarray] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayOverlayGraph(n={self.n}, m={self.m})"

    # ------------------------------------------------------------------
    # construction / round-trip
    # ------------------------------------------------------------------

    @classmethod
    def from_overlay(cls, graph: OverlayGraph) -> "ArrayOverlayGraph":
        """Encode ``graph`` into its array twin (one bulk adjacency pass).

        Raw neighbour ids translate to compact positions via a dense
        id → position lookup table when ids are counter-dense (the normal
        case: ids come from the graph's ``next_id`` counter, so
        ``max_id < next_id ≈ n + departures``), falling back to the
        ``argsort`` + ``searchsorted`` idiom for sparse id spaces —
        ``nodes`` is *not* sorted, so a permutation must mediate either way.
        """
        nodes, indptr, flat = graph.neighbour_arrays()
        return cls(
            nodes=nodes,
            indptr=indptr,
            indices=cls._compact_indices(nodes, flat),
            next_id=graph.next_id,
        )

    @staticmethod
    def _compact_indices(nodes: np.ndarray, flat: np.ndarray) -> np.ndarray:
        """Translate raw neighbour ids to positions into ``nodes``."""
        if not flat.size:
            return np.zeros(0, dtype=np.int64)
        max_id = int(nodes.max())
        if max_id < 4 * nodes.shape[0] + 1024:
            lut = np.empty(max_id + 1, dtype=np.int64)
            lut[nodes] = np.arange(nodes.shape[0], dtype=np.int64)
            return lut[flat]
        order = np.argsort(nodes, kind="stable")
        return order[np.searchsorted(nodes[order], flat)]

    @classmethod
    def from_overlay_incremental(
        cls,
        graph: OverlayGraph,
        base: "ArrayOverlayGraph",
        dirty: Iterable[int],
        removed: Iterable[int],
        appended: Sequence[int],
    ) -> "ArrayOverlayGraph":
        """Re-encode ``graph`` by patching ``base``, touching only changed rows.

        ``base`` is a twin of some *earlier* state of ``graph``; ``dirty``
        holds ids whose neighbour row changed since then, ``removed`` ids
        that departed (even if later re-added), and ``appended`` ids added
        since — in call order, duplicates resolved last-add-wins.  Rows the
        mutation log never touched copy over as vectorized segment gathers,
        so only the changed rows pay the per-edge Python iteration that
        dominates :meth:`from_overlay`.  Insertion order is preserved by
        construction: survivors keep their relative order (dict removals
        never reorder the rest) and (re-)added rows append at the end,
        exactly as the source dict iterates.  The result is bit-identical
        to ``from_overlay(graph)``.
        """
        adj = graph._adj
        old_nodes = base.nodes
        old_deg = np.diff(base.indptr)
        old_flat_ids = old_nodes[base.indices]

        lut_size = int(old_nodes.max()) + 1
        survivor = ~_member_mask(removed, lut_size)[old_nodes]
        old_dirty = _member_mask(dirty, lut_size)[old_nodes]
        surv_nodes = old_nodes[survivor]
        surv_dirty = old_dirty[survivor]

        # (Re-)added rows sit at the end of the dict in last-add order.
        seen: set = set()
        app: List[int] = []
        for u in reversed(list(appended)):
            if u not in seen:
                seen.add(u)
                if u in adj:
                    app.append(u)
        app.reverse()
        app_arr = np.fromiter(app, dtype=np.int64, count=len(app))

        nodes_new = np.concatenate([surv_nodes, app_arr])
        deg_surv = old_deg[survivor]
        if surv_dirty.any():
            fresh = surv_nodes[surv_dirty].tolist()
            deg_surv = deg_surv.copy()
            deg_surv[surv_dirty] = np.fromiter(
                (len(adj[u]) for u in fresh), dtype=np.int64, count=len(fresh)
            )
        deg_app = np.fromiter(
            (len(adj[u]) for u in app), dtype=np.int64, count=len(app)
        )
        degrees = np.concatenate([deg_surv, deg_app])
        indptr = np.zeros(nodes_new.shape[0] + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])

        # Changed rows re-read the dict (one chained pass over their edges
        # only); unchanged rows gather their old flat segments in bulk.
        flat = np.empty(int(indptr[-1]), dtype=np.int64)
        row_dirty = np.concatenate([surv_dirty, np.ones(len(app), dtype=bool)])
        edge_dirty = np.repeat(row_dirty, degrees)
        changed_rows = itertools.chain(surv_nodes[surv_dirty].tolist(), app)
        flat[edge_dirty] = np.fromiter(
            itertools.chain.from_iterable(adj[u] for u in changed_rows),
            dtype=np.int64,
            count=int(degrees[row_dirty].sum()),
        )
        clean = survivor & ~old_dirty
        lens = old_deg[clean]
        total = int(lens.sum())
        if total:
            starts = base.indptr[:-1][clean]
            shift = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(lens[:-1])]
            )
            gather = np.repeat(starts - shift, lens) + np.arange(
                total, dtype=np.int64
            )
            flat[~edge_dirty] = old_flat_ids[gather]

        if nodes_new.shape[0] != len(adj) or int(indptr[-1]) != 2 * graph.num_edges:
            raise GraphError(
                "incremental twin diverged from the overlay "
                f"({nodes_new.shape[0]} rows vs {len(adj)}, "
                f"{int(indptr[-1])} half-edges vs {2 * graph.num_edges})"
            )
        return cls(
            nodes=nodes_new,
            indptr=indptr,
            indices=cls._compact_indices(nodes_new, flat),
            next_id=graph.next_id,
        )

    def to_overlay(self) -> OverlayGraph:
        """Decode back to a behaviorally identical dict graph.

        Node order, per-node neighbour order and ``next_id`` all carry
        over, so the result is indistinguishable from the graph this twin
        was taken from — for every future mutation, sample and snapshot.
        """
        return OverlayGraph.restore(self.snapshot())

    def snapshot(self) -> Dict[str, Any]:
        """The *same* pure-data payload :meth:`OverlayGraph.snapshot` yields.

        Equality (and therefore content-hash equality) with the source
        graph's snapshot is the structural half of the backend
        cross-validation gate.
        """
        flat: List[int] = self.nodes[self.indices].tolist()
        bounds: List[int] = self.indptr.tolist()
        return {
            "nodes": self.nodes.tolist(),
            "adj": [flat[bounds[k] : bounds[k + 1]] for k in range(self.n)],
            "next_id": self.next_id,
        }

    @classmethod
    def restore(cls, snap: Mapping[str, Any]) -> "ArrayOverlayGraph":
        """Build a twin straight from a :meth:`snapshot` payload."""
        return cls.from_overlay(OverlayGraph.restore(snap))

    # ------------------------------------------------------------------
    # accessors (kernel-facing)
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of alive nodes."""
        return int(self.nodes.shape[0])

    @property
    def size(self) -> int:
        """Alias of :attr:`n`, mirroring :attr:`OverlayGraph.size`."""
        return self.n

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return int(self.indices.shape[0]) // 2

    @property
    def position_of(self) -> Dict[int, int]:
        """Raw node id → row position (built lazily, like ``CsrView.index_of``)."""
        if self._position_of is None:
            self._position_of = {int(u): i for i, u in enumerate(self.nodes)}
        return self._position_of

    def degrees(self) -> np.ndarray:
        """Degree per row, aligned with :attr:`nodes` (insertion order)."""
        return np.diff(self.indptr)

    def inv_degrees(self) -> np.ndarray:
        """``1/degree`` per row, ``inf`` at dead ends (cached).

        The walker kernels multiply exponential TTL decrements by this
        vector; the ``inf`` rows make a dead end absorb any walk that
        reaches it without a separate liveness mask.
        """
        if self._inv_deg is None:
            with np.errstate(divide="ignore"):
                self._inv_deg = 1.0 / np.diff(self.indptr)
        return self._inv_deg

    def average_degree(self) -> float:
        """Mean degree (0.0 for the empty graph)."""
        return 2.0 * self.m / self.n if self.n else 0.0

    def neighbors(self, pos: int) -> np.ndarray:
        """Compact neighbour positions of the row at ``pos``."""
        return self.indices[self.indptr[pos] : self.indptr[pos + 1]]

    def neighbor_ids(self, node: int) -> np.ndarray:
        """Raw neighbour ids of ``node`` in insertion order."""
        pos = self.position_of.get(int(node))
        if pos is None:
            raise GraphError(f"node {node} is not in the overlay")
        return self.nodes[self.neighbors(pos)]

    def sample_neighbors(
        self, positions: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One uniform random neighbour per position (``-1`` when isolated).

        Identical draw pattern to :meth:`CsrView.sample_neighbors`: a
        single pre-drawn uniform block scaled by the degree vector.
        """
        positions = np.asarray(positions, dtype=np.int64)
        starts = self.indptr[positions]
        degs = self.indptr[positions + 1] - starts
        out = np.full(positions.shape, -1, dtype=np.int64)
        nz = degs > 0
        if np.any(nz):
            offsets = (rng.random(int(nz.sum())) * degs[nz]).astype(np.int64)
            out[nz] = self.indices[starts[nz] + offsets]
        return out

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert CSR well-formedness and undirected symmetry."""
        n = self.n
        if self.indptr.shape[0] != n + 1:
            raise GraphError("indptr length must be n + 1")
        if int(self.indptr[0]) != 0 or np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be non-decreasing from 0")
        if int(self.indptr[-1]) != self.indices.shape[0]:
            raise GraphError("indptr tail must equal len(indices)")
        if n and len(set(self.nodes.tolist())) != n:
            raise GraphError("duplicate node ids")
        if self.indices.size and (
            int(self.indices.min()) < 0 or int(self.indices.max()) >= n
        ):
            raise GraphError("neighbour position out of range")
        # Symmetry: each (row, neighbour) pair must appear mirrored.
        rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        forward = set(zip(rows.tolist(), self.indices.tolist()))
        for a, b in forward:
            if a == b:
                raise GraphError(f"self-loop at position {a}")
            if (b, a) not in forward:
                raise GraphError(f"asymmetric link {a}->{b}")
