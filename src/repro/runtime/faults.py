"""Deterministic fault injection for the cluster backend.

The cluster's failure paths — heartbeat loss, chunk migration, work
stealing around stragglers, retry-with-backoff, the all-hosts-dead serial
fallback — are only trustworthy if they are *exercised*, and real
networks fail too rarely and too nondeterministically to exercise them in
a test suite.  This module is the declarative half of the chaos harness
(the spin-up helpers live in ``tests/runtime/chaos.py``): a
:class:`FaultPlan` names a reproducible set of fault events, and
:meth:`FaultPlan.worker_faults` compiles the per-host subset into the
:class:`WorkerFaults` knobs honoured by
:class:`~repro.runtime.cluster.WorkerServer`.

Every injected fault is reported through the normal
:class:`~repro.runtime.progress.ProgressReporter` protocol as a
``fault_injected`` event, so chaos-run journals record both the injected
cause and the observed recovery (``heartbeat_miss``, ``worker_lost``,
``chunk_migrated``, ...) on one validated timeline — ``obs validate``
gates them in CI exactly like production journals.

Fault kinds (:data:`FAULT_KINDS`):

``kill_worker``
    The worker dies after serving ``after`` chunks: listener and every
    open connection (including heartbeat sessions) close, and future
    dials are refused — a process crash, observed from outside.
``stall_heartbeat``
    The worker stops answering pings after ``after`` pongs but keeps
    serving chunks — a partition of the control path only, which the
    driver must treat as a loss (it cannot distinguish the two).
``refuse_connect``
    The listener accepts and immediately drops connections after the
    first ``after`` — a worker whose accept queue is wedged.
``slow_host``
    Every chunk takes ``seconds`` extra — a deterministic straggler for
    the stealing and chunk-size-adaptation paths.
``drop_frame`` / ``delay_frame`` / ``truncate_frame``
    The worker's ``after``-th result frame (0-based) is swallowed,
    delayed by ``seconds``, or cut off mid-payload — wire-level faults
    the length-prefixed codec must surface as transport errors, never as
    corrupt results.

Determinism contract: faults only ever change *where and when* chunks
run, never what they compute — under every plan the batch's results must
stay bit-identical to serial with unchanged content addresses
(``tests/runtime/test_chaos.py`` asserts exactly that).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "FrameFault",
    "WorkerFaults",
    "chaos_matrix",
]

#: The closed set of injectable fault kinds.
FAULT_KINDS: Tuple[str, ...] = (
    "kill_worker",
    "stall_heartbeat",
    "refuse_connect",
    "slow_host",
    "drop_frame",
    "delay_frame",
    "truncate_frame",
)

#: Kinds whose ``after`` field is meaningful (a 0-based count or index).
_COUNTED = {
    "kill_worker": "chunks served",
    "stall_heartbeat": "pongs answered",
    "refuse_connect": "connections accepted",
    "drop_frame": "result frame",
    "delay_frame": "result frame",
    "truncate_frame": "result frame",
}

#: Kinds whose ``seconds`` field is meaningful.
_TIMED = ("slow_host", "delay_frame")


@dataclass(frozen=True)
class Fault:
    """One injectable event of a :class:`FaultPlan`.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    host:
        Index of the target worker in the plan's host list (workers are
        anonymous until bound, so plans address them by position).
    after:
        Kind-specific trigger count — chunks served before a kill, pongs
        answered before a stall, the 0-based result-frame index for the
        frame faults (default 0: trigger at the first opportunity).
    seconds:
        Duration for ``slow_host`` (per chunk) and ``delay_frame``.
    """

    kind: str
    host: int = 0
    after: int = 0
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.host < 0:
            raise ValueError(f"fault host index must be >= 0, got {self.host}")
        if self.after < 0:
            raise ValueError(f"fault 'after' must be >= 0, got {self.after}")
        if self.seconds < 0:
            raise ValueError(f"fault 'seconds' must be >= 0, got {self.seconds}")
        if self.kind in _TIMED and self.seconds == 0.0:
            raise ValueError(f"{self.kind} fault needs seconds > 0")

    def as_config(self) -> Dict[str, Any]:
        """Pure-data form (stable field order, JSON-able)."""
        return {
            "kind": self.kind,
            "host": int(self.host),
            "after": int(self.after),
            "seconds": float(self.seconds),
        }

    def describe(self) -> str:
        """One-line human description (journal ``detail`` field)."""
        bits = [f"{self.kind} on host {self.host}"]
        if self.kind in _COUNTED:
            bits.append(f"after {self.after} {_COUNTED[self.kind]}")
        if self.kind in _TIMED or self.seconds:
            bits.append(f"{self.seconds:g}s")
        return ", ".join(bits)


@dataclass(frozen=True)
class FrameFault:
    """A wire-level fault on one result frame (compiled, worker-side form)."""

    frame: int
    mode: str  # "drop" | "delay" | "truncate"
    seconds: float = 0.0


@dataclass(frozen=True)
class WorkerFaults:
    """The compiled per-worker knobs :class:`WorkerServer` honours.

    All fields default to "no fault"; :meth:`FaultPlan.worker_faults`
    builds these, but tests may also construct them directly.
    """

    kill_after_chunks: Optional[int] = None
    slow_seconds: float = 0.0
    stall_heartbeat_after: Optional[int] = None
    refuse_after_sessions: Optional[int] = None
    frame_faults: Tuple[FrameFault, ...] = ()

    def frame_fault_at(self, frame: int) -> Optional[FrameFault]:
        """The fault targeting result frame ``frame``, if any."""
        for fault in self.frame_faults:
            if fault.frame == frame:
                return fault
        return None


@dataclass(frozen=True)
class FaultPlan:
    """A named, reproducible set of fault events for one chaos run.

    ``seed`` identifies the plan (and seeds :meth:`random` generation);
    ``events`` is the explicit fault list.  Plans are pure data — they
    compile to per-worker :class:`WorkerFaults` via :meth:`worker_faults`
    and round-trip through :meth:`as_config`, so a failing chaos run can
    be reproduced from its journal alone.
    """

    seed: int = 0
    events: Tuple[Fault, ...] = ()
    name: str = ""

    def worker_faults(self, host: int) -> WorkerFaults:
        """Compile this plan's events targeting worker index ``host``."""
        kill = stall = refuse = None
        slow = 0.0
        frames: List[FrameFault] = []
        for event in self.events:
            if event.host != host:
                continue
            if event.kind == "kill_worker":
                kill = event.after
            elif event.kind == "stall_heartbeat":
                stall = event.after
            elif event.kind == "refuse_connect":
                refuse = event.after
            elif event.kind == "slow_host":
                slow = event.seconds
            else:  # drop/delay/truncate frame
                frames.append(
                    FrameFault(event.after, event.kind.split("_")[0], event.seconds)
                )
        return WorkerFaults(
            kill_after_chunks=kill,
            slow_seconds=slow,
            stall_heartbeat_after=stall,
            refuse_after_sessions=refuse,
            frame_faults=tuple(frames),
        )

    def hosts_touched(self) -> Tuple[int, ...]:
        """Sorted worker indices any event targets."""
        return tuple(sorted({event.host for event in self.events}))

    def as_config(self) -> Dict[str, Any]:
        """Pure-data form for journals and reproduction."""
        return {
            "seed": int(self.seed),
            "name": self.name,
            "events": [event.as_config() for event in self.events],
        }

    @classmethod
    def from_config(cls, config: Dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`as_config` output."""
        return cls(
            seed=int(config.get("seed", 0)),
            name=str(config.get("name", "")),
            events=tuple(Fault(**event) for event in config.get("events", ())),
        )

    @classmethod
    def random(
        cls, seed: int, hosts: int = 3, events: int = 2, name: str = ""
    ) -> "FaultPlan":
        """A seed-reproducible random plan over ``hosts`` workers.

        The same ``(seed, hosts, events)`` always yields the same plan —
        soak tests iterate seeds to walk a reproducible fault space.  At
        most one fault lands per host (faults on distinct hosts compose
        predictably; stacking several on one host mostly shadows them),
        and kill faults are never drawn for host 0 so at least one worker
        survives every random plan.
        """
        if hosts < 1:
            raise ValueError(f"need at least one host, got {hosts}")
        rng = random.Random(int(seed))
        targets = rng.sample(range(hosts), k=min(int(events), hosts))
        drawn: List[Fault] = []
        for host in targets:
            kinds = [k for k in FAULT_KINDS if host != 0 or k != "kill_worker"]
            kind = rng.choice(kinds)
            after = rng.randrange(0, 3)
            seconds = round(rng.uniform(0.05, 0.3), 3) if kind in _TIMED else 0.0
            drawn.append(Fault(kind, host=host, after=after, seconds=seconds))
        return cls(
            seed=int(seed),
            events=tuple(drawn),
            name=name or f"random-{seed}",
        )

    def describe(self) -> str:
        """One-line human description of the whole plan."""
        label = self.name or f"plan-{self.seed}"
        if not self.events:
            return f"{label}: no faults"
        return f"{label}: " + "; ".join(event.describe() for event in self.events)


def chaos_matrix(slow_seconds: float = 0.2) -> Dict[str, FaultPlan]:
    """The canonical fault-plan matrix the chaos suite and CI job run.

    One plan per failure class the acceptance criteria name — worker
    kill, heartbeat stall, frame truncation, slow host — each targeting a
    different worker index so 2- and 3-host runs both exercise it.
    """
    return {
        "kill_worker": FaultPlan(
            seed=101,
            name="kill_worker",
            events=(Fault("kill_worker", host=1, after=1),),
        ),
        "heartbeat_stall": FaultPlan(
            seed=102,
            name="heartbeat_stall",
            events=(Fault("stall_heartbeat", host=1, after=1),),
        ),
        "frame_truncate": FaultPlan(
            seed=103,
            name="frame_truncate",
            events=(Fault("truncate_frame", host=0, after=1),),
        ),
        "slow_host": FaultPlan(
            seed=104,
            name="slow_host",
            events=(Fault("slow_host", host=0, seconds=slow_seconds),),
        ),
    }
