"""Entry points of the runtime: :func:`run_trials` and :func:`sweep`.

``run_trials`` is the single funnel every experiment goes through: it
content-addresses the batch, consults the results store, and only when the
store misses (or ``force`` is set) dispatches the specs to the executor and
persists what comes back.  ``sweep`` fans a spec factory out over a
parameter grid, one cached batch per grid point.
"""

from __future__ import annotations

import inspect
import os
import pathlib
import time
from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..sim.metrics import EstimateSeries
from .cluster import ClusterExecutor, parse_hosts
from .pool import TrialExecutor
from .progress import NullProgress, ProgressReporter
from .provenance import detect_git_revision, summarize_results
from .store import ResultsStore, content_key, group_key
from .trials import TrialResult, TrialSpec, apply_graph_backend

__all__ = [
    "RuntimeOptions",
    "batch_config",
    "run_trials",
    "series_from_results",
    "supports_runtime",
    "sweep",
]


def supports_runtime(fn: Callable) -> bool:
    """True when ``fn`` accepts a ``runtime=`` keyword.

    Experiments grown before this subsystem (tables, fig7) don't take the
    parameter; every entry point that threads :class:`RuntimeOptions` into
    the figure registry goes through this single probe.
    """
    try:
        return "runtime" in inspect.signature(fn).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False


@dataclass(frozen=True)
class RuntimeOptions:
    """Execution knobs threaded from the CLI down to :func:`run_trials`.

    ``None`` (the common default for the figure functions' ``runtime``
    parameter) means serial, uncached execution — exactly the historical
    behaviour.
    """

    workers: int = 1
    chunk_size: Optional[int] = None
    store: Optional[ResultsStore] = None
    force: bool = False
    progress: Optional[ProgressReporter] = None
    #: Human experiment label written into artifact meta (``cache ls``
    #: displays it).  Display-only: never part of the content address.
    tag: Optional[str] = None
    #: Git revision recorded in artifact headers for trend tracking.
    #: ``None`` auto-detects ($REPRO_GIT_REVISION, then ``git rev-parse``);
    #: like ``tag``, provenance only — never part of the content address.
    revision: Optional[str] = None
    #: Snapshot hand-off for churn-replay kinds (docs/SNAPSHOTS.md).  True
    #: (default) makes chunked replay O(horizon) total; False — the CLI's
    #: ``--no-snapshot`` — preserves the historical prefix-replay dispatch.
    #: Execution detail only: results and content addresses are identical
    #: either way, so this never invalidates a cache.
    snapshots: bool = True
    #: Graph representation kernel-capable estimators run on: ``"dict"``
    #: (the reference) or ``"array"`` (the batched kernels of
    #: :mod:`repro.core.kernels`; the CLI's ``--graph-backend``).  Unlike
    #: ``snapshots`` this is *not* execution detail: array-backend results
    #: are distributionally — not bitwise — equivalent, so the backend is
    #: injected into the estimator specs and perturbs the content address
    #: (docs/KERNELS.md).
    graph_backend: str = "dict"
    #: Remote worker addresses (``host:port`` tuples; the CLI's ``--hosts``
    #: / ``$REPRO_HOSTS``).  Non-empty selects the cluster executor of
    #: :mod:`~repro.runtime.cluster` instead of the process pool; like
    #: ``workers`` it is pure execution detail — results and content
    #: addresses are bit-identical at any host count (docs/DISTRIBUTED.md).
    hosts: Tuple[str, ...] = ()
    #: Seconds between liveness pings per cluster host (the CLI's
    #: ``--heartbeat-interval``; ``0`` disables the monitor).  Like
    #: ``hosts``, pure execution detail — liveness changes *when* a dead
    #: worker is noticed, never what the batch computes.
    heartbeat_interval: float = 2.0
    #: Consecutive missed pings before a cluster host is declared lost
    #: (the CLI's ``--heartbeat-misses``); with the interval this bounds
    #: failure-detection latency at ~``interval * misses`` seconds.
    heartbeat_misses: int = 3

    @classmethod
    def create(
        cls,
        workers: int = 1,
        cache_dir: Optional[Union[str, os.PathLike]] = None,
        force: bool = False,
        progress: Optional[ProgressReporter] = None,
        chunk_size: Optional[int] = None,
        tag: Optional[str] = None,
        revision: Optional[str] = None,
        snapshots: bool = True,
        graph_backend: str = "dict",
        hosts: Union[None, str, Sequence[str]] = None,
        heartbeat_interval: float = 2.0,
        heartbeat_misses: int = 3,
    ) -> "RuntimeOptions":
        """Convenience constructor mapping CLI-level values to options.

        ``hosts`` accepts the CLI's CSV string (``"h1:p1,h2:p2"``) or a
        sequence of ``host:port`` strings; anything non-empty routes the
        batch through the cluster executor.  ``heartbeat_interval`` /
        ``heartbeat_misses`` tune that executor's liveness monitor and
        are ignored without hosts.
        """
        store = ResultsStore(pathlib.Path(cache_dir)) if cache_dir else None
        return cls(
            workers=max(1, int(workers)),
            chunk_size=chunk_size,
            store=store,
            force=force,
            progress=progress,
            tag=tag,
            revision=revision,
            snapshots=snapshots,
            graph_backend=graph_backend,
            hosts=parse_hosts(hosts),
            heartbeat_interval=float(heartbeat_interval),
            heartbeat_misses=int(heartbeat_misses),
        )

    def with_progress(self, progress: ProgressReporter) -> "RuntimeOptions":
        """Copy with a different progress reporter."""
        return replace(self, progress=progress)

    def with_tag(self, tag: str) -> "RuntimeOptions":
        """Copy with a different artifact tag."""
        return replace(self, tag=tag)


def batch_config(specs: Sequence[TrialSpec]) -> Dict[str, Any]:
    """Canonical configuration of a whole batch (the store's hash input).

    Per-trial fields that are shared across the batch compress to the
    first spec's values plus the index/stream lists, keeping the hashed
    document small at thousands of trials.
    """
    if not specs:
        raise ValueError("cannot describe an empty batch")
    first = specs[0].as_config()
    shared = {k: v for k, v in first.items() if k not in ("index", "stream")}
    for spec in specs[1:]:
        cfg = spec.as_config()
        for key, value in shared.items():
            if cfg[key] != value:
                raise ValueError(
                    f"batch is not homogeneous: trial {spec.index} differs in {key!r}"
                )
    # The exact (index, stream) pairs — not separate index/stream pools —
    # so batches that pair them differently hash to different keys.
    shared["trials"] = [[int(s.index), int(s.stream)] for s in specs]
    return shared


def run_trials(
    specs: Sequence[TrialSpec],
    *,
    runtime: Optional[RuntimeOptions] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    store: Optional[ResultsStore] = None,
    force: Optional[bool] = None,
    progress: Optional[ProgressReporter] = None,
    tag: Optional[str] = None,
) -> List[TrialResult]:
    """Run a batch of trials with caching and parallel dispatch.

    Determinism contract: the returned results are bit-identical for any
    ``workers``/``hosts``/``chunk_size``/``snapshots`` setting and for
    cache hits,
    because every trial's randomness derives from ``(hub_seed, index)``
    alone and chunked churn replay — snapshot hand-off or prefix replay —
    reproduces the exact serial scenario states (``docs/SNAPSHOTS.md``).
    Keyword arguments override the corresponding ``runtime`` fields, so
    callers can pass a shared :class:`RuntimeOptions` and still specialize
    one knob locally.  ``tag`` labels the saved artifact for ``cache ls``
    (falling back to the batch's trial kind); it is metadata only and never
    perturbs the content address.
    """
    runtime = runtime or RuntimeOptions()
    workers = runtime.workers if workers is None else workers
    chunk_size = runtime.chunk_size if chunk_size is None else chunk_size
    store = runtime.store if store is None else store
    force = runtime.force if force is None else force
    progress = progress or runtime.progress or NullProgress()
    tag = runtime.tag if tag is None else tag

    specs = list(specs)
    if not specs:
        return []
    if runtime.graph_backend != "dict":
        # Injected *before* hashing: the backend is part of the estimator
        # spec, so array-backend batches cache under their own address and
        # never shadow reference results.
        specs = apply_graph_backend(specs, runtime.graph_backend)

    portable = all(spec.portable for spec in specs)
    config = batch_config(specs) if portable else None
    if not isinstance(progress, NullProgress):
        # Spec identity for journals: which logical experiment the coming
        # events (including a possible cache hit) belong to.  Computed only
        # when someone is listening — the hashes cost a canonical-JSON pass.
        meta: Dict[str, Any] = {
            "kind": specs[0].kind,
            "trials": len(specs),
            "tag": tag or specs[0].kind,
        }
        if config is not None:
            meta["key"] = content_key(config)
            meta["group"] = group_key(config)
        progress.on_batch_meta(meta)
    if store is not None and config is not None and not force:
        cached = store.load(config)
        if cached is not None:
            progress.on_cache_hit(len(cached))
            return cached

    if runtime.hosts:
        executor: Any = ClusterExecutor(
            runtime.hosts,
            chunk_size=chunk_size,
            progress=progress,
            snapshots=runtime.snapshots,
            snapshot_store=store if runtime.snapshots else None,
            heartbeat_interval=runtime.heartbeat_interval,
            heartbeat_misses=runtime.heartbeat_misses,
        )
    else:
        executor = TrialExecutor(
            workers=workers,
            chunk_size=chunk_size,
            progress=progress,
            snapshots=runtime.snapshots,
            snapshot_store=store if runtime.snapshots else None,
        )
    started = time.perf_counter()
    results = executor.run(specs)
    elapsed = time.perf_counter() - started
    if store is not None and config is not None:
        # Header provenance for the trend tracker: which code computed the
        # batch, its logical-experiment group, and a scalar metric summary
        # (quality/messages from the results, runtime measured here — the
        # only place the compute is actually timed).
        metrics: Dict[str, Any] = dict(summarize_results(results))
        metrics["elapsed_seconds"] = elapsed
        store.save(
            config,
            results,
            meta={
                "trials": len(specs),
                "tag": tag or specs[0].kind,
                "git_revision": (
                    runtime.revision
                    if runtime.revision is not None
                    else detect_git_revision()
                ),
                "metrics": metrics,
            },
        )
    return results


def sweep(
    spec_factory: Callable[[Any], Sequence[TrialSpec]],
    values: Iterable[Any],
    *,
    runtime: Optional[RuntimeOptions] = None,
    **overrides: Any,
) -> Dict[Any, List[TrialResult]]:
    """Run one cached batch per grid point of a parameter sweep.

    ``spec_factory(value)`` must return the spec batch for that point;
    each point is content-addressed independently, so re-running a sweep
    after adding grid values only computes the new points.  Each batch
    runs under :func:`run_trials`' determinism contract, and grid points
    that share a churn scenario (e.g. an estimator-parameter sweep over
    one trace) also share its cached boundary snapshots.
    """
    out: Dict[Any, List[TrialResult]] = {}
    for value in values:
        out[value] = run_trials(
            list(spec_factory(value)), runtime=runtime, **overrides
        )
    return out


def series_from_results(
    results: Sequence[TrialResult],
    name: str = "",
    stream: Optional[int] = None,
) -> EstimateSeries:
    """Merge trial results into an :class:`EstimateSeries`.

    Results arrive pre-sorted by ``(index, stream)``; pass ``stream`` to
    select one stream of a multi-stream batch.  Results flagged not-ok
    (e.g. the overlay emptied before the trial's slot) are skipped, mirroring
    the serial loops which stopped appending at that point.
    """
    series = EstimateSeries(name=name)
    for result in results:
        if stream is not None and result.stream != stream:
            continue
        if not result.ok or result.true_size <= 0:
            continue
        series.append(result.index, result.value, result.true_size)
    return series
