"""Structured observability for the trial runtime: phase profiling + journal.

Two halves, deliberately decoupled so the hot path stays unaffected by the
telemetry path (the progress/diagnostics split of the Mercury RPC runtime):

* **Worker side** — a :class:`PhaseAccumulator` installed by
  :func:`~repro.runtime.trials.run_chunk` around every chunk.  Chunk
  runners wrap their interesting sections in :func:`phase`, which
  aggregates ``perf_counter`` deltas per phase name, either chunk-wide or
  attributed to one ``(index, stream)`` trial.  The accumulated timings are
  attached to each :class:`~repro.runtime.trials.TrialResult` as its
  ``profile`` field and shipped back through the normal pickle channel —
  no sockets, no files, no global state crossing process boundaries.

* **Driver side** — a :class:`JournalReporter`, a
  :class:`~repro.runtime.progress.ProgressReporter` that serialises every
  callback (batch → chunk → trial, snapshot-boundary resolutions, store
  hits, fallbacks, and the cluster lifecycle of
  :mod:`~repro.runtime.cluster` — worker connects/losses, chunk
  migrations, steals) to one JSON object per line.  The journal is append-only
  JSONL so a crashed run still leaves a readable prefix, and every line
  carries a wall-clock timestamp so events from different worker processes
  can be aligned on one timeline (worker ``perf_counter`` origins differ
  per process; only epoch time is comparable across them).

The journal file format is versioned (:data:`JOURNAL_SCHEMA_VERSION`) and
documented in ``docs/OBSERVABILITY.md``; :mod:`repro.analysis.obs_report`
consumes it for validation, ASCII summaries and Chrome trace-event export.

Phase taxonomy (:data:`PHASES`):

``boot``
    Scenario or overlay construction from scratch (cold chunk).
``restore``
    Scenario state rebuilt from a hand-off snapshot (pipelined chunk).
``churn``
    Advancing the churn schedule / scenario between estimation points.
``estimation``
    Running an estimator (the paper's actual measurement).
``kernel``
    Vectorized kernel work inside an estimation on the array backend
    (:mod:`repro.core.kernels`).  Recorded chunk-wide, *nested inside*
    the trial-attributed ``estimation`` span — kernel seconds are a
    subset of estimation seconds, not an additional cost.
``serialize``
    Capturing/encoding snapshot payloads for hand-off or the store.

Determinism: profiling only *observes* — it draws no randomness, mutates
no scenario state, and the ``profile`` field is excluded from result
equality and from stored artifacts, so results are bit-identical with or
without a journal attached.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, IO, Iterator, Mapping, Optional, Sequence, Tuple, Union

from .progress import ProgressReporter

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "PHASES",
    "JournalReporter",
    "PhaseAccumulator",
    "chunk_profiler",
    "phase",
]

#: Version stamped into every journal's header line.
JOURNAL_SCHEMA_VERSION = 1

#: The closed set of phase names chunk runners may record.
PHASES: Tuple[str, ...] = (
    "boot",
    "restore",
    "churn",
    "estimation",
    "kernel",
    "serialize",
)


class PhaseAccumulator:
    """Collects phase timings for one ``run_chunk`` invocation.

    Durations are ``perf_counter`` deltas (monotonic, high resolution);
    the chunk's start is additionally captured as epoch time so driver-side
    consumers can place worker spans on a shared wall-clock timeline.
    """

    def __init__(self) -> None:
        self.started = time.time()
        self._t0 = time.perf_counter()
        self.chunk_phases: Dict[str, float] = {}
        self.trials: Dict[Tuple[int, int], Dict[str, Any]] = {}

    @contextmanager
    def measure(self, name: str, key: Optional[Tuple[int, int]] = None) -> Iterator[None]:
        """Time the enclosed block under phase ``name``.

        With ``key=(index, stream)`` the duration is attributed to that
        trial; without, it accrues to the chunk as a whole (boot, restore
        and churn are typically shared across a chunk's trials).
        """
        if name not in PHASES:
            raise ValueError(f"unknown phase {name!r}; expected one of {PHASES}")
        begin = time.perf_counter()
        try:
            yield
        finally:
            end = time.perf_counter()
            delta = end - begin
            if key is None:
                self.chunk_phases[name] = self.chunk_phases.get(name, 0.0) + delta
            else:
                trial = self.trials.setdefault(
                    key, {"started": begin - self._t0, "phases": {}}
                )
                trial["phases"][name] = trial["phases"].get(name, 0.0) + delta
                trial["elapsed"] = end - self._t0 - trial["started"]

    def chunk_summary(self) -> Dict[str, Any]:
        """Chunk-level profile: pid, epoch start, elapsed, shared phases."""
        return {
            "pid": os.getpid(),
            "started": self.started,
            "elapsed": time.perf_counter() - self._t0,
            "phases": dict(self.chunk_phases),
        }


#: The accumulator installed by the currently-executing ``run_chunk``
#: (worker-process local; ``None`` outside a chunk).
_ACTIVE: Optional[PhaseAccumulator] = None


@contextmanager
def chunk_profiler() -> Iterator[PhaseAccumulator]:
    """Install a fresh :class:`PhaseAccumulator` for the enclosed chunk."""
    global _ACTIVE
    previous = _ACTIVE
    accumulator = PhaseAccumulator()
    _ACTIVE = accumulator
    try:
        yield accumulator
    finally:
        _ACTIVE = previous


@contextmanager
def phase(name: str, key: Optional[Tuple[int, int]] = None) -> Iterator[None]:
    """Record the enclosed block under phase ``name`` (no-op outside a chunk).

    Chunk runners call this without caring whether profiling is active;
    when no accumulator is installed the block runs untimed.
    """
    accumulator = _ACTIVE
    if accumulator is None:
        yield
    else:
        with accumulator.measure(name, key):
            yield


class JournalReporter(ProgressReporter):
    """Serialise every runtime event to an append-only JSONL run journal.

    Parameters
    ----------
    target:
        Path to the journal file (opened in append mode, so several runs
        may share one journal) or an already-open text stream.
    clock:
        Timestamp source; injectable for deterministic tests.

    Every line is one JSON object with at least ``ts`` (epoch seconds) and
    ``event``.  The first line written by each reporter is a ``journal``
    header carrying the schema version and the driver PID.  Events between
    a ``batch_meta``/``batch_start`` and the matching ``batch_finish`` (or
    ``cache_hit``) share a ``batch`` sequence number.
    """

    def __init__(
        self,
        target: Union[str, "os.PathLike[str]", IO[str]],
        *,
        clock=time.time,
    ) -> None:
        if hasattr(target, "write"):
            self._stream: IO[str] = target  # type: ignore[assignment]
            self._owns_stream = False
        else:
            self._stream = open(os.fspath(target), "a", encoding="utf-8")
            self._owns_stream = True
        self._clock = clock
        self._batch = 0
        self._in_batch = False
        # Cluster batches journal from several threads at once (dispatch
        # threads, heartbeat monitors, in-process chaos workers); the lock
        # keeps each JSONL line atomic.
        self._write_lock = threading.Lock()
        self._emit("journal", schema=JOURNAL_SCHEMA_VERSION, pid=os.getpid())

    def _emit(self, event: str, **data: Any) -> None:
        with self._write_lock:
            record: Dict[str, Any] = {"ts": float(self._clock()), "event": event}
            if self._in_batch or event in ("batch_meta", "batch_start"):
                record["batch"] = self._batch
            record.update(data)
            self._stream.write(json.dumps(record, sort_keys=False) + "\n")
            self._stream.flush()

    def _next_batch(self) -> None:
        self._batch += 1
        self._in_batch = True

    def close(self) -> None:
        """Close the underlying file if this reporter opened it."""
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "JournalReporter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- ProgressReporter callbacks ----------------------------------------

    def on_batch_meta(self, meta: Mapping[str, Any]) -> None:
        """Open a new batch scope and journal its spec identity."""
        self._next_batch()
        self._emit("batch_meta", **dict(meta))

    def on_start(self, total: int, workers: int) -> None:
        """Journal the start of batch execution."""
        if not self._in_batch:
            self._next_batch()
        self._emit("batch_start", total=total, workers=workers)

    def on_progress(self, done: int, total: int) -> None:
        """Journal a completed-trials progress tick."""
        self._emit("progress", done=done, total=total)

    def on_cache_hit(self, total: int) -> None:
        """Journal a whole-batch store hit and close the batch scope."""
        if not self._in_batch:
            self._next_batch()
        self._emit("cache_hit", trials=total)
        self._in_batch = False

    def on_fallback(self, reason: str) -> None:
        """Journal a whole-batch serial fallback."""
        self._emit("fallback", reason=reason)

    def on_partial_fallback(self, done: int, total: int, reason: str) -> None:
        """Journal a mid-batch pool failure with the surviving trial count."""
        self._emit("partial_fallback", done=done, total=total, reason=reason)

    def on_finish(self, done: int, elapsed: float) -> None:
        """Journal batch completion and close the batch scope."""
        self._emit("batch_finish", done=done, elapsed=elapsed)
        self._in_batch = False

    def on_chunk_start(self, chunk: int, trials: int, boundary: Optional[int] = None) -> None:
        """Journal a chunk submission (with its snapshot boundary, if any)."""
        self._emit("chunk_start", chunk=chunk, trials=trials, boundary=boundary)

    def on_chunk_done(self, chunk: int, results: Sequence[Any]) -> None:
        """Journal chunk completion plus one ``trial`` line per result.

        Worker-side profiles (pid, epoch start, phase timings) are folded
        in when present; trial start offsets are rebased onto the worker's
        epoch start so all journal timestamps share one timeline.
        """
        summary: Dict[str, Any] = {}
        for result in results:
            profile = getattr(result, "profile", None) or {}
            if "chunk" in profile:
                summary = profile["chunk"]
                break
        self._emit(
            "chunk_done",
            chunk=chunk,
            trials=len(results),
            pid=summary.get("pid"),
            started=summary.get("started"),
            elapsed=summary.get("elapsed"),
            phases=summary.get("phases") or {},
        )
        chunk_started = summary.get("started")
        for result in results:
            profile = getattr(result, "profile", None) or {}
            started = profile.get("started")
            if started is not None and chunk_started is not None:
                started = chunk_started + started
            self._emit(
                "trial",
                chunk=chunk,
                index=getattr(result, "index", None),
                stream=getattr(result, "stream", 0),
                ok=getattr(result, "ok", True),
                pid=summary.get("pid"),
                started=started,
                elapsed=profile.get("elapsed"),
                phases=profile.get("phases") or {},
            )

    def on_snapshot_boundary(self, target: int, seconds: float, outcome: str) -> None:
        """Journal a snapshot-backbone boundary resolution."""
        self._emit("snapshot_boundary", target=target, seconds=seconds, outcome=outcome)

    def on_snapshot_save_error(self, error: str) -> None:
        """Journal a failed best-effort snapshot save."""
        self._emit("snapshot_save_error", error=error)

    # -- cluster events (repro.runtime.cluster) ----------------------------

    def on_worker_connect(self, host: str, pid: int) -> None:
        """Journal a completed cluster-worker handshake."""
        self._emit("worker_connect", host=host, pid=pid)

    def on_worker_lost(self, host: str, reason: str) -> None:
        """Journal a cluster worker declared dead after exhausted retries."""
        self._emit("worker_lost", host=host, reason=reason)

    def on_chunk_migrated(self, chunk: int, from_host: str, to_host: str) -> None:
        """Journal a chunk migrating off a dead host with its snapshot."""
        self._emit("chunk_migrated", chunk=chunk, from_host=from_host, to_host=to_host)

    def on_steal(self, chunk: int, from_host: str, to_host: str) -> None:
        """Journal an idle host stealing a queued chunk from a busy peer."""
        self._emit("steal", chunk=chunk, from_host=from_host, to_host=to_host)

    def on_heartbeat_miss(self, host: str, misses: int, threshold: int) -> None:
        """Journal a missed liveness ping (consecutive count vs threshold)."""
        self._emit("heartbeat_miss", host=host, misses=misses, threshold=threshold)

    def on_fault_injected(self, host: str, kind: str, detail: str) -> None:
        """Journal a chaos-harness fault firing on a worker."""
        self._emit("fault_injected", host=host, kind=kind, detail=detail)

    # -- service events (repro.service) -------------------------------------

    def on_service_start(self, meta: Mapping[str, Any]) -> None:
        """Journal an estimation-service boot or checkpoint restore."""
        self._emit("service_start", **dict(meta))

    def on_estimate_served(
        self, families: Sequence[str], round: int, staleness: Optional[int]
    ) -> None:
        """Journal an admitted estimate read with its worst staleness."""
        self._emit(
            "estimate_served", families=list(families), round=round, staleness=staleness
        )

    def on_ingest_dropped(self, dropped: int, queued: int) -> None:
        """Journal ingest load-shedding (events dropped, queue depth)."""
        self._emit("ingest_dropped", dropped=dropped, queued=queued)

    def on_snapshot_checkpoint(
        self, round: int, path: str, bytes: int, seconds: float
    ) -> None:
        """Journal a service checkpoint write (size and duration)."""
        self._emit(
            "snapshot_checkpoint", round=round, path=path, bytes=bytes, seconds=seconds
        )
