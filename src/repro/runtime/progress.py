"""Lightweight progress/telemetry callbacks for trial execution.

The executor reports through a :class:`ProgressReporter`; the default
:class:`NullProgress` costs nothing, :class:`LogProgress` writes one-line
updates to a stream (stderr by default, so CSV/chart output on stdout
stays clean), and :class:`TelemetryCollector` records every event for
tests and tooling.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, TextIO

__all__ = [
    "LogProgress",
    "NullProgress",
    "ProgressReporter",
    "TeeProgress",
    "TelemetryCollector",
]


class ProgressReporter:
    """Callback interface invoked by the executor and the trials API.

    The original protocol is the five coarse batch-level callbacks
    (``on_start`` … ``on_finish``); third-party subclasses that override
    only those keep working unchanged.  The chunk-/trial-granular hooks
    below were added for the observability layer (:mod:`repro.runtime.obs`)
    and all default to no-ops — except :meth:`on_partial_fallback`, whose
    default delegates to :meth:`on_fallback` so five-method reporters still
    hear about mid-batch pool failures.
    """

    def on_start(self, total: int, workers: int) -> None:
        """A batch of ``total`` trials is about to run on ``workers`` workers."""

    def on_progress(self, done: int, total: int) -> None:
        """``done`` of ``total`` trials have completed."""

    def on_cache_hit(self, total: int) -> None:
        """The whole batch was served from the results store."""

    def on_fallback(self, reason: str) -> None:
        """Parallel execution was abandoned in favour of the serial path."""

    def on_finish(self, done: int, elapsed: float) -> None:
        """The batch finished (``elapsed`` wall-clock seconds)."""

    # -- observability extensions (all optional to override) ---------------

    def on_batch_meta(self, meta: Mapping[str, Any]) -> None:
        """Identity of the batch about to run (kind, trials, tag, key, group).

        Fired by :func:`~repro.runtime.api.run_trials` before the cache
        lookup, so journals can attribute the subsequent events (including
        a cache hit) to a spec identity.  Not fired when the executor is
        driven directly.
        """

    def on_chunk_start(self, chunk: int, trials: int, boundary: Optional[int] = None) -> None:
        """Chunk ``chunk`` (``trials`` specs) was submitted for execution.

        ``boundary`` is the snapshot hand-off index the chunk resumes from
        (pipelined replay kinds only; ``None`` otherwise).
        """

    def on_chunk_done(self, chunk: int, results: Sequence[Any]) -> None:
        """Chunk ``chunk`` completed with ``results`` (list of TrialResult).

        Results carry worker-side phase profiles on their ``profile``
        attribute when produced by :func:`~repro.runtime.trials.run_chunk`.
        """

    def on_snapshot_boundary(self, target: int, seconds: float, outcome: str) -> None:
        """The snapshot backbone resolved boundary ``target``.

        ``outcome`` is ``"hit"`` (loaded from the snapshot store),
        ``"computed"`` (advanced from the previous boundary) or
        ``"skipped"`` (no hand-off produced for this boundary — the chunk
        prefix-replays instead).
        """

    def on_snapshot_save_error(self, error: str) -> None:
        """A best-effort snapshot save failed (e.g. read-only store).

        Reported at most once per backbone — subsequent failures of the
        same store are suppressed.
        """

    def on_partial_fallback(self, done: int, total: int, reason: str) -> None:
        """The pool failed mid-batch; ``done`` of ``total`` trials survive.

        Only the remaining ``total - done`` trials are re-run serially.
        The default implementation delegates to :meth:`on_fallback` so
        legacy five-method reporters still observe the event.
        """
        self.on_fallback(reason)

    # -- cluster extensions (repro.runtime.cluster; all optional) -----------

    def on_worker_connect(self, host: str, pid: int) -> None:
        """The driver completed a handshake with cluster worker ``host``.

        ``pid`` is the worker's process id, reported by the handshake so
        journals and traces can attribute remote chunk profiles.
        """

    def on_worker_lost(self, host: str, reason: str) -> None:
        """Cluster worker ``host`` was declared dead after exhausting retries."""

    def on_chunk_migrated(self, chunk: int, from_host: str, to_host: str) -> None:
        """Chunk ``chunk`` of a lost host was reassigned to a survivor.

        The chunk re-ships with its retained boundary snapshot, so the
        migration never changes results — only placement.
        """

    def on_steal(self, chunk: int, from_host: str, to_host: str) -> None:
        """An idle host stole queued chunk ``chunk`` from a busy peer's tail."""

    def on_heartbeat_miss(self, host: str, misses: int, threshold: int) -> None:
        """Cluster worker ``host`` missed a liveness ping.

        ``misses`` is the consecutive-miss count so far; reaching
        ``threshold`` declares the host lost (``on_worker_lost`` follows
        through the normal migration path).
        """

    def on_fault_injected(self, host: str, kind: str, detail: str) -> None:
        """The chaos harness fired an injected fault on worker ``host``.

        ``kind`` is one of :data:`~repro.runtime.faults.FAULT_KINDS`;
        reported by the worker itself (once per kind) so journals hold
        the injected cause and the observed recovery on one timeline.
        """

    # -- service extensions (repro.service; all optional) --------------------

    def on_service_start(self, meta: Mapping[str, Any]) -> None:
        """An estimation service booted (or restored from a checkpoint).

        ``meta`` carries at least ``families`` (the warm estimator list),
        ``size`` (overlay size), ``seed`` and the current ``round``.
        """

    def on_estimate_served(
        self, families: Sequence[str], round: int, staleness: Optional[int]
    ) -> None:
        """The service admitted and answered one estimate request.

        ``staleness`` is the worst round-distance across the served
        families' estimates (``None`` before any estimate exists).
        """

    def on_ingest_dropped(self, dropped: int, queued: int) -> None:
        """The bounded ingest queue shed ``dropped`` events (``queued`` held)."""

    def on_snapshot_checkpoint(
        self, round: int, path: str, bytes: int, seconds: float
    ) -> None:
        """The service wrote a checkpoint of ``bytes`` bytes at ``round``."""


class NullProgress(ProgressReporter):
    """The do-nothing default."""


class LogProgress(ProgressReporter):
    """Human-readable one-line progress on a text stream."""

    def __init__(self, label: str = "trials", stream: Optional[TextIO] = None) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self._started = 0.0

    def _emit(self, message: str) -> None:
        self.stream.write(f"[{self.label}] {message}\n")
        self.stream.flush()

    def on_start(self, total: int, workers: int) -> None:
        """Log the batch size and execution mode."""
        self._started = time.perf_counter()
        mode = f"{workers} workers" if workers > 1 else "serial"
        self._emit(f"running {total} trials ({mode})")

    def on_progress(self, done: int, total: int) -> None:
        """Log completed-trial counts as chunks finish."""
        self._emit(f"{done}/{total} trials done")

    def on_cache_hit(self, total: int) -> None:
        """Log that the batch was served from the store."""
        self._emit(f"cache hit: {total} trials loaded from store")

    def on_fallback(self, reason: str) -> None:
        """Log a downgrade to the serial path and why."""
        self._emit(f"falling back to serial execution: {reason}")

    def on_finish(self, done: int, elapsed: float) -> None:
        """Log the final count and wall-clock."""
        self._emit(f"finished {done} trials in {elapsed:.1f}s")

    def on_snapshot_save_error(self, error: str) -> None:
        """Log a failed best-effort snapshot save (once per backbone)."""
        self._emit(f"snapshot save failed (results unaffected): {error}")

    def on_partial_fallback(self, done: int, total: int, reason: str) -> None:
        """Log a mid-batch pool failure and how much work survives."""
        self._emit(
            f"pool failed after {done}/{total} trials; "
            f"re-running the remaining {total - done} serially: {reason}"
        )

    def on_worker_connect(self, host: str, pid: int) -> None:
        """Log a completed cluster-worker handshake."""
        self._emit(f"connected to worker {host} (pid {pid})")

    def on_worker_lost(self, host: str, reason: str) -> None:
        """Log a cluster worker declared dead after exhausted retries."""
        self._emit(f"lost worker {host}: {reason}")

    def on_chunk_migrated(self, chunk: int, from_host: str, to_host: str) -> None:
        """Log a chunk migrating off a dead host."""
        self._emit(f"chunk {chunk} migrated {from_host} -> {to_host}")

    def on_heartbeat_miss(self, host: str, misses: int, threshold: int) -> None:
        """Log a missed liveness ping with the running miss count."""
        self._emit(f"heartbeat miss {misses}/{threshold} for worker {host}")

    def on_fault_injected(self, host: str, kind: str, detail: str) -> None:
        """Log an injected chaos fault firing on a worker."""
        self._emit(f"fault injected on {host}: {kind} ({detail})")


class TelemetryCollector(ProgressReporter):
    """Records every callback as an event dict — for tests and tooling."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def _record(self, event: str, **data: Any) -> None:
        # ``event`` deliberately avoids colliding with batch-meta field names
        # ("kind", "tag", ...), which are splatted in via ``**data``.
        self.events.append({"event": event, **data})

    def on_start(self, total: int, workers: int) -> None:
        """Record a start event."""
        self._record("start", total=total, workers=workers)

    def on_progress(self, done: int, total: int) -> None:
        """Record a progress event."""
        self._record("progress", done=done, total=total)

    def on_cache_hit(self, total: int) -> None:
        """Record a cache-hit event."""
        self._record("cache_hit", total=total)

    def on_fallback(self, reason: str) -> None:
        """Record a fallback event."""
        self._record("fallback", reason=reason)

    def on_finish(self, done: int, elapsed: float) -> None:
        """Record a finish event."""
        self._record("finish", done=done, elapsed=elapsed)

    def on_batch_meta(self, meta: Mapping[str, Any]) -> None:
        """Record a batch-identity event."""
        self._record("batch_meta", **dict(meta))

    def on_chunk_start(self, chunk: int, trials: int, boundary: Optional[int] = None) -> None:
        """Record a chunk-submission event."""
        self._record("chunk_start", chunk=chunk, trials=trials, boundary=boundary)

    def on_chunk_done(self, chunk: int, results: Sequence[Any]) -> None:
        """Record a chunk-completion event (result count only)."""
        self._record("chunk_done", chunk=chunk, trials=len(results))

    def on_snapshot_boundary(self, target: int, seconds: float, outcome: str) -> None:
        """Record a snapshot-boundary resolution event."""
        self._record("snapshot_boundary", target=target, seconds=seconds, outcome=outcome)

    def on_snapshot_save_error(self, error: str) -> None:
        """Record a failed best-effort snapshot save."""
        self._record("snapshot_save_error", error=error)

    def on_partial_fallback(self, done: int, total: int, reason: str) -> None:
        """Record a mid-batch partial fallback."""
        self._record("partial_fallback", done=done, total=total, reason=reason)

    def on_worker_connect(self, host: str, pid: int) -> None:
        """Record a cluster-worker handshake."""
        self._record("worker_connect", host=host, pid=pid)

    def on_worker_lost(self, host: str, reason: str) -> None:
        """Record a cluster worker declared dead."""
        self._record("worker_lost", host=host, reason=reason)

    def on_chunk_migrated(self, chunk: int, from_host: str, to_host: str) -> None:
        """Record a chunk migration off a dead host."""
        self._record("chunk_migrated", chunk=chunk, from_host=from_host, to_host=to_host)

    def on_steal(self, chunk: int, from_host: str, to_host: str) -> None:
        """Record a work-steal between hosts."""
        self._record("steal", chunk=chunk, from_host=from_host, to_host=to_host)

    def on_heartbeat_miss(self, host: str, misses: int, threshold: int) -> None:
        """Record a missed liveness ping."""
        self._record("heartbeat_miss", host=host, misses=misses, threshold=threshold)

    def on_fault_injected(self, host: str, kind: str, detail: str) -> None:
        """Record an injected chaos fault."""
        self._record("fault_injected", host=host, kind=kind, detail=detail)

    def on_service_start(self, meta: Mapping[str, Any]) -> None:
        """Record a service boot/restore."""
        self._record("service_start", **dict(meta))

    def on_estimate_served(
        self, families: Sequence[str], round: int, staleness: Optional[int]
    ) -> None:
        """Record an admitted estimate read."""
        self._record(
            "estimate_served", families=list(families), round=round, staleness=staleness
        )

    def on_ingest_dropped(self, dropped: int, queued: int) -> None:
        """Record ingest load-shedding."""
        self._record("ingest_dropped", dropped=dropped, queued=queued)

    def on_snapshot_checkpoint(
        self, round: int, path: str, bytes: int, seconds: float
    ) -> None:
        """Record a service checkpoint write."""
        self._record(
            "snapshot_checkpoint", round=round, path=path, bytes=bytes, seconds=seconds
        )

    def count(self, kind: str) -> int:
        """Number of recorded events of ``kind``."""
        return sum(1 for ev in self.events if ev["event"] == kind)


class TeeProgress(ProgressReporter):
    """Fan every callback out to several reporters (e.g. log + journal)."""

    def __init__(self, reporters: Sequence[ProgressReporter]) -> None:
        self.reporters = list(reporters)

    def on_start(self, total: int, workers: int) -> None:
        """Forward to every reporter."""
        for r in self.reporters:
            r.on_start(total, workers)

    def on_progress(self, done: int, total: int) -> None:
        """Forward to every reporter."""
        for r in self.reporters:
            r.on_progress(done, total)

    def on_cache_hit(self, total: int) -> None:
        """Forward to every reporter."""
        for r in self.reporters:
            r.on_cache_hit(total)

    def on_fallback(self, reason: str) -> None:
        """Forward to every reporter."""
        for r in self.reporters:
            r.on_fallback(reason)

    def on_finish(self, done: int, elapsed: float) -> None:
        """Forward to every reporter."""
        for r in self.reporters:
            r.on_finish(done, elapsed)

    def on_batch_meta(self, meta: Mapping[str, Any]) -> None:
        """Forward to every reporter."""
        for r in self.reporters:
            r.on_batch_meta(meta)

    def on_chunk_start(self, chunk: int, trials: int, boundary: Optional[int] = None) -> None:
        """Forward to every reporter."""
        for r in self.reporters:
            r.on_chunk_start(chunk, trials, boundary)

    def on_chunk_done(self, chunk: int, results: Sequence[Any]) -> None:
        """Forward to every reporter."""
        for r in self.reporters:
            r.on_chunk_done(chunk, results)

    def on_snapshot_boundary(self, target: int, seconds: float, outcome: str) -> None:
        """Forward to every reporter."""
        for r in self.reporters:
            r.on_snapshot_boundary(target, seconds, outcome)

    def on_snapshot_save_error(self, error: str) -> None:
        """Forward to every reporter."""
        for r in self.reporters:
            r.on_snapshot_save_error(error)

    def on_partial_fallback(self, done: int, total: int, reason: str) -> None:
        """Forward to every reporter (no on_fallback double-delegation)."""
        for r in self.reporters:
            r.on_partial_fallback(done, total, reason)

    def on_worker_connect(self, host: str, pid: int) -> None:
        """Forward to every reporter."""
        for r in self.reporters:
            r.on_worker_connect(host, pid)

    def on_worker_lost(self, host: str, reason: str) -> None:
        """Forward to every reporter."""
        for r in self.reporters:
            r.on_worker_lost(host, reason)

    def on_chunk_migrated(self, chunk: int, from_host: str, to_host: str) -> None:
        """Forward to every reporter."""
        for r in self.reporters:
            r.on_chunk_migrated(chunk, from_host, to_host)

    def on_steal(self, chunk: int, from_host: str, to_host: str) -> None:
        """Forward to every reporter."""
        for r in self.reporters:
            r.on_steal(chunk, from_host, to_host)

    def on_heartbeat_miss(self, host: str, misses: int, threshold: int) -> None:
        """Forward to every reporter."""
        for r in self.reporters:
            r.on_heartbeat_miss(host, misses, threshold)

    def on_fault_injected(self, host: str, kind: str, detail: str) -> None:
        """Forward to every reporter."""
        for r in self.reporters:
            r.on_fault_injected(host, kind, detail)

    def on_service_start(self, meta: Mapping[str, Any]) -> None:
        """Forward to every reporter."""
        for r in self.reporters:
            r.on_service_start(meta)

    def on_estimate_served(
        self, families: Sequence[str], round: int, staleness: Optional[int]
    ) -> None:
        """Forward to every reporter."""
        for r in self.reporters:
            r.on_estimate_served(families, round, staleness)

    def on_ingest_dropped(self, dropped: int, queued: int) -> None:
        """Forward to every reporter."""
        for r in self.reporters:
            r.on_ingest_dropped(dropped, queued)

    def on_snapshot_checkpoint(
        self, round: int, path: str, bytes: int, seconds: float
    ) -> None:
        """Forward to every reporter."""
        for r in self.reporters:
            r.on_snapshot_checkpoint(round, path, bytes, seconds)
