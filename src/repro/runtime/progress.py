"""Lightweight progress/telemetry callbacks for trial execution.

The executor reports through a :class:`ProgressReporter`; the default
:class:`NullProgress` costs nothing, :class:`LogProgress` writes one-line
updates to a stream (stderr by default, so CSV/chart output on stdout
stays clean), and :class:`TelemetryCollector` records every event for
tests and tooling.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional, TextIO

__all__ = [
    "LogProgress",
    "NullProgress",
    "ProgressReporter",
    "TelemetryCollector",
]


class ProgressReporter:
    """Callback interface invoked by the executor and the trials API."""

    def on_start(self, total: int, workers: int) -> None:
        """A batch of ``total`` trials is about to run on ``workers`` workers."""

    def on_progress(self, done: int, total: int) -> None:
        """``done`` of ``total`` trials have completed."""

    def on_cache_hit(self, total: int) -> None:
        """The whole batch was served from the results store."""

    def on_fallback(self, reason: str) -> None:
        """Parallel execution was abandoned in favour of the serial path."""

    def on_finish(self, done: int, elapsed: float) -> None:
        """The batch finished (``elapsed`` wall-clock seconds)."""


class NullProgress(ProgressReporter):
    """The do-nothing default."""


class LogProgress(ProgressReporter):
    """Human-readable one-line progress on a text stream."""

    def __init__(self, label: str = "trials", stream: Optional[TextIO] = None) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self._started = 0.0

    def _emit(self, message: str) -> None:
        self.stream.write(f"[{self.label}] {message}\n")
        self.stream.flush()

    def on_start(self, total: int, workers: int) -> None:
        """Log the batch size and execution mode."""
        self._started = time.perf_counter()
        mode = f"{workers} workers" if workers > 1 else "serial"
        self._emit(f"running {total} trials ({mode})")

    def on_progress(self, done: int, total: int) -> None:
        """Log completed-trial counts as chunks finish."""
        self._emit(f"{done}/{total} trials done")

    def on_cache_hit(self, total: int) -> None:
        """Log that the batch was served from the store."""
        self._emit(f"cache hit: {total} trials loaded from store")

    def on_fallback(self, reason: str) -> None:
        """Log a downgrade to the serial path and why."""
        self._emit(f"falling back to serial execution: {reason}")

    def on_finish(self, done: int, elapsed: float) -> None:
        """Log the final count and wall-clock."""
        self._emit(f"finished {done} trials in {elapsed:.1f}s")


class TelemetryCollector(ProgressReporter):
    """Records every callback as an event dict — for tests and tooling."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def _record(self, kind: str, **data: Any) -> None:
        self.events.append({"event": kind, **data})

    def on_start(self, total: int, workers: int) -> None:
        """Record a start event."""
        self._record("start", total=total, workers=workers)

    def on_progress(self, done: int, total: int) -> None:
        """Record a progress event."""
        self._record("progress", done=done, total=total)

    def on_cache_hit(self, total: int) -> None:
        """Record a cache-hit event."""
        self._record("cache_hit", total=total)

    def on_fallback(self, reason: str) -> None:
        """Record a fallback event."""
        self._record("fallback", reason=reason)

    def on_finish(self, done: int, elapsed: float) -> None:
        """Record a finish event."""
        self._record("finish", done=done, elapsed=elapsed)

    def count(self, kind: str) -> int:
        """Number of recorded events of ``kind``."""
        return sum(1 for ev in self.events if ev["event"] == kind)
