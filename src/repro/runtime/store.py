"""Content-addressed on-disk results store.

An experiment's full configuration (trial kind, seeds, overlay/estimator
specs, churn payloads, …) is canonicalized to JSON and hashed with
SHA-256; the digest addresses a JSON artifact under the store root.  Equal
configurations therefore always map to the same artifact, regardless of
where or when they ran — a second invocation of the same experiment is a
cache hit.

Artifacts embed a schema version; bumping :data:`SCHEMA_VERSION`
invalidates every previously written artifact at once (old files are
simply misses, and ``clear()`` reclaims the space).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import pathlib
import tempfile
from typing import Any, Dict, List, Mapping, Optional, Union

from .trials import TrialResult

__all__ = ["SCHEMA_VERSION", "ResultsStore", "canonical_json", "content_key"]

#: Bump when the artifact layout or the meaning of a config changes.
SCHEMA_VERSION = 1


def _normalize(obj: Any) -> Any:
    """Reduce ``obj`` to plain JSON types with deterministic structure."""
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, (int, float)):
        # bools already handled; numpy scalars coerce via float()/int()
        return obj
    if isinstance(obj, (list, tuple)):
        return [_normalize(v) for v in obj]
    if isinstance(obj, Mapping):
        return {str(k): _normalize(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if hasattr(obj, "item") and callable(obj.item):  # numpy scalar
        return obj.item()
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for content addressing")


def _encode_floats(obj: Any) -> Any:
    """Replace non-finite floats with tagged strings so artifacts stay
    RFC-8259-valid JSON (``json.dump`` would otherwise emit bare ``NaN``
    literals that non-Python consumers reject)."""
    if isinstance(obj, float) and not math.isfinite(obj):
        return "NaN" if math.isnan(obj) else ("Infinity" if obj > 0 else "-Infinity")
    if isinstance(obj, list):
        return [_encode_floats(v) for v in obj]
    if isinstance(obj, dict):
        return {k: _encode_floats(v) for k, v in obj.items()}
    return obj


def _decode_floats(obj: Any) -> Any:
    """Inverse of :func:`_encode_floats` (applied to loaded results)."""
    if obj in ("NaN", "Infinity", "-Infinity"):
        return float(obj)
    if isinstance(obj, list):
        return [_decode_floats(v) for v in obj]
    if isinstance(obj, dict):
        return {k: _decode_floats(v) for k, v in obj.items()}
    return obj


def canonical_json(config: Any) -> str:
    """Deterministic JSON encoding: sorted keys, minimal separators."""
    return json.dumps(
        _normalize(config), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def content_key(config: Any) -> str:
    """SHA-256 content address of a configuration (schema-versioned)."""
    payload = canonical_json({"schema": SCHEMA_VERSION, "config": config})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultsStore:
    """Directory-backed store mapping experiment configs to trial results.

    Layout: ``<root>/<key[:2]>/<key>.json`` (two-level fan-out keeps
    directories small at tens of thousands of artifacts).  Writes are
    atomic (tempfile + ``os.replace``) so a crashed run never leaves a
    torn artifact behind.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = pathlib.Path(root)

    # -- addressing ----------------------------------------------------

    def key_for(self, config: Any) -> str:
        """Content address of ``config``."""
        return content_key(config)

    def path_for(self, config: Any) -> pathlib.Path:
        """On-disk location the artifact for ``config`` lives at."""
        key = self.key_for(config)
        return self.root / key[:2] / f"{key}.json"

    # -- IO ------------------------------------------------------------

    def save(
        self,
        config: Any,
        results: List[TrialResult],
        meta: Optional[Dict[str, Any]] = None,
    ) -> pathlib.Path:
        """Persist ``results`` under the content address of ``config``."""
        path = self.path_for(config)
        path.parent.mkdir(parents=True, exist_ok=True)
        artifact = {
            "schema": SCHEMA_VERSION,
            "config": _normalize(config),
            "meta": meta or {},
            "results": _encode_floats([r.as_dict() for r in results]),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(artifact, fh, allow_nan=False)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def load(self, config: Any) -> Optional[List[TrialResult]]:
        """Results previously saved for ``config``, or ``None`` on a miss.

        Unreadable or schema-mismatched artifacts are misses, never
        errors: the store must always be safe to point at a stale cache
        directory.
        """
        path = self.path_for(config)
        try:
            with path.open() as fh:
                artifact = json.load(fh)
        except (OSError, ValueError):
            return None
        if artifact.get("schema") != SCHEMA_VERSION:
            return None
        try:
            return [
                TrialResult.from_dict(item)
                for item in _decode_floats(artifact["results"])
            ]
        except (KeyError, TypeError, ValueError):
            return None

    def contains(self, config: Any) -> bool:
        """True when an artifact for ``config`` exists on disk."""
        return self.path_for(config).exists()

    def invalidate(self, config: Any) -> bool:
        """Delete the artifact for ``config``; returns True if one existed."""
        path = self.path_for(config)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    def clear(self) -> int:
        """Delete every artifact under the root; returns the count removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.json"):
            path.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultsStore(root={str(self.root)!r}, artifacts={len(self)})"
