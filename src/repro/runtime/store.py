"""Content-addressed on-disk results store, with lifecycle tooling.

An experiment's full configuration (trial kind, seeds, overlay/estimator
specs, churn payloads, …) is canonicalized to JSON and hashed with
SHA-256; the digest addresses a JSON artifact under the store root.  Equal
configurations therefore always map to the same artifact, regardless of
where or when they ran — a second invocation of the same experiment is a
cache hit.

Cache-key semantics — what invalidates an artifact
--------------------------------------------------
The content address covers *everything that determines the trial results*:

* the trial kind and the exact ``(index, stream)`` pairs of the batch,
* the master ``hub_seed`` (and ``overlay_seed`` when distinct),
* the declarative overlay spec (builder name + all parameters),
* the declarative estimator spec (kind + all parameters),
* kind-specific ``params`` (churn-trace payloads, horizons, fresh-stream
  names, rounds, …),
* :data:`SCHEMA_VERSION`.

Changing any of these — a different seed, one more repetition, a new
estimator parameter — therefore produces a *different* key: the old
artifact is never overwritten, it simply stops being addressed (it remains
on disk until :meth:`ResultsStore.gc` or :meth:`ResultsStore.clear`
reclaims it).  Conversely, values that do **not** enter the key never
invalidate: worker count, chunk size, progress reporting, the experiment
*tag* (display metadata), and the wall-clock of the run.

Bumping :data:`SCHEMA_VERSION` invalidates every previously written
artifact at once (old files are simply misses until reclaimed).

Lifecycle tooling
-----------------
:meth:`ResultsStore.artifacts` enumerates what is on disk (key, tag, size,
age, trial count), :meth:`ResultsStore.stats` aggregates it, and
:meth:`ResultsStore.gc` evicts by age and/or total-size budget — the
``repro-experiment cache ls|stats|gc`` subcommands are thin wrappers over
these.  A cache *hit* bumps the artifact's access time (its ``atime``,
never the ``mtime``), so recency of use is observable without rewriting
artifacts.

Besides result batches the store holds replay-state *snapshots*
(:meth:`ResultsStore.save_snapshot`/:meth:`ResultsStore.load_snapshot`,
``docs/SNAPSHOTS.md``): separately addressed, marked
``payload: "snapshot"`` in their headers, accounted apart from result
bytes by :meth:`ResultsStore.stats`, and reclaimed by ``gc`` like
anything else — they are recomputable accelerators, never source data.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import pathlib
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

from .provenance import detect_git_revision, summarize_results
from .trials import TrialResult

__all__ = [
    "SCHEMA_VERSION",
    "ArtifactInfo",
    "GCReport",
    "ResultsStore",
    "StoreStats",
    "canonical_json",
    "content_key",
    "group_key",
]

#: Bump when the artifact layout or the meaning of a config changes.
SCHEMA_VERSION = 1


def _normalize(obj: Any) -> Any:
    """Reduce ``obj`` to plain JSON types with deterministic structure."""
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, (int, float)):
        # bools already handled; numpy scalars coerce via float()/int()
        return obj
    if isinstance(obj, (list, tuple)):
        return [_normalize(v) for v in obj]
    if isinstance(obj, Mapping):
        return {str(k): _normalize(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if hasattr(obj, "item") and callable(obj.item):  # numpy scalar
        return obj.item()
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for content addressing")


def _encode_floats(obj: Any) -> Any:
    """Replace non-finite floats with tagged strings so artifacts stay
    RFC-8259-valid JSON (``json.dump`` would otherwise emit bare ``NaN``
    literals that non-Python consumers reject)."""
    if isinstance(obj, float) and not math.isfinite(obj):
        return "NaN" if math.isnan(obj) else ("Infinity" if obj > 0 else "-Infinity")
    if isinstance(obj, list):
        return [_encode_floats(v) for v in obj]
    if isinstance(obj, dict):
        return {k: _encode_floats(v) for k, v in obj.items()}
    return obj


def _decode_floats(obj: Any) -> Any:
    """Inverse of :func:`_encode_floats` (applied to loaded results)."""
    if obj in ("NaN", "Infinity", "-Infinity"):
        return float(obj)
    if isinstance(obj, list):
        return [_decode_floats(v) for v in obj]
    if isinstance(obj, dict):
        return {k: _decode_floats(v) for k, v in obj.items()}
    return obj


def canonical_json(config: Any) -> str:
    """Deterministic JSON encoding: sorted keys, minimal separators."""
    return json.dumps(
        _normalize(config), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def content_key(config: Any) -> str:
    """SHA-256 content address of a configuration (schema-versioned)."""
    payload = canonical_json({"schema": SCHEMA_VERSION, "config": config})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: Config keys that identify a *sampling* of an experiment rather than the
#: experiment itself; removed before hashing the logical-experiment group.
_SEED_KEYS = frozenset({"hub_seed", "overlay_seed"})


def group_key(config: Any) -> str:
    """Identity of the *logical experiment* behind a configuration.

    The SHA-256 of the config with its seed fields removed (and, unlike
    :func:`content_key`, without the schema version mixed in): artifacts
    produced at different seeds — or by differently-seeded CI runs — share
    a group, which is what lets the trend tracker join them across git
    revisions.  Changing any substantive parameter (overlay size, estimator
    settings, trial count) still changes the group.
    """
    normalized = _normalize(config)
    if isinstance(normalized, dict):
        normalized = {k: v for k, v in normalized.items() if k not in _SEED_KEYS}
    payload = canonical_json(normalized)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ArtifactInfo:
    """Metadata of one on-disk artifact (one cached experiment batch).

    ``created`` is the artifact's mtime (set at save/refresh, never on
    read); ``last_access`` its atime (bumped on every cache hit).  ``tag``
    is the human experiment label recorded in the artifact's meta block —
    display-only, never part of the content address.

    ``revision``/``group``/``saved_at``/``metrics`` are the provenance
    fields the trend tracker joins on; artifacts written before they
    existed enumerate with empty defaults (reads stay backward
    compatible).
    """

    key: str
    path: pathlib.Path
    size_bytes: int
    created: float
    last_access: float
    tag: str = ""
    trials: int = 0
    schema: Optional[int] = None
    #: What the artifact holds: ``"results"`` (a trial batch) or
    #: ``"snapshot"`` (a replay-state boundary, see docs/SNAPSHOTS.md).
    payload: str = "results"
    #: Git commit the producing code was at ("" when unknown).
    revision: str = ""
    #: Logical-experiment identity (:func:`group_key`; "" on old artifacts).
    group: str = ""
    #: Wall-clock of the save (0.0 on old artifacts; survives mtime games).
    saved_at: float = 0.0
    #: Scalar metric summary: per-metric ``{mean, std, min, max, n}``
    #: blocks from :func:`summarize_results` plus batch-level scalars the
    #: producer adds (``elapsed_seconds`` from :func:`run_trials`).
    metrics: Optional[Dict[str, Any]] = None

    def age_seconds(self, now: Optional[float] = None) -> float:
        """Seconds since the artifact was written (or force-refreshed)."""
        return max(0.0, (time.time() if now is None else now) - self.created)

    @property
    def hit(self) -> bool:
        """True when the artifact has served at least one cache hit."""
        return self.last_access > self.created


@dataclass(frozen=True)
class StoreStats:
    """Aggregate view of a store directory (``cache stats``).

    ``artifacts``/``total_bytes`` cover *everything* on disk — that is
    what a ``gc --max-size`` budget applies to — while
    ``snapshot_artifacts``/``snapshot_bytes`` break out the replay-state
    snapshots so result payloads and snapshot payloads can be accounted
    separately (``result_bytes = total_bytes - snapshot_bytes``).
    """

    artifacts: int
    total_bytes: int
    trials: int
    hit_artifacts: int
    stale_schema: int
    oldest_age_seconds: float
    newest_age_seconds: float
    by_tag: Dict[str, Dict[str, int]] = field(default_factory=dict)
    snapshot_artifacts: int = 0
    snapshot_bytes: int = 0


@dataclass(frozen=True)
class GCReport:
    """Outcome of one :meth:`ResultsStore.gc` pass.

    ``evicted`` lists the artifacts removed (or, under ``dry_run``, the
    ones that *would* be); ``kept``/``kept_bytes`` describe what survives.
    """

    evicted: List[ArtifactInfo]
    kept: int
    kept_bytes: int
    dry_run: bool

    @property
    def evicted_bytes(self) -> int:
        """Total bytes the pass reclaimed (or would reclaim)."""
        return sum(a.size_bytes for a in self.evicted)


class ResultsStore:
    """Directory-backed store mapping experiment configs to trial results.

    Layout: ``<root>/<key[:2]>/<key>.json`` (two-level fan-out keeps
    directories small at tens of thousands of artifacts).  Writes are
    atomic (tempfile + ``os.replace``) so a crashed run never leaves a
    torn artifact behind.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = pathlib.Path(root)

    # -- addressing ----------------------------------------------------

    def key_for(self, config: Any) -> str:
        """Content address of ``config``."""
        return content_key(config)

    def path_for(self, config: Any) -> pathlib.Path:
        """On-disk location the artifact for ``config`` lives at."""
        key = self.key_for(config)
        return self.root / key[:2] / f"{key}.json"

    # -- IO ------------------------------------------------------------

    def save(
        self,
        config: Any,
        results: List[TrialResult],
        meta: Optional[Dict[str, Any]] = None,
    ) -> pathlib.Path:
        """Persist ``results`` under the content address of ``config``.

        The header (schema + meta) is self-describing for trend tracking:
        ``git_revision``, ``store_schema_version``, ``group``, ``saved_at``
        and a scalar ``metrics`` summary are stamped in automatically when
        the caller hasn't provided them, so *every* save — not only those
        routed through :func:`~repro.runtime.api.run_trials` — yields an
        artifact the trend tracker can join on without parsing results.
        """
        path = self.path_for(config)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = dict(meta or {})
        meta.setdefault("git_revision", detect_git_revision())
        meta.setdefault("store_schema_version", SCHEMA_VERSION)
        meta.setdefault("group", group_key(config))
        meta.setdefault("saved_at", time.time())
        meta.setdefault("metrics", summarize_results(results))
        # Key order matters: schema and meta lead the document so that
        # artifacts() can enumerate a large store by reading bounded
        # prefixes instead of parsing every results payload.
        artifact = {
            "schema": SCHEMA_VERSION,
            "meta": meta,
            "config": _normalize(config),
            "results": _encode_floats([r.as_dict() for r in results]),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(artifact, fh, allow_nan=False)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def load(self, config: Any) -> Optional[List[TrialResult]]:
        """Results previously saved for ``config``, or ``None`` on a miss.

        Unreadable or schema-mismatched artifacts are misses, never
        errors: the store must always be safe to point at a stale cache
        directory.
        """
        path = self.path_for(config)
        try:
            with path.open() as fh:
                artifact = json.load(fh)
        except (OSError, ValueError):
            return None
        if artifact.get("schema") != SCHEMA_VERSION:
            return None
        try:
            results = [
                TrialResult.from_dict(item)
                for item in _decode_floats(artifact["results"])
            ]
        except (KeyError, TypeError, ValueError):
            return None
        self._record_hit(path)
        return results

    @staticmethod
    def _record_hit(path: pathlib.Path) -> None:
        """Bump the artifact's atime (mtime untouched) to mark a cache hit.

        Best-effort: a read-only store directory must not turn hits into
        errors.
        """
        try:
            st = path.stat()
            os.utime(path, ns=(time.time_ns(), st.st_mtime_ns))
        except OSError:  # pragma: no cover - filesystem-dependent
            pass

    def save_snapshot(
        self,
        config: Any,
        payload: Any,
        meta: Optional[Dict[str, Any]] = None,
    ) -> pathlib.Path:
        """Persist a replay-state snapshot under ``config``'s address.

        Snapshot configurations (see
        :func:`repro.runtime.snapshots.snapshot_config`) are disjoint from
        batch configurations by construction, so snapshot artifacts can
        never shadow result artifacts.  The header marks the artifact with
        ``payload: "snapshot"`` so lifecycle tooling (``cache ls|stats``)
        can account snapshot bytes separately from result bytes; ``gc``
        treats both uniformly — snapshots are pure accelerators that can
        always be recomputed.
        """
        path = self.path_for(config)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = dict(meta or {})
        meta["payload"] = "snapshot"
        meta.setdefault("git_revision", detect_git_revision())
        meta.setdefault("store_schema_version", SCHEMA_VERSION)
        meta.setdefault("saved_at", time.time())
        artifact = {
            "schema": SCHEMA_VERSION,
            "meta": meta,
            "config": _normalize(config),
            "snapshot": _encode_floats(payload),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(artifact, fh, allow_nan=False)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def load_snapshot(self, config: Any) -> Optional[Any]:
        """A snapshot previously saved for ``config``, or ``None`` on a miss.

        Like :meth:`load`, unreadable or schema-mismatched artifacts are
        misses, never errors, and a hit bumps the artifact's atime.
        """
        path = self.path_for(config)
        try:
            with path.open() as fh:
                artifact = json.load(fh)
        except (OSError, ValueError):
            return None
        if artifact.get("schema") != SCHEMA_VERSION or "snapshot" not in artifact:
            return None
        self._record_hit(path)
        return _decode_floats(artifact["snapshot"])

    def contains(self, config: Any) -> bool:
        """True when an artifact for ``config`` exists on disk."""
        return self.path_for(config).exists()

    def invalidate(self, config: Any) -> bool:
        """Delete the artifact for ``config``; returns True if one existed."""
        path = self.path_for(config)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    def clear(self) -> int:
        """Delete every artifact under the root; returns the count removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.json"):
            path.unlink()
            removed += 1
        return removed

    # -- lifecycle -----------------------------------------------------

    #: Prefix window for header-only artifact reads; schema + meta always
    #: fit (meta is a tag string and a trial count), results may not.
    _HEADER_PROBE_BYTES = 64 * 1024

    @classmethod
    def _read_header(cls, fh) -> Dict[str, Any]:
        """Schema/meta of an open artifact without parsing its results.

        Artifacts are written with ``schema`` and ``meta`` leading the
        document, so for large files a bounded prefix up to the ``config``
        key parses on its own; anything surprising (pre-reorder key
        layout, oversized meta, corrupt JSON) falls back to a full parse.
        """
        prefix = fh.read(cls._HEADER_PROBE_BYTES)
        if len(prefix) == cls._HEADER_PROBE_BYTES:
            cut = prefix.find('"config"')
            if cut > 0:
                try:
                    head = json.loads(prefix[:cut].rstrip().rstrip(",") + "}")
                except ValueError:
                    head = None
                if isinstance(head, dict) and "schema" in head and "meta" in head:
                    return head
            prefix += fh.read()
        return json.loads(prefix)

    def artifacts(self) -> List[ArtifactInfo]:
        """Enumerate every artifact on disk, oldest first.

        Reads only each artifact's header (schema + meta), not the trial
        payload, so ``cache ls``/``stats``/``gc`` stay cheap on large
        stores.  Unreadable files are skipped (consistent with
        :meth:`load` treating them as misses); artifacts written under a
        different schema version are still listed — with their recorded
        ``schema`` — so ``gc`` can reclaim them.
        """
        out: List[ArtifactInfo] = []
        if not self.root.exists():
            return out
        for path in sorted(self.root.glob("*/*.json")):
            try:
                st = path.stat()
                with path.open() as fh:
                    artifact = self._read_header(fh)
                # Enumeration must be side-effect free: undo any atime
                # update our own read may have caused (hits are recorded
                # exclusively by load()).
                os.utime(path, ns=(st.st_atime_ns, st.st_mtime_ns))
            except (OSError, ValueError):
                continue
            if not isinstance(artifact, Mapping):
                continue
            meta = artifact.get("meta")
            if not isinstance(meta, Mapping):
                meta = {}
            metrics = meta.get("metrics")
            if not isinstance(metrics, Mapping):
                metrics = None
            try:
                saved_at = float(meta.get("saved_at", 0.0) or 0.0)
            except (TypeError, ValueError):
                saved_at = 0.0
            out.append(
                ArtifactInfo(
                    key=path.stem,
                    path=path,
                    size_bytes=int(st.st_size),
                    created=float(st.st_mtime),
                    last_access=float(st.st_atime),
                    tag=str(meta.get("tag", "")),
                    trials=int(meta.get("trials", 0) or 0),
                    schema=artifact.get("schema"),
                    payload=str(meta.get("payload", "results") or "results"),
                    revision=str(meta.get("git_revision", "") or ""),
                    group=str(meta.get("group", "") or ""),
                    saved_at=saved_at,
                    metrics=dict(metrics) if metrics else None,
                )
            )
        out.sort(key=lambda a: (a.created, a.key))
        return out

    def stats(self, now: Optional[float] = None) -> StoreStats:
        """Aggregate size/usage metadata over all artifacts."""
        infos = self.artifacts()
        now = time.time() if now is None else now
        by_tag: Dict[str, Dict[str, int]] = {}
        for info in infos:
            tag = info.tag or "(untagged)"
            bucket = by_tag.setdefault(tag, {"artifacts": 0, "bytes": 0, "trials": 0})
            bucket["artifacts"] += 1
            bucket["bytes"] += info.size_bytes
            bucket["trials"] += info.trials
        ages = [info.age_seconds(now) for info in infos]
        snapshots = [i for i in infos if i.payload == "snapshot"]
        return StoreStats(
            artifacts=len(infos),
            total_bytes=sum(i.size_bytes for i in infos),
            trials=sum(i.trials for i in infos),
            hit_artifacts=sum(1 for i in infos if i.hit),
            stale_schema=sum(1 for i in infos if i.schema != SCHEMA_VERSION),
            oldest_age_seconds=max(ages) if ages else 0.0,
            newest_age_seconds=min(ages) if ages else 0.0,
            by_tag=by_tag,
            snapshot_artifacts=len(snapshots),
            snapshot_bytes=sum(i.size_bytes for i in snapshots),
        )

    def gc(
        self,
        max_age_seconds: Optional[float] = None,
        max_total_bytes: Optional[int] = None,
        dry_run: bool = False,
        now: Optional[float] = None,
    ) -> GCReport:
        """Evict artifacts by age and/or total-size budget.

        Policy, applied in order:

        1. every artifact *older* than ``max_age_seconds`` (by creation
           time, i.e. mtime — cache hits never extend an artifact's life)
           is evicted;
        2. if the survivors still exceed ``max_total_bytes``, the oldest
           survivors are evicted until the store fits the budget.

        With ``dry_run=True`` the same selection is computed and reported
        but nothing is deleted.  Empty fan-out directories left behind by a
        real pass are removed.
        """
        if max_age_seconds is not None and max_age_seconds < 0:
            raise ValueError(f"max_age_seconds must be >= 0, got {max_age_seconds}")
        if max_total_bytes is not None and max_total_bytes < 0:
            raise ValueError(f"max_total_bytes must be >= 0, got {max_total_bytes}")
        now = time.time() if now is None else now
        infos = self.artifacts()  # oldest first
        evicted: List[ArtifactInfo] = []
        kept: List[ArtifactInfo] = []
        for info in infos:
            if max_age_seconds is not None and info.age_seconds(now) > max_age_seconds:
                evicted.append(info)
            else:
                kept.append(info)
        if max_total_bytes is not None:
            total = sum(i.size_bytes for i in kept)
            cut = 0
            while total > max_total_bytes and cut < len(kept):
                # oldest-first eviction until the survivors fit the budget
                total -= kept[cut].size_bytes
                evicted.append(kept[cut])
                cut += 1
            kept = kept[cut:]
        if not dry_run:
            for info in evicted:
                try:
                    info.path.unlink()
                except FileNotFoundError:
                    pass
            self._prune_empty_dirs()
        return GCReport(
            evicted=evicted,
            kept=len(kept),
            kept_bytes=sum(i.size_bytes for i in kept),
            dry_run=dry_run,
        )

    def _prune_empty_dirs(self) -> None:
        """Drop fan-out directories emptied by eviction (best-effort)."""
        if not self.root.exists():
            return
        for sub in self.root.iterdir():
            if sub.is_dir():
                try:
                    sub.rmdir()  # only succeeds when empty
                except OSError:
                    pass

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultsStore(root={str(self.root)!r}, artifacts={len(self)})"
