"""Trend tracking over content-addressed results stores.

The store answers "have I run this exact experiment?"; this module answers
the longitudinal question a reproduction actually lives on: *are the
numbers moving?*  It walks one or more cache directories, groups artifacts
by **logical experiment** — the ``(tag, group)`` pair, where ``group`` is
the config hash with seeds removed (:func:`~repro.runtime.store.group_key`)
— joins them across git revisions and seed sets, and quantifies drift in
estimation accuracy (*quality*), message overhead (*messages*) and compute
time (*elapsed_seconds*) with the bootstrap machinery from
:mod:`repro.analysis.validation`.

Because identical configs content-address to the same file, a single store
can hold at most one artifact per (config, seed): cross-revision history
therefore lives either in *sibling stores* (the CI layout — one store
directory per revision under a persisted parent, see
:func:`discover_stores`) or in artifacts whose seeds differ.  Both join
naturally here since grouping ignores seeds and store boundaries.

Three consumers sit on top (the ``repro-experiment trends`` CLI family):

* ``report``  — per-group revision trajectory with drift verdicts;
* ``compare`` — two named revisions joined head-to-head;
* ``check``   — current results gated against a committed *baseline*
  (JSON emitted by :func:`make_baseline`): a metric whose mean leaves the
  baseline's bootstrap interval fails the check, which is what turns the
  benchmark suite into a CI regression gate.

Determinism: every bootstrap here is seeded from the (group, metric,
revision) identity via :func:`~repro.sim.rng.derive_seed`, so a baseline
generated on one machine reproduces bit-identically on any other — a
drifting check always means the *results* moved, never the statistics.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..analysis.validation import BootstrapCI, bootstrap_mean_ci, variance_ratio_test
from ..sim.rng import derive_seed
from .provenance import PHASE_METRICS, metric_values, summarize_results
from .store import ArtifactInfo, ResultsStore, _decode_floats, group_key
from .trials import TrialResult

__all__ = [
    "BASELINE_SCHEMA",
    "TREND_METRICS",
    "CheckOutcome",
    "CheckReport",
    "GroupTrend",
    "MetricComparison",
    "MetricTrend",
    "RevisionPoint",
    "TrendRecord",
    "TrendReport",
    "check_baseline",
    "compare_revisions",
    "discover_stores",
    "load_baseline",
    "make_baseline",
    "scan_stores",
    "trend_report",
]

#: Metrics the tracker knows how to extract.  ``quality`` and ``messages``
#: are per-trial samples; ``elapsed_seconds`` and the ``phase_*`` timings
#: (worker-side phase profiles, see :mod:`repro.runtime.obs`) are
#: header-level samples (machine-dependent — reported, but excluded from
#: CI gating defaults).
TREND_METRICS: Tuple[str, ...] = (
    "quality",
    "messages",
    "elapsed_seconds",
) + PHASE_METRICS

#: Metrics deterministic at fixed seeds — the sensible CI gate set.
DEFAULT_CHECK_METRICS: Tuple[str, ...] = ("quality", "messages")

#: Version stamp of the baseline JSON layout.
BASELINE_SCHEMA = 1

#: Label shown for artifacts that predate revision stamping.
UNKNOWN_REVISION = "(unknown)"


# ----------------------------------------------------------------------
# Scanning and joining
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TrendRecord:
    """One artifact's contribution to the trend join.

    A thin view over :class:`ArtifactInfo` with the provenance fields
    resolved: artifacts written before headers carried ``group``/``metrics``
    are *backfilled* by one full read of the file (config → group hash,
    results → metric summary), so pre-provenance caches still join.
    """

    info: ArtifactInfo
    root: pathlib.Path
    group: str
    revision: str
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def tag(self) -> str:
        """The artifact's experiment label (half of the group identity)."""
        return self.info.tag

    @property
    def saved_at(self) -> float:
        """Best-effort save instant: header stamp, else file mtime."""
        return self.info.saved_at or self.info.created

    @property
    def uid(self) -> str:
        """Unique identity of the record across stores.

        The content *key* is not enough: the same config run at two
        revisions lives at the same key in two sibling stores, so joins
        must discriminate by path.
        """
        return str(self.info.path)


def _is_store_root(path: pathlib.Path) -> bool:
    """True when ``path`` holds the store's two-level fan-out layout."""
    try:
        return any(path.glob("??/*.json"))
    except OSError:  # pragma: no cover - unreadable directory
        return False


def discover_stores(root: Union[str, pathlib.Path], max_depth: int = 2) -> List[pathlib.Path]:
    """Store roots at or below ``root`` (depth-limited, sorted).

    Accepts either a store directory itself or a parent holding one store
    per revision (the CI cache layout ``<parent>/<git-sha>/``); nested
    stores under a store root are not searched.
    """
    root = pathlib.Path(root)
    found: List[pathlib.Path] = []

    def walk(path: pathlib.Path, depth: int) -> None:
        """Collect store roots under ``path`` up to ``max_depth``."""
        if _is_store_root(path):
            found.append(path)
            return
        if depth >= max_depth or not path.is_dir():
            return
        for child in sorted(p for p in path.iterdir() if p.is_dir()):
            walk(child, depth + 1)

    walk(root, 0)
    return found


def _backfill(info: ArtifactInfo) -> Tuple[str, Dict[str, Any]]:
    """Group hash + metric summary for a pre-provenance artifact.

    The one place enumeration pays for a full parse — only for artifacts
    old enough to lack header provenance, and never fatally (unreadable
    files yield empty provenance and are dropped by the join).
    """
    try:
        with info.path.open() as fh:
            artifact = json.load(fh)
        group = group_key(artifact["config"])
        results = [
            TrialResult.from_dict(item)
            for item in _decode_floats(artifact["results"])
        ]
    except (OSError, ValueError, KeyError, TypeError):
        return "", {}
    return group, summarize_results(results)


def scan_stores(
    roots: Sequence[Union[str, pathlib.Path]],
) -> List[TrendRecord]:
    """Enumerate every artifact under ``roots`` as trend records.

    Each root may be a store or a parent of stores (see
    :func:`discover_stores`).  Enumeration is header-only except for
    legacy artifacts, which are backfilled by one full read.  Records
    without a resolvable group are skipped.
    """
    records: List[TrendRecord] = []
    for root in roots:
        for store_root in discover_stores(root):
            for info in ResultsStore(store_root).artifacts():
                if info.payload == "snapshot":
                    # Replay-state snapshots (docs/SNAPSHOTS.md) carry no
                    # metrics and must not masquerade as experiment runs.
                    continue
                group = info.group
                metrics: Dict[str, Any] = dict(info.metrics or {})
                if not group:
                    group, metrics = _backfill(info)
                    if not group:
                        continue
                records.append(
                    TrendRecord(
                        info=info,
                        root=store_root,
                        group=group,
                        revision=info.revision or UNKNOWN_REVISION,
                        metrics=metrics,
                    )
                )
    records.sort(key=lambda r: (r.tag, r.group, r.saved_at, r.info.key))
    return records


def group_records(
    records: Iterable[TrendRecord],
) -> Dict[Tuple[str, str], List[TrendRecord]]:
    """Join records into logical experiments keyed by ``(tag, group)``."""
    out: Dict[Tuple[str, str], List[TrendRecord]] = {}
    for record in records:
        out.setdefault((record.tag, record.group), []).append(record)
    return out


def record_metric_samples(record: TrendRecord) -> Dict[str, List[float]]:
    """Raw per-trial samples of one artifact, loaded from its payload.

    ``quality``/``messages`` come from the stored trial results (full
    read); ``elapsed_seconds`` is a single header-level sample.  Artifacts
    whose payload no longer parses contribute nothing (consistent with the
    store treating them as misses).
    """
    out: Dict[str, List[float]] = {}
    try:
        with record.info.path.open() as fh:
            artifact = json.load(fh)
        results = [
            TrialResult.from_dict(item)
            for item in _decode_floats(artifact["results"])
        ]
    except (OSError, ValueError, KeyError, TypeError):
        results = []
    if results:
        out.update(metric_values(results))
    elapsed = record.metrics.get("elapsed_seconds")
    if isinstance(elapsed, (int, float)):
        out["elapsed_seconds"] = [float(elapsed)]
    # Phase timings are never persisted in the payload (telemetry only);
    # their cross-revision history is the header summary's mean.
    for metric in PHASE_METRICS:
        summary = record.metrics.get(metric)
        if isinstance(summary, Mapping) and isinstance(
            summary.get("mean"), (int, float)
        ):
            out[metric] = [float(summary["mean"])]
    return out


# ----------------------------------------------------------------------
# Trend report (revision trajectories + drift verdicts)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RevisionPoint:
    """One revision's aggregate of one metric within a group."""

    revision: str
    ci: BootstrapCI
    samples: int
    artifacts: int
    first_saved_at: float


@dataclass(frozen=True)
class MetricTrend:
    """One metric's trajectory across revisions, oldest first.

    ``drifted`` is set when the newest revision's mean falls outside the
    oldest revision's bootstrap interval; ``variance_ratio``/``noisier``
    compare their spreads (:func:`variance_ratio_test`) when both sides
    have enough samples.
    """

    metric: str
    points: List[RevisionPoint]
    drifted: bool
    delta: float
    variance_ratio: Optional[float] = None
    noisier: bool = False


@dataclass(frozen=True)
class GroupTrend:
    """Every tracked metric of one logical experiment."""

    tag: str
    group: str
    trials: int
    revisions: List[str]
    metrics: List[MetricTrend]

    @property
    def drifted(self) -> bool:
        """True when any metric of this experiment drifted."""
        return any(m.drifted for m in self.metrics)


@dataclass(frozen=True)
class TrendReport:
    """The full cross-store join: one :class:`GroupTrend` per experiment."""

    groups: List[GroupTrend]
    records: int
    stores: List[pathlib.Path]

    @property
    def drifted(self) -> bool:
        """True when any experiment in the report drifted."""
        return any(g.drifted for g in self.groups)


def _bootstrap_rng(group: str, metric: str, revision: str) -> int:
    """Fixed bootstrap seed: statistics never add noise to a verdict."""
    return derive_seed(0, f"trends:{group}:{metric}:{revision}")


def _revision_buckets(
    records: Sequence[TrendRecord],
) -> List[Tuple[str, List[TrendRecord]]]:
    """Records split by revision, ordered oldest-first by save instant."""
    buckets: Dict[str, List[TrendRecord]] = {}
    for record in records:
        buckets.setdefault(record.revision, []).append(record)
    return sorted(
        buckets.items(), key=lambda kv: (min(r.saved_at for r in kv[1]), kv[0])
    )


def _metric_points(
    group: str,
    metric: str,
    buckets: Sequence[Tuple[str, List[TrendRecord]]],
    samples: Mapping[str, Dict[str, List[float]]],
    confidence: float,
) -> List[RevisionPoint]:
    points: List[RevisionPoint] = []
    for revision, recs in buckets:
        values = [v for r in recs for v in samples[r.uid].get(metric, ())]
        if not values:
            continue
        ci = bootstrap_mean_ci(
            values,
            confidence=confidence,
            rng=_bootstrap_rng(group, metric, revision),
        )
        points.append(
            RevisionPoint(
                revision=revision,
                ci=ci,
                samples=len(values),
                artifacts=len(recs),
                first_saved_at=min(r.saved_at for r in recs),
            )
        )
    return points


def trend_report(
    roots: Sequence[Union[str, pathlib.Path]],
    metrics: Sequence[str] = TREND_METRICS,
    confidence: float = 0.95,
) -> TrendReport:
    """Join all artifacts under ``roots`` and compute per-group trends."""
    records = scan_stores(roots)
    samples = {r.uid: record_metric_samples(r) for r in records}
    groups: List[GroupTrend] = []
    for (tag, group), recs in sorted(group_records(records).items()):
        buckets = _revision_buckets(recs)
        trends: List[MetricTrend] = []
        for metric in metrics:
            points = _metric_points(group, metric, buckets, samples, confidence)
            if not points:
                continue
            first, last = points[0], points[-1]
            drifted = len(points) > 1 and not first.ci.contains(last.ci.mean)
            ratio: Optional[float] = None
            noisier = False
            if len(points) > 1:
                first_vals = [
                    v
                    for rev, rs in buckets
                    if rev == first.revision
                    for r in rs
                    for v in samples[r.uid].get(metric, ())
                ]
                last_vals = [
                    v
                    for rev, rs in buckets
                    if rev == last.revision
                    for r in rs
                    for v in samples[r.uid].get(metric, ())
                ]
                if len(first_vals) >= 3 and len(last_vals) >= 3:
                    ratio, noisier = variance_ratio_test(
                        last_vals,
                        first_vals,
                        confidence=confidence,
                        rng=_bootstrap_rng(group, metric, "variance"),
                    )
            trends.append(
                MetricTrend(
                    metric=metric,
                    points=points,
                    drifted=drifted,
                    delta=last.ci.mean - first.ci.mean,
                    variance_ratio=ratio,
                    noisier=noisier,
                )
            )
        if trends:
            groups.append(
                GroupTrend(
                    tag=tag,
                    group=group,
                    trials=sum(r.info.trials for r in recs),
                    revisions=[rev for rev, _ in buckets],
                    metrics=trends,
                )
            )
    stores = sorted({r.root for r in records})
    return TrendReport(groups=groups, records=len(records), stores=stores)


# ----------------------------------------------------------------------
# Revision comparison
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MetricComparison:
    """One metric of one group, revision A vs revision B."""

    tag: str
    group: str
    metric: str
    a: RevisionPoint
    b: RevisionPoint
    drifted: bool
    delta: float
    variance_ratio: Optional[float] = None
    noisier: bool = False


def _match_revision(records: Sequence[TrendRecord], rev: str) -> Optional[str]:
    """Resolve a (possibly abbreviated) revision against scanned records."""
    revisions = {r.revision for r in records}
    if rev in revisions:
        return rev
    matches = sorted(r for r in revisions if r.startswith(rev))
    if len(matches) == 1:
        return matches[0]
    if len(matches) > 1:
        raise ValueError(f"revision {rev!r} is ambiguous: {matches}")
    return None


def compare_revisions(
    roots: Sequence[Union[str, pathlib.Path]],
    rev_a: str,
    rev_b: str,
    metrics: Sequence[str] = TREND_METRICS,
    confidence: float = 0.95,
) -> List[MetricComparison]:
    """Head-to-head join of every group present at both revisions.

    ``rev_a``/``rev_b`` may be unique prefixes.  Raises :class:`ValueError`
    when a revision matches nothing in the scanned stores (comparing
    against a revision that never ran is operator error, not an empty
    report).
    """
    records = scan_stores(roots)
    full_a = _match_revision(records, rev_a)
    full_b = _match_revision(records, rev_b)
    missing = [r for r, f in ((rev_a, full_a), (rev_b, full_b)) if f is None]
    if missing:
        raise ValueError(
            f"no artifacts at revision(s) {missing!r}; "
            f"have {sorted({r.revision for r in records})}"
        )
    # Only the two selected revisions contribute samples; don't pay a full
    # payload parse for every other revision in an accumulated trend store.
    samples = {
        r.uid: record_metric_samples(r)
        for r in records
        if r.revision in (full_a, full_b)
    }
    out: List[MetricComparison] = []
    for (tag, group), recs in sorted(group_records(records).items()):
        side_a = [r for r in recs if r.revision == full_a]
        side_b = [r for r in recs if r.revision == full_b]
        if not side_a or not side_b:
            continue
        for metric in metrics:
            points = _metric_points(
                group,
                metric,
                [(full_a, side_a), (full_b, side_b)],
                samples,
                confidence,
            )
            if len(points) != 2:
                continue
            pa, pb = points
            vals_a = [v for r in side_a for v in samples[r.uid].get(metric, ())]
            vals_b = [v for r in side_b for v in samples[r.uid].get(metric, ())]
            ratio: Optional[float] = None
            noisier = False
            if len(vals_a) >= 3 and len(vals_b) >= 3:
                ratio, noisier = variance_ratio_test(
                    vals_b,
                    vals_a,
                    confidence=confidence,
                    rng=_bootstrap_rng(group, metric, "variance"),
                )
            out.append(
                MetricComparison(
                    tag=tag,
                    group=group,
                    metric=metric,
                    a=pa,
                    b=pb,
                    drifted=not pa.ci.contains(pb.ci.mean),
                    delta=pb.ci.mean - pa.ci.mean,
                    variance_ratio=ratio,
                    noisier=noisier,
                )
            )
    return out


# ----------------------------------------------------------------------
# Baselines and the CI gate
# ----------------------------------------------------------------------


def make_baseline(
    roots: Sequence[Union[str, pathlib.Path]],
    revision: Optional[str] = None,
    metrics: Sequence[str] = DEFAULT_CHECK_METRICS,
    confidence: float = 0.95,
) -> Dict[str, Any]:
    """Serialize the current state of the stores as a baseline document.

    One bootstrap interval per (group, metric) at ``revision`` (default:
    each group's newest revision).  The document is plain JSON intended to
    be committed to the repository; :func:`check_baseline` gates future
    runs against it.
    """
    records = scan_stores(roots)
    if revision is not None:
        full = _match_revision(records, revision)
        if full is None:
            raise ValueError(f"no artifacts at revision {revision!r}")
    samples: Dict[str, Dict[str, List[float]]] = {}
    groups: Dict[str, Any] = {}
    for (tag, group), recs in sorted(group_records(records).items()):
        buckets = _revision_buckets(recs)
        if revision is None:
            rev, rev_records = buckets[-1]
        else:
            sel = [b for b in buckets if b[0] == full]
            if not sel:
                continue
            rev, rev_records = sel[0]
        for r in rev_records:
            if r.uid not in samples:
                samples[r.uid] = record_metric_samples(r)
        entry_metrics: Dict[str, Any] = {}
        for metric in metrics:
            points = _metric_points(
                group, metric, [(rev, rev_records)], samples, confidence
            )
            if not points:
                continue
            point = points[0]
            entry_metrics[metric] = {
                "mean": point.ci.mean,
                "lower": point.ci.lower,
                "upper": point.ci.upper,
                "confidence": confidence,
                "samples": point.samples,
            }
        if entry_metrics:
            groups[group] = {
                "tag": tag,
                "revision": rev,
                "metrics": entry_metrics,
            }
    return {
        "baseline_schema": BASELINE_SCHEMA,
        "generated_at": time.time(),
        "metrics": list(metrics),
        "groups": groups,
    }


def load_baseline(path: Union[str, pathlib.Path]) -> Dict[str, Any]:
    """Parse and validate a baseline document."""
    with pathlib.Path(path).open() as fh:
        doc = json.load(fh)
    if not isinstance(doc, Mapping) or doc.get("baseline_schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: not a trends baseline (expected baseline_schema="
            f"{BASELINE_SCHEMA})"
        )
    if not isinstance(doc.get("groups"), Mapping):
        raise ValueError(f"{path}: baseline has no 'groups' mapping")
    return dict(doc)


@dataclass(frozen=True)
class CheckOutcome:
    """Verdict for one (group, metric) against the baseline.

    ``status`` is ``"ok"`` (mean inside the baseline interval), ``"drift"``
    (outside), or ``"missing"`` (the baseline expects the experiment but
    the scanned stores hold no current results for it).
    """

    tag: str
    group: str
    metric: str
    status: str
    baseline_mean: float
    baseline_lower: float
    baseline_upper: float
    observed_mean: Optional[float] = None
    observed_samples: int = 0
    revision: str = ""

    @property
    def failed(self) -> bool:
        """True when the metric drifted or went missing."""
        return self.status != "ok"


@dataclass(frozen=True)
class CheckReport:
    """Every baseline entry checked, plus groups new since the baseline."""

    outcomes: List[CheckOutcome]
    new_groups: List[Tuple[str, str]]
    revision: str

    @property
    def failures(self) -> List[CheckOutcome]:
        """The outcomes that drifted or went missing."""
        return [o for o in self.outcomes if o.failed]

    @property
    def ok(self) -> bool:
        """True when every baselined metric is within its interval."""
        return not self.failures


def check_baseline(
    roots: Sequence[Union[str, pathlib.Path]],
    baseline: Mapping[str, Any],
    revision: Optional[str] = None,
    metrics: Optional[Sequence[str]] = None,
) -> CheckReport:
    """Gate the stores' current results against a committed baseline.

    For every (group, metric) in the baseline the *current* mean — at
    ``revision`` when given, else the group's newest revision — is tested
    against the baseline's bootstrap interval.  A mean outside the
    interval is ``drift``; a group with no current artifacts is
    ``missing`` (an experiment silently dropping out of the benchmark
    matrix must not pass a regression gate).  Groups present in the stores
    but absent from the baseline are reported as *new*, never failures:
    adding experiments is not a regression.
    """
    records = scan_stores(roots)
    full: Optional[str] = None
    if revision is not None:
        full = _match_revision(records, revision)
        if full is None:
            raise ValueError(f"no artifacts at revision {revision!r}")
    wanted = set(metrics) if metrics is not None else None
    grouped = group_records(records)
    by_group: Dict[str, Tuple[str, List[TrendRecord]]] = {}
    for (tag, group), recs in grouped.items():
        by_group[group] = (tag, recs)
    # Payloads are parsed lazily, only for the records of each baselined
    # group's checked revision — never for the rest of the trend history.
    samples: Dict[str, Dict[str, List[float]]] = {}

    outcomes: List[CheckOutcome] = []
    checked_revision = full or ""
    for group, entry in sorted(baseline["groups"].items()):
        tag = str(entry.get("tag", ""))
        entry_metrics = entry.get("metrics")
        if not isinstance(entry_metrics, Mapping):
            continue
        current = by_group.get(group)
        rev_records: List[TrendRecord] = []
        rev = ""
        if current is not None:
            tag = current[0] or tag
            buckets = _revision_buckets(current[1])
            if full is not None:
                sel = [b for b in buckets if b[0] == full]
                if sel:
                    rev, rev_records = sel[0]
            else:
                rev, rev_records = buckets[-1]
        if not checked_revision and rev:
            checked_revision = rev
        for r in rev_records:
            if r.uid not in samples:
                samples[r.uid] = record_metric_samples(r)
        for metric, bounds in sorted(entry_metrics.items()):
            if wanted is not None and metric not in wanted:
                continue
            base_mean = float(bounds["mean"])
            lower = float(bounds["lower"])
            upper = float(bounds["upper"])
            values = [
                v
                for r in rev_records
                for v in samples[r.uid].get(metric, ())
            ]
            if not values:
                outcomes.append(
                    CheckOutcome(
                        tag=tag,
                        group=group,
                        metric=metric,
                        status="missing",
                        baseline_mean=base_mean,
                        baseline_lower=lower,
                        baseline_upper=upper,
                        revision=rev,
                    )
                )
                continue
            mean = sum(values) / len(values)
            status = "ok" if lower <= mean <= upper else "drift"
            outcomes.append(
                CheckOutcome(
                    tag=tag,
                    group=group,
                    metric=metric,
                    status=status,
                    baseline_mean=base_mean,
                    baseline_lower=lower,
                    baseline_upper=upper,
                    observed_mean=mean,
                    observed_samples=len(values),
                    revision=rev,
                )
            )
    new_groups = sorted(
        (tag, group)
        for (tag, group) in grouped
        if group not in baseline["groups"]
    )
    return CheckReport(
        outcomes=outcomes, new_groups=new_groups, revision=checked_revision
    )
