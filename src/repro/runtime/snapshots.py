"""Replay-state snapshotting: O(horizon) churn replay across chunks.

The churn-replay trial kinds (``dynamic_probe``, ``multi_probe``,
``repair_replay``) share one evolving scenario — an overlay mutated by a
churn schedule, possibly with repair and a monitoring protocol riding on
it — that every trial of the batch observes at its own index.  A chunk of
such trials historically replayed the scenario *from t=0* up to its last
index, which makes the total replay work quadratic in the horizon once a
batch is split into chunks.

This module makes the scenario state an explicit, transferable object:

* a **replay state** (:class:`ProbeReplayState`, :class:`RepairReplayState`)
  bundles the live objects — overlay, churn scheduler, and for
  ``repair_replay`` the repair policy, aggregation monitor, message meter
  and round driver — and advances them step by step exactly as the serial
  loop did;
* :meth:`ReplayState.snapshot` captures the state as **pure data**
  (JSON-able, picklable, content-hashable — the same contract as the
  PR 4 spec classes), and :meth:`ReplayState.restore` rebuilds a state
  whose future steps are *bit-identical* to the uninterrupted run's
  (every component guarantees this individually: see
  ``OverlayGraph.snapshot``, ``ChurnScheduler.snapshot``,
  ``AggregationProtocol.snapshot``, ``generator_state``);
* :func:`snapshot_config` derives the content address a boundary snapshot
  is stored under — the *scenario prefix* configuration (overlay, seed,
  churn trace, scenario params, boundary index), deliberately excluding
  everything that cannot affect the churn trajectory (the estimator spec,
  worker count, chunking), so snapshots are shared across every batch
  that replays the same scenario.  Result artifacts keep their own,
  untouched addresses: enabling snapshots never invalidates a cached
  result.

The chunk hand-off lifecycle, its invariants, and the replay-cost
arithmetic are documented in ``docs/SNAPSHOTS.md``; the executor-side
pipeline lives in :mod:`repro.runtime.pool`.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Mapping, Tuple

from ..churn.models import ChurnEvent, ChurnTrace
from ..churn.scheduler import ChurnScheduler
from ..core.aggregation import AggregationMonitor
from ..overlay.graph import OverlayGraph
from ..overlay.repair import RepairPolicySpec
from ..sim.messages import MessageMeter
from ..sim.rng import RngHub, generator_from_state
from ..sim.rounds import RoundDriver

__all__ = [
    "SNAPSHOT_KINDS",
    "SNAPSHOT_SCHEMA_VERSION",
    "ProbeReplayState",
    "RepairReplayState",
    "replay_state_for",
    "snapshot_config",
]

#: Bump when snapshot payload layout or replay semantics change; mixed into
#: every snapshot's content address so stale payloads become misses, never
#: wrong restores.
SNAPSHOT_SCHEMA_VERSION = 1


def _fresh_trace(payload: Any) -> ChurnTrace:
    """An unconsumed :class:`ChurnTrace` from a spec's ``params["trace"]``."""
    if isinstance(payload, ChurnTrace):
        return ChurnTrace(iter(payload))
    return ChurnTrace(ChurnEvent(**item) for item in payload)


def _scenario_graph(spec) -> OverlayGraph:
    """The scenario's overlay: freshly built from a declarative spec, or a
    live graph taken as-is (the in-process fallback for non-portable
    specs, which never cross a process boundary)."""
    overlay = spec.overlay
    if isinstance(overlay, OverlayGraph):
        return overlay
    if overlay is None or not hasattr(overlay, "build"):
        raise TypeError(
            f"trial kind {spec.kind!r} needs an overlay, got {overlay!r}"
        )
    seed = spec.hub_seed if spec.overlay_seed is None else spec.overlay_seed
    return overlay.build(RngHub(seed))


class ProbeReplayState:
    """Replay state of the probe-under-churn kinds (Figs 9-14).

    The scenario is: one overlay, one churn schedule consumed through the
    hub's dedicated ``"churn"`` stream, advanced in steps of
    ``time_per_estimation``; estimations at each step draw from stateless
    per-index child hubs and therefore leave no trace in this state.  The
    serial loop's death rule is preserved exactly: once the overlay is
    empty at a step boundary the replay is *dead* — it never advances
    again, even if later trace events would regrow the membership.
    """

    kind_params: Tuple[str, ...] = ("trace", "time_per_estimation", "max_degree")

    def __init__(
        self,
        hub: RngHub,
        scheduler: ChurnScheduler,
        tpe: float,
        position: int = 0,
        dead: bool = False,
    ) -> None:
        self.hub = hub
        self.scheduler = scheduler
        self.tpe = float(tpe)
        self.position = int(position)
        self.dead = bool(dead)

    @property
    def graph(self) -> OverlayGraph:
        """The scenario's (mutating) overlay."""
        return self.scheduler.graph

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def boot(cls, spec) -> "ProbeReplayState":
        """Build the scenario at position 0 from a trial spec.

        Mirrors the historical chunk warm-up bit for bit: the overlay is
        built from its own hub (``overlay_seed`` or ``hub_seed``) while
        churn consumes the estimation hub's ``"churn"`` stream.
        """
        p = spec.params
        hub = RngHub(spec.hub_seed)
        graph = _scenario_graph(spec)
        scheduler = ChurnScheduler(
            graph,
            _fresh_trace(p["trace"]),
            rng=hub.stream("churn"),
            max_degree=int(p.get("max_degree", 10)),
        )
        return cls(hub, scheduler, tpe=float(p.get("time_per_estimation", 1.0)))

    def advance(self, to_index: int) -> None:
        """Advance the scenario through step ``to_index`` (serial semantics).

        Steps one estimation slot at a time, checking the death rule after
        each, so a state advanced in any increments visits exactly the
        same intermediate states as the uninterrupted loop.
        """
        for i in range(self.position + 1, int(to_index) + 1):
            if self.dead:
                break
            self.scheduler.advance_to(i * self.tpe)
            self.position = i
            if self.graph.size == 0:
                self.dead = True

    # -- hand-off ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Pure-data capture of the scenario at the current position."""
        return {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "index": self.position,
            "dead": self.dead,
            "scheduler": self.scheduler.snapshot(),
        }

    @classmethod
    def restore(cls, spec, payload: Mapping[str, Any]) -> "ProbeReplayState":
        """Rebuild the scenario mid-replay from a :meth:`snapshot` payload.

        ``spec`` supplies the configuration (trace payload, step length);
        the payload supplies the state.  Future :meth:`advance` steps are
        bit-identical to an uninterrupted replay's.
        """
        p = spec.params
        hub = RngHub(spec.hub_seed)
        scheduler = ChurnScheduler.restore(
            payload["scheduler"],
            _fresh_trace(p["trace"]),
            max_degree=int(p.get("max_degree", 10)),
        )
        return cls(
            hub,
            scheduler,
            tpe=float(p.get("time_per_estimation", 1.0)),
            position=int(payload["index"]),
            dead=bool(payload.get("dead", False)),
        )


class RepairReplayState:
    """Replay state of ``repair_replay`` (Fig 17 revisited, with repair).

    One scenario = churn (``"churn"`` stream) + repair policy (``"rep"``
    stream) + aggregation monitor (``"monitor"`` stream) advancing in lock
    step on a shared :class:`RoundDriver`, with cumulative repair traffic
    metered.  All of that is state and all of it is captured; the
    per-round observation ``records`` list is *local* — it accumulates
    from the position the state was booted or restored at, and the chunk
    runner maps absolute round numbers onto it.
    """

    kind_params: Tuple[str, ...] = ("trace", "max_degree", "repair", "restart_interval")

    def __init__(
        self,
        scheduler: ChurnScheduler,
        policy,
        monitor: AggregationMonitor,
        meter: MessageMeter,
        position: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.policy = policy
        self.monitor = monitor
        self.meter = meter
        self.position = int(position)
        #: (graph size, cumulative repair messages, failed epochs) observed
        #: at each round run on *this* state object; index 0 is round
        #: ``position_at_construction + 1``.
        self.records: List[Tuple[int, int, int]] = []
        self.driver = RoundDriver(start_round=self.position)
        scheduler.attach(self.driver)
        policy.attach(self.driver)
        monitor.attach(self.driver)
        self.driver.subscribe(
            lambda rnd: self.records.append(
                (self.graph.size, self.meter.total, self.monitor.failures)
            ),
            priority=30,
        )

    @property
    def graph(self) -> OverlayGraph:
        """The scenario's (mutating, repaired) overlay."""
        return self.scheduler.graph

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def boot(cls, spec) -> "RepairReplayState":
        """Build the scenario at round 0 from a trial spec."""
        p = spec.params
        hub = RngHub(spec.hub_seed)
        graph = _scenario_graph(spec)
        scheduler = ChurnScheduler(
            graph,
            _fresh_trace(p["trace"]),
            rng=hub.stream("churn"),
            max_degree=int(p.get("max_degree", 10)),
        )
        meter = MessageMeter()
        policy = RepairPolicySpec.from_config(p["repair"]).build(
            graph, rng=hub.stream("rep"), meter=meter
        )
        monitor = AggregationMonitor(
            graph,
            restart_interval=int(p["restart_interval"]),
            rng=hub.stream("monitor"),
        )
        return cls(scheduler, policy, monitor, meter)

    def advance(self, to_index: int) -> None:
        """Run rounds up to ``to_index`` (round numbers are 1-based)."""
        rounds = int(to_index) - self.position
        if rounds > 0:
            self.driver.run(rounds)
            self.position = int(to_index)

    # -- hand-off ------------------------------------------------------

    @property
    def dead(self) -> bool:
        """Repair scenarios never die: an emptied overlay may regrow."""
        return False

    def snapshot(self) -> Dict[str, Any]:
        """Pure-data capture: scheduler + policy + monitor + meter state."""
        return {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "index": self.position,
            "scheduler": self.scheduler.snapshot(),
            "policy": self.policy.snapshot(),
            "monitor": self.monitor.snapshot(),
            "meter": dict(self.meter.snapshot().counts),
        }

    @classmethod
    def restore(cls, spec, payload: Mapping[str, Any]) -> "RepairReplayState":
        """Rebuild the scenario mid-run from a :meth:`snapshot` payload.

        Components are restored in dependency order (overlay+scheduler,
        meter, policy, monitor) and re-attached to a fresh driver starting
        at the captured round, so hook execution order — churn, repair,
        protocol, observer — matches the uninterrupted run exactly.
        """
        p = spec.params
        scheduler = ChurnScheduler.restore(
            payload["scheduler"],
            _fresh_trace(p["trace"]),
            max_degree=int(p.get("max_degree", 10)),
        )
        graph = scheduler.graph
        meter = MessageMeter.restore(payload["meter"])
        # Build directly with the captured generator: a policy that drew
        # (or forwarded) its rng at construction time would otherwise
        # silently diverge from the uninterrupted run.
        policy = RepairPolicySpec.from_config(p["repair"]).build(
            graph, rng=generator_from_state(payload["policy"]["rng"]), meter=meter
        )
        policy.apply_snapshot(payload["policy"])
        monitor = AggregationMonitor.restore(
            graph,
            payload["monitor"],
            restart_interval=int(p["restart_interval"]),
        )
        return cls(
            scheduler,
            policy,
            monitor,
            meter,
            position=int(payload["index"]),
        )


def replay_state_for(kind: str):
    """The replay-state class handling ``kind`` (raises KeyError if none)."""
    return SNAPSHOT_KINDS[kind]


#: trial kind -> replay-state class.  Kinds absent here either have no
#: shared scenario to hand off (``agg_dynamic`` runs one independent
#: scenario per trial) or no churn at all (the static/fresh kinds).
SNAPSHOT_KINDS: Dict[str, Any] = {
    "dynamic_probe": ProbeReplayState,
    "multi_probe": ProbeReplayState,
    "repair_replay": RepairReplayState,
}


def snapshot_config(spec, index: int) -> Dict[str, Any]:
    """Content-address configuration of a boundary snapshot.

    Identifies the *churn trajectory prefix* the snapshot captures: the
    trial kind, the hub seed(s), the declarative overlay, the scenario
    subset of ``params`` (each state class's ``kind_params``) and the
    boundary ``index`` — plus :data:`SNAPSHOT_SCHEMA_VERSION`.  The
    estimator spec and the ``(index, stream)`` layout of the batch are
    excluded on purpose: they cannot influence the trajectory, so one
    stored snapshot serves every batch replaying the same scenario.
    The churn-trace payload enters the address as its SHA-256 digest —
    equally distinguishing, but a dense paper-scale trace is then not
    duplicated verbatim into every boundary artifact on disk.  Because
    this document is disjoint from a batch's result configuration (the
    ``"snapshot"`` key marks it), snapshot artifacts can never collide
    with — or invalidate — result artifacts.
    """
    from .store import canonical_json  # late: store imports trials imports us

    state_cls = SNAPSHOT_KINDS[spec.kind]
    params = {
        key: spec.params[key] for key in state_cls.kind_params if key in spec.params
    }
    trace = params.pop("trace", None)
    if trace is not None:
        params["trace_sha256"] = hashlib.sha256(
            canonical_json(trace).encode("utf-8")
        ).hexdigest()
    return {
        "snapshot": SNAPSHOT_SCHEMA_VERSION,
        "kind": spec.kind,
        "hub_seed": int(spec.hub_seed),
        "overlay": spec.overlay.as_config() if spec.overlay is not None else None,
        "overlay_seed": spec.overlay_seed,
        "params": params,
        "index": int(index),
    }
