"""Multi-host cluster executor: chunks fan out to remote workers over sockets.

The cluster backend is the third executor behind :func:`~repro.runtime.api
.run_trials` (after the serial loop and the process pool of
:mod:`~repro.runtime.pool`) and honours the exact same contract: results
are **bit-identical** to serial execution at any host count, with
unchanged content addresses, because every trial derives its randomness
from ``(hub_seed, index)`` alone and the merge is sorted by
``(index, stream)``.  Adding or removing hosts — even mid-batch, through
failures — can never change what a batch computes, only where.

Transport
---------
The wire format follows the lightweight self-describing RPC approach of
the Mercury extreme-scale RPC design rather than a heavyweight framework:
each message is one pickled dict behind an 8-byte big-endian length
prefix (:func:`send_message` / :func:`recv_message`).  A worker is just
``repro-experiment worker serve --bind HOST:PORT`` — it accepts a
connection, answers a version handshake, and then runs
:func:`~repro.runtime.trials.run_chunk` on every ``chunk`` message it
receives, returning the pickled results.  Workers are stateless between
chunks: everything a chunk needs (specs + optional boundary snapshot)
travels in the message, which is what makes migration trivial.

.. warning::
   The transport pickles and unpickles arbitrary payloads and performs no
   authentication: it is **trusted-network-only** (bind workers to
   loopback or a private cluster fabric, never a public interface).  See
   ``docs/DISTRIBUTED.md``.

Scheduling
----------
The driver keeps the snapshot backbone (:class:`~repro.runtime.pool
.SnapshotBackbone`) local: it resolves every chunk's predecessor-boundary
snapshot up front and retains the payloads until the chunk completes, so
a chunk can be re-shipped anywhere at any time.  Chunks are dealt
round-robin into per-host queues; one driver thread per host drains its
own queue and, when idle, **steals from the tail** of the longest live
queue (``steal`` event).  A connection failure is retried with
exponential backoff; once retries are exhausted the host is declared lost
(``worker_lost``) and its queued + in-flight chunks **migrate** — each
with its retained boundary snapshot — to the surviving hosts
(``chunk_migrated``).  If every host dies, the remaining chunks re-run
serially in the driver (``partial_fallback``), keeping completed chunks.
All of these events flow through the normal
:class:`~repro.runtime.progress.ProgressReporter` protocol, so journals,
``obs summary|trace|validate`` and the telemetry used in tests cover
distributed runs exactly like local ones.
"""

from __future__ import annotations

import math
import os
import pickle
import socket
import struct
import threading
import time
import traceback
from collections import deque
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .pool import CHUNKS_PER_WORKER, SnapshotBackbone, chunk_specs
from .progress import NullProgress, ProgressReporter
from .snapshots import SNAPSHOT_KINDS
from .trials import TrialResult, TrialSpec, run_chunk

__all__ = [
    "ClusterExecutor",
    "PROTOCOL_VERSION",
    "WorkerServer",
    "parse_hosts",
    "recv_message",
    "send_message",
]

#: Version exchanged in the hello/welcome handshake; a mismatch fails the
#: connection immediately rather than mis-deserializing mid-batch.
PROTOCOL_VERSION = 1

#: 8-byte big-endian unsigned length prefix framing every message.
_HEADER = struct.Struct(">Q")

#: Upper bound on a single framed message — far above any real chunk
#: (specs + a ~1MB snapshot), low enough to reject garbage prefixes from
#: a confused peer before attempting a giant allocation.
MAX_MESSAGE_BYTES = 1 << 31


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------


def send_message(sock: socket.socket, message: Mapping[str, Any]) -> None:
    """Frame and send one message: 8-byte length prefix + pickled dict."""
    payload = pickle.dumps(dict(message), protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    chunks: List[bytes] = []
    remaining = size
    while remaining > 0:
        part = sock.recv(min(remaining, 1 << 20))
        if not part:
            raise EOFError("peer closed the connection mid-message")
        chunks.append(part)
        remaining -= len(part)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Dict[str, Any]:
    """Receive one framed message; raises :class:`EOFError` on a clean close."""
    header = sock.recv(_HEADER.size)
    if not header:
        raise EOFError("peer closed the connection")
    if len(header) < _HEADER.size:
        header += _recv_exact(sock, _HEADER.size - len(header))
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise OSError(
            f"framed message of {length} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte limit (corrupt stream?)"
        )
    message = pickle.loads(_recv_exact(sock, length))
    if not isinstance(message, dict):
        raise OSError(f"expected a message dict, got {type(message).__name__}")
    return message


def parse_hosts(
    value: Union[None, str, Sequence[str]]
) -> Tuple[str, ...]:
    """Normalize a host list (CSV string or sequence) to ``host:port`` tuples.

    Accepts the CLI's ``--hosts host1:port,host2:port`` string, the
    ``$REPRO_HOSTS`` environment value, or an already-split sequence.
    ``None`` and the empty string mean "no cluster" and return ``()``.
    """
    if value is None:
        return ()
    if isinstance(value, str):
        parts = [p.strip() for p in value.split(",")]
    else:
        parts = [str(p).strip() for p in value]
    hosts = tuple(p for p in parts if p)
    for host in hosts:
        name, sep, port = host.rpartition(":")
        if not sep or not name:
            raise ValueError(
                f"invalid host {host!r}: expected 'host:port' (e.g. "
                "'127.0.0.1:7700')"
            )
        try:
            number = int(port)
        except ValueError:
            raise ValueError(f"invalid port in host {host!r}") from None
        if not 0 < number < 65536:
            raise ValueError(f"port out of range in host {host!r}")
    return hosts


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


class WorkerServer:
    """A cluster worker: accepts driver connections, runs chunks, replies.

    Parameters
    ----------
    host / port:
        Bind address.  ``port=0`` binds a free ephemeral port; the bound
        address is available as :attr:`address` (the loopback test harness
        and CI both rely on this).
    max_sessions:
        Exit :meth:`serve_forever` after this many driver connections have
        come and gone (``None`` = serve until :meth:`close`).  CI workers
        use ``--max-sessions 1`` so the job tears down by itself.
    crash_after:
        Fault-injection knob for tests: after serving this many chunks,
        abort the connection mid-protocol and stop accepting — simulating
        a host dying mid-batch so migration paths can be exercised
        deterministically.
    delay:
        Fault-injection knob: sleep this many seconds before each chunk,
        turning the worker into a predictable straggler so work-stealing
        can be exercised deterministically.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_sessions: Optional[int] = None,
        crash_after: Optional[int] = None,
        delay: float = 0.0,
    ) -> None:
        self.max_sessions = max_sessions
        self.crash_after = crash_after
        self.delay = delay
        self._served_chunks = 0
        self._closed = False
        self._listener = socket.create_server((host, port))
        self.port = self._listener.getsockname()[1]
        self.address = f"{host}:{self.port}"

    def close(self) -> None:
        """Stop accepting connections (idempotent)."""
        if not self._closed:
            self._closed = True
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def __enter__(self) -> "WorkerServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def serve_forever(self) -> None:
        """Accept and serve driver sessions until closed (or session cap)."""
        sessions = 0
        while not self._closed:
            if self.max_sessions is not None and sessions >= self.max_sessions:
                break
            try:
                conn, _addr = self._listener.accept()
            except OSError:  # listener closed (by close() or crash_after)
                break
            sessions += 1
            try:
                self._serve_session(conn)
            finally:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass
        self.close()

    def _serve_session(self, conn: socket.socket) -> None:
        """One driver session: handshake, then a chunk/result loop."""
        try:
            hello = recv_message(conn)
        except (EOFError, OSError, pickle.UnpicklingError):
            return
        if hello.get("type") != "hello" or hello.get("version") != PROTOCOL_VERSION:
            send_message(
                conn,
                {
                    "type": "error",
                    "error": (
                        f"protocol mismatch: worker speaks "
                        f"{PROTOCOL_VERSION}, driver sent {hello!r}"
                    ),
                },
            )
            return
        send_message(
            conn,
            {"type": "welcome", "version": PROTOCOL_VERSION, "pid": os.getpid()},
        )
        while True:
            try:
                message = recv_message(conn)
            except (EOFError, OSError):
                return
            kind = message.get("type")
            if kind == "bye":
                return
            if kind != "chunk":
                send_message(
                    conn, {"type": "error", "error": f"unexpected message {kind!r}"}
                )
                continue
            if (
                self.crash_after is not None
                and self._served_chunks >= self.crash_after
            ):
                # Simulated host death: drop the connection mid-request and
                # refuse future connections, so the driver's retries fail.
                self.close()
                conn.close()
                return
            if self.delay:
                time.sleep(self.delay)
            try:
                results = run_chunk(message["specs"], message.get("snapshot"))
            except Exception:  # noqa: BLE001 - remote traceback travels back
                send_message(
                    conn,
                    {
                        "type": "error",
                        "chunk": message.get("chunk"),
                        "error": traceback.format_exc(),
                    },
                )
                continue
            self._served_chunks += 1
            send_message(
                conn,
                {"type": "result", "chunk": message.get("chunk"), "results": results},
            )


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------


class _WorkerSession:
    """Driver-side handle on one connected worker (socket + handshake)."""

    def __init__(self, sock: socket.socket, pid: int) -> None:
        self.sock = sock
        self.pid = pid

    @classmethod
    def connect(cls, host: str, timeout: float) -> "_WorkerSession":
        """Dial ``host:port``, handshake, and return a ready session."""
        name, _, port = host.rpartition(":")
        sock = socket.create_connection((name, int(port)), timeout=timeout)
        try:
            sock.settimeout(None)
            send_message(sock, {"type": "hello", "version": PROTOCOL_VERSION})
            welcome = recv_message(sock)
            if welcome.get("type") != "welcome":
                raise OSError(
                    f"worker {host} rejected the handshake: "
                    f"{welcome.get('error', welcome)}"
                )
            if welcome.get("version") != PROTOCOL_VERSION:
                raise OSError(
                    f"worker {host} speaks protocol {welcome.get('version')}, "
                    f"driver speaks {PROTOCOL_VERSION}"
                )
        except BaseException:
            sock.close()
            raise
        return cls(sock, int(welcome.get("pid", -1)))

    def request(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        """Send one message and block for its reply."""
        send_message(self.sock, message)
        return recv_message(self.sock)

    def close(self, polite: bool = False) -> None:
        """Drop the connection (optionally after a ``bye``)."""
        if polite:
            try:
                send_message(self.sock, {"type": "bye"})
            except OSError:  # pragma: no cover - peer already gone
                pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


class _RunState:
    """Shared scheduler state for one batch (guarded by ``cond``)."""

    def __init__(
        self, chunks: Sequence[Sequence[TrialSpec]], hosts: Sequence[str]
    ) -> None:
        self.cond = threading.Condition()
        self.total_chunks = len(chunks)
        self.total_trials = sum(len(chunk) for chunk in chunks)
        self.queues: Dict[str, deque] = {host: deque() for host in hosts}
        for i in range(len(chunks)):
            self.queues[hosts[i % len(hosts)]].append(i)
        self.live = set(hosts)
        self.in_flight: Dict[str, int] = {}
        self.completed: Dict[int, List[TrialResult]] = {}
        self.announced: set = set()
        self.done_trials = 0
        self.error: Optional[Tuple[int, str]] = None


class ClusterExecutor:
    """Runs a batch of :class:`TrialSpec` across remote worker hosts.

    Implements the same ``run(specs) -> [TrialResult]`` contract as
    :class:`~repro.runtime.pool.TrialExecutor` — callers (and
    :func:`~repro.runtime.api.run_trials`) cannot tell the two apart
    except through progress events.  See the module docstring for the
    scheduling and failure semantics.

    Parameters
    ----------
    hosts:
        Worker addresses (``host:port`` strings, CSV string accepted).
    chunk_size:
        Trials per dispatched chunk (default: batch split into
        ``len(hosts) * CHUNKS_PER_WORKER`` chunks, mirroring the pool).
    progress:
        Optional :class:`ProgressReporter`; cluster events are reported
        through the ``on_worker_connect`` / ``on_worker_lost`` /
        ``on_chunk_migrated`` / ``on_steal`` hooks.
    snapshots / snapshot_store:
        Boundary-snapshot hand-off, exactly as on the pool executor.
    retries:
        Reconnection attempts per host before it is declared lost.
    backoff:
        Base of the exponential retry backoff (seconds): attempt *k*
        sleeps ``backoff * 2**(k-1)``.
    connect_timeout:
        Socket connect/handshake timeout per attempt (seconds).
    """

    def __init__(
        self,
        hosts: Union[str, Sequence[str]],
        chunk_size: Optional[int] = None,
        progress: Optional[ProgressReporter] = None,
        snapshots: bool = True,
        snapshot_store=None,
        retries: int = 3,
        backoff: float = 0.1,
        connect_timeout: float = 10.0,
    ) -> None:
        self.hosts = parse_hosts(hosts)
        if not self.hosts:
            raise ValueError("ClusterExecutor needs at least one host")
        if len(set(self.hosts)) != len(self.hosts):
            raise ValueError(f"duplicate hosts in {self.hosts!r}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        self.progress = progress if progress is not None else NullProgress()
        self.snapshots = bool(snapshots)
        self.snapshot_store = snapshot_store
        self.retries = max(0, int(retries))
        self.backoff = float(backoff)
        self.connect_timeout = float(connect_timeout)

    def _auto_chunk_size(self, total: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, math.ceil(total / (len(self.hosts) * CHUNKS_PER_WORKER)))

    def run(self, specs: Sequence[TrialSpec]) -> List[TrialResult]:
        """Execute the batch and return results in ``(index, stream)`` order."""
        specs = list(specs)
        if not specs:
            return []
        started = time.perf_counter()
        if not all(spec.portable for spec in specs):
            # Live objects cannot travel over the wire; same downgrade as
            # the pool, so cluster options are always safe to pass.
            self.progress.on_fallback(
                "batch holds live objects that cannot be shipped to cluster workers"
            )
            self.progress.on_start(len(specs), 1)
            self.progress.on_chunk_start(0, len(specs))
            results = run_chunk(specs)
            self.progress.on_chunk_done(0, results)
            results.sort(key=lambda r: (r.index, r.stream))
            self.progress.on_finish(len(results), time.perf_counter() - started)
            return results

        self.progress.on_start(len(specs), len(self.hosts))
        chunks = chunk_specs(specs, self._auto_chunk_size(len(specs)))
        boundaries, payloads = self._boundary_payloads(chunks)
        state = _RunState(chunks, self.hosts)
        threads = [
            threading.Thread(
                target=self._serve_host,
                args=(state, host, chunks, boundaries, payloads),
                name=f"cluster-{host}",
                daemon=True,
            )
            for host in self.hosts
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        if state.error is not None:
            chunk_id, remote_error = state.error
            raise RuntimeError(
                f"chunk {chunk_id} failed on a cluster worker:\n{remote_error}"
            )

        leftover = [
            i for i in range(len(chunks)) if i not in state.completed
        ]
        if leftover:
            # Every host died: finish in-driver, keeping completed chunks —
            # the cluster analogue of the pool's mid-batch partial fallback.
            remaining = sum(len(chunks[i]) for i in leftover)
            self.progress.on_partial_fallback(
                state.done_trials,
                len(specs),
                f"all {len(self.hosts)} cluster worker(s) lost; "
                f"re-running {remaining} of {len(specs)} trials locally",
            )
            for chunk_id in leftover:
                if chunk_id not in state.announced:
                    self.progress.on_chunk_start(
                        chunk_id, len(chunks[chunk_id]), boundary=boundaries[chunk_id]
                    )
                part = run_chunk(chunks[chunk_id], payloads.get(chunk_id))
                state.completed[chunk_id] = part
                state.done_trials += len(part)
                self.progress.on_chunk_done(chunk_id, part)
                self.progress.on_progress(state.done_trials, len(specs))

        results = [r for i in sorted(state.completed) for r in state.completed[i]]
        results.sort(key=lambda r: (r.index, r.stream))
        self.progress.on_finish(len(results), time.perf_counter() - started)
        return results

    def _boundary_payloads(
        self, chunks: Sequence[Sequence[TrialSpec]]
    ) -> Tuple[Dict[int, Optional[int]], Dict[int, Optional[Mapping[str, Any]]]]:
        """Resolve every chunk's hand-off snapshot before dispatch begins.

        Unlike the pool — where a boundary payload is consumed by exactly
        one submission — the cluster retains all payloads for the whole
        batch, because any chunk may need re-shipping to a different host
        after a failure.  The backbone advance is the same single
        O(horizon) pass either way.
        """
        boundaries: Dict[int, Optional[int]] = {i: None for i in range(len(chunks))}
        payloads: Dict[int, Optional[Mapping[str, Any]]] = {
            i: None for i in range(len(chunks))
        }
        pipelined = (
            self.snapshots
            and len(chunks) > 1
            and chunks[0][0].kind in SNAPSHOT_KINDS
        )
        if not pipelined:
            return boundaries, payloads
        backbone = SnapshotBackbone(chunks[0][0], self.snapshot_store, self.progress)
        for i, chunk in enumerate(chunks):
            target = min(spec.index for spec in chunk) - 1
            boundaries[i] = target
            payloads[i] = backbone.payload_at(target)
        return boundaries, payloads

    # -- per-host driver thread --------------------------------------------

    def _serve_host(
        self,
        state: _RunState,
        host: str,
        chunks: Sequence[Sequence[TrialSpec]],
        boundaries: Mapping[int, Optional[int]],
        payloads: Mapping[int, Optional[Mapping[str, Any]]],
    ) -> None:
        session: Optional[_WorkerSession] = None
        failures = 0
        try:
            while True:
                chunk_id = self._claim(state, host, chunks, boundaries)
                if chunk_id is None:
                    return
                try:
                    if session is None:
                        session = _WorkerSession.connect(host, self.connect_timeout)
                        with state.cond:
                            self.progress.on_worker_connect(host, session.pid)
                    reply = session.request(
                        {
                            "type": "chunk",
                            "chunk": chunk_id,
                            "specs": list(chunks[chunk_id]),
                            "snapshot": payloads.get(chunk_id),
                        }
                    )
                except (OSError, EOFError, pickle.PickleError, struct.error) as exc:
                    if session is not None:
                        session.close()
                        session = None
                    failures += 1
                    if failures <= self.retries:
                        self._requeue(state, host, chunk_id)
                        time.sleep(self.backoff * (2 ** (failures - 1)))
                        continue
                    self._host_lost(state, host, exc, chunk_id)
                    return
                failures = 0
                if reply.get("type") == "result":
                    self._record(state, host, chunk_id, reply.get("results") or [])
                else:
                    # A worker-side exception is deterministic — the chunk
                    # would fail anywhere — so it aborts the batch instead
                    # of migrating.
                    with state.cond:
                        if state.error is None:
                            state.error = (
                                chunk_id,
                                str(reply.get("error", reply)),
                            )
                        state.in_flight.pop(host, None)
                        state.cond.notify_all()
                    return
        finally:
            if session is not None:
                session.close(polite=True)

    def _claim(
        self,
        state: _RunState,
        host: str,
        chunks: Sequence[Sequence[TrialSpec]],
        boundaries: Mapping[int, Optional[int]],
    ) -> Optional[int]:
        """Pop this host's next chunk, stealing from a busy peer when idle.

        Blocks while other live hosts still have queued or in-flight work
        that could migrate here; returns ``None`` when the batch is done,
        aborted, or no future work can possibly reach this host.
        """
        with state.cond:
            while True:
                if state.error is not None or host not in state.live:
                    return None
                queue = state.queues[host]
                stolen_from = None
                if not queue:
                    victims = [
                        h
                        for h in state.live
                        if h != host and state.queues[h]
                    ]
                    if victims:
                        victim = max(victims, key=lambda h: len(state.queues[h]))
                        queue.append(state.queues[victim].pop())
                        stolen_from = victim
                if queue:
                    chunk_id = queue.popleft()
                    state.in_flight[host] = chunk_id
                    if stolen_from is not None:
                        self.progress.on_steal(chunk_id, stolen_from, host)
                    if chunk_id not in state.announced:
                        state.announced.add(chunk_id)
                        self.progress.on_chunk_start(
                            chunk_id,
                            len(chunks[chunk_id]),
                            boundary=boundaries[chunk_id],
                        )
                    return chunk_id
                if len(state.completed) == state.total_chunks:
                    return None
                pending_elsewhere = any(
                    h != host and (h in state.in_flight or state.queues[h])
                    for h in state.live
                )
                if not pending_elsewhere:
                    return None
                state.cond.wait(timeout=0.05)

    def _requeue(self, state: _RunState, host: str, chunk_id: int) -> None:
        """Put a failed dispatch back at the head of this host's queue.

        Done *before* the backoff sleep so an idle peer can steal the
        chunk while this host reconnects.
        """
        with state.cond:
            state.in_flight.pop(host, None)
            state.queues[host].appendleft(chunk_id)
            state.cond.notify_all()

    def _host_lost(
        self, state: _RunState, host: str, exc: Exception, chunk_id: int
    ) -> None:
        """Declare a host dead and migrate its work to the survivors."""
        with state.cond:
            state.live.discard(host)
            state.in_flight.pop(host, None)
            orphans = [chunk_id] + list(state.queues[host])
            state.queues[host].clear()
            self.progress.on_worker_lost(host, str(exc))
            survivors = sorted(state.live)
            if survivors:
                for i, orphan in enumerate(orphans):
                    target = survivors[i % len(survivors)]
                    state.queues[target].append(orphan)
                    self.progress.on_chunk_migrated(orphan, host, target)
            state.cond.notify_all()

    def _record(
        self, state: _RunState, host: str, chunk_id: int, results: List[TrialResult]
    ) -> None:
        """Record a completed chunk exactly once and wake waiting peers."""
        with state.cond:
            state.in_flight.pop(host, None)
            if chunk_id not in state.completed:
                state.completed[chunk_id] = results
                state.done_trials += len(results)
                self.progress.on_chunk_done(chunk_id, results)
                self.progress.on_progress(state.done_trials, state.total_trials)
            state.cond.notify_all()
