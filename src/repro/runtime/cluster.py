"""Multi-host cluster executor: chunks fan out to remote workers over sockets.

The cluster backend is the third executor behind :func:`~repro.runtime.api
.run_trials` (after the serial loop and the process pool of
:mod:`~repro.runtime.pool`) and honours the exact same contract: results
are **bit-identical** to serial execution at any host count, with
unchanged content addresses, because every trial derives its randomness
from ``(hub_seed, index)`` alone and the merge is sorted by
``(index, stream)``.  Adding or removing hosts — even mid-batch, through
failures — can never change what a batch computes, only where.

Transport
---------
The wire format follows the lightweight self-describing RPC approach of
the Mercury extreme-scale RPC design rather than a heavyweight framework:
each message is one pickled dict behind an 8-byte big-endian length
prefix (:func:`send_message` / :func:`recv_message`).  A worker is just
``repro-experiment worker serve --bind HOST:PORT`` — it accepts
connections, answers a version handshake, and then runs
:func:`~repro.runtime.trials.run_chunk` on every ``chunk`` message it
receives, returning the pickled results.  Workers are stateless between
chunks: everything a chunk needs (specs + optional boundary snapshot)
travels in the message, which is what makes migration trivial.

The handshake negotiates a protocol version: the driver offers
:data:`PROTOCOL_VERSION`, the worker answers with
``min(offered, PROTOCOL_VERSION)`` as long as the offer is at least
:data:`MIN_PROTOCOL_VERSION`, and a driver whose offer is rejected
outright re-dials with the floor version — so new drivers interoperate
with old v1 workers (and vice versa) without flags.  Version 2 adds a
second session role: a ``hello`` carrying ``role="heartbeat"`` opens a
control-path session that answers ``ping`` frames with ``pong`` instead
of running chunks.

.. warning::
   The transport pickles and unpickles arbitrary payloads and performs no
   authentication: it is **trusted-network-only** (bind workers to
   loopback or a private cluster fabric, never a public interface).  See
   ``docs/DISTRIBUTED.md``.

Liveness
--------
Treating liveness as a request side-effect leaves a silent-failure
window: a worker that dies while *idle* is never declared lost until the
batch drains, and one blocked dispatch can pin a chunk to a dead host
indefinitely.  The driver therefore runs one heartbeat monitor thread per
host (protocol v2 and up): every ``heartbeat_interval`` seconds it pings
the worker over a dedicated heartbeat session and counts consecutive
misses (timeout, refused connection, or transport error).  Each miss is
reported as ``heartbeat_miss``; at ``heartbeat_misses`` consecutive
misses the host is declared lost through exactly the same path as a
dispatch failure — so loss is detected within roughly
``heartbeat_interval × heartbeat_misses`` seconds no matter what the
dispatch threads are doing.  Legacy v1 workers simply run without a
monitor (detection falls back to dispatch errors, the pre-v2 behaviour).

Scheduling
----------
The driver keeps the snapshot backbone (:class:`~repro.runtime.pool
.SnapshotBackbone`) local: it resolves every chunk's predecessor-boundary
snapshot up front and retains the payloads until the chunk completes, so
a chunk can be re-shipped anywhere at any time.  Chunks are dealt into
per-host queues — round-robin by default, or proportionally to observed
per-trial latency once an executor has served a batch to every host
(per-host chunk-size adaptation; see :meth:`ClusterExecutor._plan`).  One
driver thread per host drains its own queue and, when idle, **steals from
the tail** of the longest live queue (``steal`` event).  A connection
failure is retried with exponential backoff; once retries are exhausted
— or the heartbeat monitor gives up first — the host is declared lost
(``worker_lost``) and its queued + in-flight chunks **migrate** — each
with its retained boundary snapshot — to the surviving hosts
(``chunk_migrated``).  If every host dies, the remaining chunks re-run
serially in the driver (``partial_fallback``), keeping completed chunks.
All of these events flow through the normal
:class:`~repro.runtime.progress.ProgressReporter` protocol, so journals,
``obs summary|trace|validate`` and the telemetry used in tests cover
distributed runs exactly like local ones.

Fault injection
---------------
:class:`WorkerServer` accepts a :class:`~repro.runtime.faults
.WorkerFaults` bundle (compiled from a seed-reproducible
:class:`~repro.runtime.faults.FaultPlan`) and reports every fault it
fires as a ``fault_injected`` event, so chaos tests can hold the
injected cause and the observed recovery on one validated journal
timeline.  The legacy ``crash_after``/``delay`` knobs remain as aliases
for the ``kill_worker``/``slow_host`` fault kinds.
"""

from __future__ import annotations

import math
import os
import pickle
import socket
import struct
import threading
import time
import traceback
from collections import deque
from dataclasses import replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .faults import WorkerFaults
from .pool import CHUNKS_PER_WORKER, SnapshotBackbone, chunk_specs
from .progress import NullProgress, ProgressReporter
from .snapshots import SNAPSHOT_KINDS
from .trials import TrialResult, TrialSpec, run_chunk

__all__ = [
    "ClusterExecutor",
    "MIN_PROTOCOL_VERSION",
    "PROTOCOL_VERSION",
    "WorkerServer",
    "parse_hosts",
    "recv_message",
    "send_message",
]

#: Version the driver offers in the hello; the worker answers with
#: ``min(offered, PROTOCOL_VERSION)``.  v2 added the heartbeat session
#: role (ping/pong liveness probes).
PROTOCOL_VERSION = 2

#: Oldest version either side still speaks.  Offers below this floor (or
#: non-integer versions) fail the connection immediately rather than
#: mis-deserializing mid-batch.
MIN_PROTOCOL_VERSION = 1

#: 8-byte big-endian unsigned length prefix framing every message.
_HEADER = struct.Struct(">Q")

#: Upper bound on a single framed message — far above any real chunk
#: (specs + a ~1MB snapshot), low enough to reject garbage prefixes from
#: a confused peer before attempting a giant allocation.
MAX_MESSAGE_BYTES = 1 << 31


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------


def send_message(sock: socket.socket, message: Mapping[str, Any]) -> None:
    """Frame and send one message: 8-byte length prefix + pickled dict."""
    payload = pickle.dumps(dict(message), protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    chunks: List[bytes] = []
    remaining = size
    while remaining > 0:
        part = sock.recv(min(remaining, 1 << 20))
        if not part:
            raise EOFError("peer closed the connection mid-message")
        chunks.append(part)
        remaining -= len(part)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Dict[str, Any]:
    """Receive one framed message; raises :class:`EOFError` on a clean close."""
    header = sock.recv(_HEADER.size)
    if not header:
        raise EOFError("peer closed the connection")
    if len(header) < _HEADER.size:
        header += _recv_exact(sock, _HEADER.size - len(header))
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise OSError(
            f"framed message of {length} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte limit (corrupt stream?)"
        )
    message = pickle.loads(_recv_exact(sock, length))
    if not isinstance(message, dict):
        raise OSError(f"expected a message dict, got {type(message).__name__}")
    return message


def parse_hosts(
    value: Union[None, str, Sequence[str]]
) -> Tuple[str, ...]:
    """Normalize a host list (CSV string or sequence) to ``host:port`` tuples.

    Accepts the CLI's ``--hosts host1:port,host2:port`` string, the
    ``$REPRO_HOSTS`` environment value, or an already-split sequence.
    ``None`` and the empty string mean "no cluster" and return ``()``.
    """
    if value is None:
        return ()
    if isinstance(value, str):
        parts = [p.strip() for p in value.split(",")]
    else:
        parts = [str(p).strip() for p in value]
    hosts = tuple(p for p in parts if p)
    for host in hosts:
        name, sep, port = host.rpartition(":")
        if not sep or not name:
            raise ValueError(
                f"invalid host {host!r}: expected 'host:port' (e.g. "
                "'127.0.0.1:7700')"
            )
        try:
            number = int(port)
        except ValueError:
            raise ValueError(f"invalid port in host {host!r}") from None
        if not 0 < number < 65536:
            raise ValueError(f"port out of range in host {host!r}")
    return hosts


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


class WorkerServer:
    """A cluster worker: accepts driver connections, runs chunks, replies.

    Sessions are served on one thread per connection, so a heartbeat
    session keeps answering pings while a chunk session is busy
    executing — exactly the property the driver's liveness monitor
    depends on.

    Parameters
    ----------
    host / port:
        Bind address.  ``port=0`` binds a free ephemeral port; the bound
        address is available as :attr:`address` (the loopback test harness
        and CI both rely on this).
    max_sessions:
        Exit :meth:`serve_forever` after this many *driver* (chunk-role)
        sessions have come and gone (``None`` = serve until
        :meth:`close`).  Heartbeat sessions never count toward the cap —
        a capped worker would otherwise die under monitoring alone.
    faults:
        A :class:`~repro.runtime.faults.WorkerFaults` bundle of
        deterministic fault-injection knobs (usually compiled from a
        :class:`~repro.runtime.faults.FaultPlan`).  Every fault that
        fires is reported once per kind through ``progress`` as a
        ``fault_injected`` event.
    crash_after / delay:
        Legacy aliases for the ``kill_worker`` / ``slow_host`` fault
        kinds, merged into ``faults`` (explicit ``faults`` fields win).
    progress:
        Optional :class:`~repro.runtime.progress.ProgressReporter`
        receiving ``on_fault_injected`` callbacks — in-process chaos
        tests pass the same collector the driver uses, putting cause and
        recovery on one timeline.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_sessions: Optional[int] = None,
        crash_after: Optional[int] = None,
        delay: float = 0.0,
        faults: Optional[WorkerFaults] = None,
        progress: Optional[ProgressReporter] = None,
    ) -> None:
        self.max_sessions = max_sessions
        self.crash_after = crash_after
        self.delay = delay
        merged = faults if faults is not None else WorkerFaults()
        if crash_after is not None and merged.kill_after_chunks is None:
            merged = replace(merged, kill_after_chunks=int(crash_after))
        if delay and not merged.slow_seconds:
            merged = replace(merged, slow_seconds=float(delay))
        self.faults = merged
        self.progress = progress if progress is not None else NullProgress()
        self._mutex = threading.Lock()
        self._conns: set = set()
        self._threads: List[threading.Thread] = []
        self._served_chunks = 0
        self._sent_frames = 0
        self._pongs = 0
        self._accepted = 0
        self._driver_sessions = 0
        self._reported_faults: set = set()
        self._closed = False
        self._listener = socket.create_server((host, port))
        self.port = self._listener.getsockname()[1]
        self.address = f"{host}:{self.port}"

    def close(self) -> None:
        """Simulate/perform worker death: drop the listener and every live
        connection — chunk and heartbeat sessions alike — so the driver
        observes the same thing a crashed process would produce
        (idempotent)."""
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            conns = list(self._conns)
        self._close_listener()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:  # pragma: no cover - peer may be gone already
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def _close_listener(self) -> None:
        # The shutdown matters: close() alone does not wake a thread
        # already blocked in accept(), and the kernel keeps the port
        # bound through that in-flight accept — so a "dead" worker
        # would keep accepting (and serving!) new sessions.  shutdown
        # forces the pending accept to return an error immediately.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:  # pragma: no cover - not listening / already gone
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def __enter__(self) -> "WorkerServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _inject(self, kind: str, detail: str) -> None:
        """Report one injected fault (once per kind, to keep journals tidy)."""
        with self._mutex:
            if kind in self._reported_faults:
                return
            self._reported_faults.add(kind)
        self.progress.on_fault_injected(self.address, kind, detail)

    def serve_forever(self) -> None:
        """Accept and serve sessions until closed (or the driver-session cap).

        Each accepted connection is served on its own daemon thread; the
        accept loop exits when the listener closes — via :meth:`close`,
        a ``kill_worker`` fault, or the ``max_sessions`` cap being
        reached by a finishing driver session.
        """
        while True:
            with self._mutex:
                if self._closed:
                    break
                if (
                    self.max_sessions is not None
                    and self._driver_sessions >= self.max_sessions
                ):
                    break
            try:
                conn, _addr = self._listener.accept()
            except OSError:  # listener closed (close(), cap, or kill fault)
                break
            with self._mutex:
                died = self._closed
                accepted = self._accepted
                if not died:
                    self._accepted += 1
            if died:
                # close() raced the accept: the kernel completed this
                # handshake before the listener went down, but the worker
                # is dead — drop the connection unserved so the driver
                # sees the death instead of a zombie session.
                try:
                    conn.close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass
                break
            refuse = self.faults.refuse_after_sessions
            if refuse is not None and accepted >= refuse:
                # Simulated wedged accept queue: take the connection and
                # immediately drop it, so the driver's dial "succeeds"
                # but the handshake never completes.
                self._inject(
                    "refuse_connect", f"refused connection {accepted}"
                )
                try:
                    conn.close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass
                continue
            self._threads = [t for t in self._threads if t.is_alive()]
            thread = threading.Thread(
                target=self._run_session,
                args=(conn,),
                name=f"worker-session-{accepted}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()
        self.close()

    def _run_session(self, conn: socket.socket) -> None:
        """Session thread wrapper: track the connection, count driver roles."""
        with self._mutex:
            self._conns.add(conn)
        role = None
        try:
            role = self._serve_session(conn)
        finally:
            with self._mutex:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            if role == "driver":
                with self._mutex:
                    self._driver_sessions += 1
                    capped = (
                        self.max_sessions is not None
                        and self._driver_sessions >= self.max_sessions
                    )
                if capped:
                    # Unblock the accept loop so serve_forever can exit.
                    self._close_listener()

    def _serve_session(self, conn: socket.socket) -> Optional[str]:
        """One session: handshake, then a chunk loop or a heartbeat loop."""
        try:
            hello = recv_message(conn)
        except (EOFError, OSError, pickle.UnpicklingError):
            return None
        version = hello.get("version")
        if (
            hello.get("type") != "hello"
            or not isinstance(version, int)
            or isinstance(version, bool)
            or version < MIN_PROTOCOL_VERSION
        ):
            try:
                send_message(
                    conn,
                    {
                        "type": "error",
                        "error": (
                            f"protocol mismatch: worker speaks "
                            f"{MIN_PROTOCOL_VERSION}..{PROTOCOL_VERSION}, "
                            f"driver sent {hello!r}"
                        ),
                    },
                )
            except OSError:  # pragma: no cover - peer already gone
                pass
            return None
        negotiated = min(version, PROTOCOL_VERSION)
        role = hello.get("role", "driver") if negotiated >= 2 else "driver"
        try:
            send_message(
                conn,
                {"type": "welcome", "version": negotiated, "pid": os.getpid()},
            )
        except OSError:
            return None
        if role == "heartbeat":
            self._serve_heartbeat(conn)
            return "heartbeat"
        self._serve_chunks(conn)
        return "driver"

    def _serve_heartbeat(self, conn: socket.socket) -> None:
        """Answer ping frames with pong until the peer hangs up.

        A ``stall_heartbeat`` fault silences the worker *without* closing
        the connection — the driver must detect the stall by timeout, the
        same way it would detect a hung process.
        """
        while True:
            try:
                message = recv_message(conn)
            except (EOFError, OSError, pickle.UnpicklingError):
                return
            kind = message.get("type")
            if kind == "bye":
                return
            if kind != "ping":
                try:
                    send_message(
                        conn,
                        {"type": "error", "error": f"unexpected message {kind!r}"},
                    )
                except OSError:
                    return
                continue
            stall = self.faults.stall_heartbeat_after
            with self._mutex:
                pongs = self._pongs
            if stall is not None and pongs >= stall:
                self._inject(
                    "stall_heartbeat", f"stalled after {pongs} pongs"
                )
                while True:  # swallow pings silently; never answer again
                    try:
                        recv_message(conn)
                    except (EOFError, OSError, pickle.UnpicklingError):
                        return
            with self._mutex:
                self._pongs += 1
            try:
                send_message(conn, {"type": "pong", "seq": message.get("seq")})
            except OSError:
                return

    def _serve_chunks(self, conn: socket.socket) -> None:
        """One driver session: a chunk/result loop with fault injection."""
        while True:
            try:
                message = recv_message(conn)
            except (EOFError, OSError):
                return
            kind = message.get("type")
            if kind == "bye":
                return
            if kind != "chunk":
                send_message(
                    conn, {"type": "error", "error": f"unexpected message {kind!r}"}
                )
                continue
            kill = self.faults.kill_after_chunks
            with self._mutex:
                served = self._served_chunks
            if kill is not None and served >= kill:
                # Simulated host death: drop every connection mid-request
                # and refuse future dials, so chunk retries and heartbeat
                # probes fail alike.
                self._inject("kill_worker", f"killed after {served} chunks")
                self.close()
                return
            if self.faults.slow_seconds:
                self._inject(
                    "slow_host", f"{self.faults.slow_seconds:g}s per chunk"
                )
                time.sleep(self.faults.slow_seconds)
            try:
                results = run_chunk(message["specs"], message.get("snapshot"))
            except Exception:  # noqa: BLE001 - remote traceback travels back
                send_message(
                    conn,
                    {
                        "type": "error",
                        "chunk": message.get("chunk"),
                        "error": traceback.format_exc(),
                    },
                )
                continue
            with self._mutex:
                self._served_chunks += 1
                frame = self._sent_frames
                self._sent_frames += 1
            reply = {
                "type": "result",
                "chunk": message.get("chunk"),
                "results": results,
            }
            fault = self.faults.frame_fault_at(frame)
            if fault is not None and fault.mode == "drop":
                # Swallow the reply and drop the link: the driver sees a
                # transport error (never a hang) and re-dispatches.
                self._inject("drop_frame", f"dropped result frame {frame}")
                return
            if fault is not None and fault.mode == "truncate":
                self._inject(
                    "truncate_frame", f"truncated result frame {frame}"
                )
                payload = pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
                try:
                    conn.sendall(
                        _HEADER.pack(len(payload)) + payload[: len(payload) // 2]
                    )
                except OSError:
                    pass
                return
            if fault is not None and fault.mode == "delay":
                self._inject(
                    "delay_frame",
                    f"delayed result frame {frame} by {fault.seconds:g}s",
                )
                time.sleep(fault.seconds)
            try:
                send_message(conn, reply)
            except OSError:
                return


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------


class _ProtocolUnsupported(OSError):
    """The peer cannot serve the requested session role (legacy worker)."""


class _WorkerSession:
    """Driver-side handle on one connected worker (socket + handshake)."""

    def __init__(self, sock: socket.socket, pid: int, version: int) -> None:
        self.sock = sock
        self.pid = pid
        self.version = version

    @classmethod
    def connect(
        cls, host: str, timeout: float, role: Optional[str] = None
    ) -> "_WorkerSession":
        """Dial ``host:port``, negotiate a version, return a ready session.

        The driver offers :data:`PROTOCOL_VERSION` first; if the worker
        rejects the offer with a protocol error (a pre-negotiation v1
        worker), it re-dials once with :data:`MIN_PROTOCOL_VERSION`.
        Role-carrying sessions (``role="heartbeat"``) need protocol 2 and
        raise :class:`_ProtocolUnsupported` against older workers instead
        of downgrading.
        """
        name, _, port = host.rpartition(":")
        versions = [PROTOCOL_VERSION]
        if role is None and MIN_PROTOCOL_VERSION < PROTOCOL_VERSION:
            versions.append(MIN_PROTOCOL_VERSION)
        last_error = ""
        for version in versions:
            sock = socket.create_connection((name, int(port)), timeout=timeout)
            try:
                hello: Dict[str, Any] = {"type": "hello", "version": version}
                if role is not None:
                    hello["role"] = role
                send_message(sock, hello)
                welcome = recv_message(sock)
            except BaseException:
                sock.close()
                raise
            if welcome.get("type") == "welcome":
                try:
                    negotiated = int(welcome.get("version", version))
                except (TypeError, ValueError):
                    negotiated = version
                sock.settimeout(None)
                return cls(sock, int(welcome.get("pid", -1)), negotiated)
            sock.close()
            last_error = str(welcome.get("error", welcome))
            if "protocol" not in last_error.lower():
                raise OSError(
                    f"worker {host} rejected the handshake: {last_error}"
                )
            # A protocol rejection: fall through to the legacy version.
        if role is not None:
            raise _ProtocolUnsupported(
                f"worker {host} cannot serve {role} sessions: {last_error}"
            )
        raise OSError(f"worker {host} rejected the handshake: {last_error}")

    def request(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        """Send one message and block for its reply."""
        send_message(self.sock, message)
        return recv_message(self.sock)

    def close(self, polite: bool = False) -> None:
        """Drop the connection (optionally after a ``bye``).

        The shutdown before close matters: it unblocks a peer thread —
        or this driver's own dispatch thread — currently parked in
        ``recv`` on the same socket, which is how the heartbeat monitor
        cancels an in-flight request to a host it just declared dead.
        """
        if polite:
            try:
                send_message(self.sock, {"type": "bye"})
            except OSError:  # pragma: no cover - peer already gone
                pass
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


class _RunState:
    """Shared scheduler state for one batch (guarded by ``cond``)."""

    def __init__(
        self,
        chunks: Sequence[Sequence[TrialSpec]],
        hosts: Sequence[str],
        dealt: Optional[Mapping[str, Sequence[int]]] = None,
    ) -> None:
        self.cond = threading.Condition()
        self.total_chunks = len(chunks)
        self.total_trials = sum(len(chunk) for chunk in chunks)
        self.queues: Dict[str, deque] = {host: deque() for host in hosts}
        if dealt is None:
            for i in range(len(chunks)):
                self.queues[hosts[i % len(hosts)]].append(i)
        else:
            for host, ids in dealt.items():
                self.queues[host].extend(ids)
        self.live = set(hosts)
        self.in_flight: Dict[str, int] = {}
        self.completed: Dict[int, List[TrialResult]] = {}
        self.announced: set = set()
        self.done_trials = 0
        self.error: Optional[Tuple[int, str]] = None
        # Dispatch sessions by host, registered so the heartbeat monitor
        # can sever a blocked request when it declares the host dead.
        self.sessions: Dict[str, _WorkerSession] = {}
        self.monitor_sessions: Dict[str, _WorkerSession] = {}
        # Set once every dispatch thread has drained; monitors exit on it
        # and suppress any late events.
        self.finished = threading.Event()


class ClusterExecutor:
    """Runs a batch of :class:`TrialSpec` across remote worker hosts.

    Implements the same ``run(specs) -> [TrialResult]`` contract as
    :class:`~repro.runtime.pool.TrialExecutor` — callers (and
    :func:`~repro.runtime.api.run_trials`) cannot tell the two apart
    except through progress events.  See the module docstring for the
    scheduling, liveness and failure semantics.

    Parameters
    ----------
    hosts:
        Worker addresses (``host:port`` strings, CSV string accepted).
    chunk_size:
        Trials per dispatched chunk (default: batch split into
        ``len(hosts) * CHUNKS_PER_WORKER`` chunks, mirroring the pool —
        or latency-proportional per-host sizes once adaptation has
        history; an explicit value disables adaptation).
    progress:
        Optional :class:`ProgressReporter`; cluster events are reported
        through the ``on_worker_connect`` / ``on_worker_lost`` /
        ``on_chunk_migrated`` / ``on_steal`` / ``on_heartbeat_miss``
        hooks.
    snapshots / snapshot_store:
        Boundary-snapshot hand-off, exactly as on the pool executor.
    retries:
        Reconnection attempts per host before it is declared lost.
    backoff:
        Base of the exponential retry backoff (seconds): attempt *k*
        sleeps ``backoff * 2**(k-1)``.
    connect_timeout:
        Socket connect/handshake timeout per attempt (seconds).
    heartbeat_interval:
        Seconds between liveness pings per host (``0`` disables the
        monitor, restoring dispatch-only failure detection).
    heartbeat_misses:
        Consecutive missed pings before a host is declared lost; with
        the interval this bounds detection latency at roughly
        ``heartbeat_interval * heartbeat_misses`` seconds.
    adaptive:
        Adapt per-host chunk sizes to observed per-trial latency on the
        *next* batch this executor runs (requires history for every
        host, so the first batch is always dealt uniformly).  Results
        are unaffected either way — only placement changes.
    """

    def __init__(
        self,
        hosts: Union[str, Sequence[str]],
        chunk_size: Optional[int] = None,
        progress: Optional[ProgressReporter] = None,
        snapshots: bool = True,
        snapshot_store=None,
        retries: int = 3,
        backoff: float = 0.1,
        connect_timeout: float = 10.0,
        heartbeat_interval: float = 2.0,
        heartbeat_misses: int = 3,
        adaptive: bool = True,
    ) -> None:
        self.hosts = parse_hosts(hosts)
        if not self.hosts:
            raise ValueError("ClusterExecutor needs at least one host")
        if len(set(self.hosts)) != len(self.hosts):
            raise ValueError(f"duplicate hosts in {self.hosts!r}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if heartbeat_interval < 0:
            raise ValueError(
                f"heartbeat_interval must be >= 0, got {heartbeat_interval}"
            )
        if heartbeat_misses < 1:
            raise ValueError(
                f"heartbeat_misses must be >= 1, got {heartbeat_misses}"
            )
        self.chunk_size = chunk_size
        self.progress = progress if progress is not None else NullProgress()
        self.snapshots = bool(snapshots)
        self.snapshot_store = snapshot_store
        self.retries = max(0, int(retries))
        self.backoff = float(backoff)
        self.connect_timeout = float(connect_timeout)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_misses = int(heartbeat_misses)
        self.adaptive = bool(adaptive)
        # EWMA of observed seconds-per-trial by host, fed by completed
        # dispatches and consumed by _plan on the next batch.
        self._latency: Dict[str, float] = {}
        self._latency_lock = threading.Lock()

    def _auto_chunk_size(self, total: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, math.ceil(total / (len(self.hosts) * CHUNKS_PER_WORKER)))

    def run(self, specs: Sequence[TrialSpec]) -> List[TrialResult]:
        """Execute the batch and return results in ``(index, stream)`` order."""
        specs = list(specs)
        if not specs:
            return []
        started = time.perf_counter()
        if not all(spec.portable for spec in specs):
            # Live objects cannot travel over the wire; same downgrade as
            # the pool, so cluster options are always safe to pass.
            self.progress.on_fallback(
                "batch holds live objects that cannot be shipped to cluster workers"
            )
            self.progress.on_start(len(specs), 1)
            self.progress.on_chunk_start(0, len(specs))
            results = run_chunk(specs)
            self.progress.on_chunk_done(0, results)
            results.sort(key=lambda r: (r.index, r.stream))
            self.progress.on_finish(len(results), time.perf_counter() - started)
            return results

        self.progress.on_start(len(specs), len(self.hosts))
        chunks, dealt = self._plan(specs)
        boundaries, payloads = self._boundary_payloads(chunks)
        state = _RunState(chunks, self.hosts, dealt)
        threads = [
            threading.Thread(
                target=self._serve_host,
                args=(state, host, chunks, boundaries, payloads),
                name=f"cluster-{host}",
                daemon=True,
            )
            for host in self.hosts
        ]
        monitors = []
        if self.heartbeat_interval > 0:
            monitors = [
                threading.Thread(
                    target=self._monitor_host,
                    args=(state, host),
                    name=f"heartbeat-{host}",
                    daemon=True,
                )
                for host in self.hosts
            ]
        for thread in threads:
            thread.start()
        for monitor in monitors:
            monitor.start()
        for thread in threads:
            thread.join()
        state.finished.set()
        with state.cond:
            leftover_sessions = list(state.monitor_sessions.values())
            state.monitor_sessions.clear()
        for session in leftover_sessions:
            session.close()
        for monitor in monitors:
            monitor.join(timeout=0.5)

        if state.error is not None:
            chunk_id, remote_error = state.error
            raise RuntimeError(
                f"chunk {chunk_id} failed on a cluster worker:\n{remote_error}"
            )

        leftover = [
            i for i in range(len(chunks)) if i not in state.completed
        ]
        if leftover:
            # Every host died: finish in-driver, keeping completed chunks —
            # the cluster analogue of the pool's mid-batch partial fallback.
            remaining = sum(len(chunks[i]) for i in leftover)
            self.progress.on_partial_fallback(
                state.done_trials,
                len(specs),
                f"all {len(self.hosts)} cluster worker(s) lost; "
                f"re-running {remaining} of {len(specs)} trials locally",
            )
            for chunk_id in leftover:
                if chunk_id not in state.announced:
                    self.progress.on_chunk_start(
                        chunk_id, len(chunks[chunk_id]), boundary=boundaries[chunk_id]
                    )
                part = run_chunk(chunks[chunk_id], payloads.get(chunk_id))
                state.completed[chunk_id] = part
                state.done_trials += len(part)
                self.progress.on_chunk_done(chunk_id, part)
                self.progress.on_progress(state.done_trials, len(specs))

        results = [r for i in sorted(state.completed) for r in state.completed[i]]
        results.sort(key=lambda r: (r.index, r.stream))
        self.progress.on_finish(len(results), time.perf_counter() - started)
        return results

    # -- chunk planning ----------------------------------------------------

    def _plan(
        self, specs: Sequence[TrialSpec]
    ) -> Tuple[List[List[TrialSpec]], Optional[Dict[str, List[int]]]]:
        """Split the batch into chunks and deal them to hosts.

        Default plan: uniform ``_auto_chunk_size`` chunks dealt
        round-robin (``dealt=None``).  Once adaptation has a latency
        estimate for *every* host — i.e. from this executor's second
        batch on — the batch is instead apportioned into contiguous
        per-host blocks proportional to ``1/latency`` (largest-remainder
        rounding), each block split into at most
        :data:`CHUNKS_PER_WORKER` chunks, so a fast host gets more and
        larger chunks and a straggler gets fewer and smaller ones.

        Either way chunks partition ``specs`` contiguously in index
        order, which keeps the snapshot backbone's boundary targets
        monotonically increasing — a hard requirement of
        :meth:`~repro.runtime.pool.SnapshotBackbone.payload_at`.
        """
        total = len(specs)
        with self._latency_lock:
            latency = dict(self._latency)
        usable = (
            self.chunk_size is None
            and self.adaptive
            and len(self.hosts) > 1
            and all(latency.get(host, 0.0) > 0.0 for host in self.hosts)
        )
        if not usable:
            return chunk_specs(specs, self._auto_chunk_size(total)), None
        weights = {host: 1.0 / latency[host] for host in self.hosts}
        scale = sum(weights.values())
        quotas = {host: total * weights[host] / scale for host in self.hosts}
        shares = {host: int(math.floor(quotas[host])) for host in self.hosts}
        remainder = total - sum(shares.values())
        by_fraction = sorted(
            self.hosts,
            key=lambda host: (shares[host] - quotas[host], self.hosts.index(host)),
        )
        for host in by_fraction[:remainder]:
            shares[host] += 1
        chunks: List[List[TrialSpec]] = []
        dealt: Dict[str, List[int]] = {host: [] for host in self.hosts}
        cursor = 0
        for host in self.hosts:
            block = list(specs[cursor : cursor + shares[host]])
            cursor += shares[host]
            if not block:
                continue
            size = max(1, math.ceil(len(block) / CHUNKS_PER_WORKER))
            for piece in chunk_specs(block, size):
                dealt[host].append(len(chunks))
                chunks.append(piece)
        return chunks, dealt

    def _note_latency(self, host: str, seconds: float, trials: int) -> None:
        """Fold one completed dispatch into the host's per-trial EWMA."""
        if trials <= 0 or seconds < 0:
            return
        per_trial = seconds / trials
        with self._latency_lock:
            previous = self._latency.get(host)
            if previous is None:
                self._latency[host] = per_trial
            else:
                self._latency[host] = 0.5 * previous + 0.5 * per_trial

    def _boundary_payloads(
        self, chunks: Sequence[Sequence[TrialSpec]]
    ) -> Tuple[Dict[int, Optional[int]], Dict[int, Optional[Mapping[str, Any]]]]:
        """Resolve every chunk's hand-off snapshot before dispatch begins.

        Unlike the pool — where a boundary payload is consumed by exactly
        one submission — the cluster retains all payloads for the whole
        batch, because any chunk may need re-shipping to a different host
        after a failure.  The backbone advance is the same single
        O(horizon) pass either way.
        """
        boundaries: Dict[int, Optional[int]] = {i: None for i in range(len(chunks))}
        payloads: Dict[int, Optional[Mapping[str, Any]]] = {
            i: None for i in range(len(chunks))
        }
        pipelined = (
            self.snapshots
            and len(chunks) > 1
            and chunks[0][0].kind in SNAPSHOT_KINDS
        )
        if not pipelined:
            return boundaries, payloads
        backbone = SnapshotBackbone(chunks[0][0], self.snapshot_store, self.progress)
        for i, chunk in enumerate(chunks):
            target = min(spec.index for spec in chunk) - 1
            boundaries[i] = target
            payloads[i] = backbone.payload_at(target)
        return boundaries, payloads

    # -- heartbeat monitor -------------------------------------------------

    def _monitor_host(self, state: _RunState, host: str) -> None:
        """Liveness monitor thread: ping ``host`` until the batch drains.

        Counts consecutive misses (timeout, refused dial, transport
        error); every miss is reported via ``on_heartbeat_miss`` and at
        :attr:`heartbeat_misses` the host goes through the same
        :meth:`_host_lost` path as a dispatch failure.  Legacy v1 workers
        (no heartbeat role) disable the monitor for their host.  Each
        probe cycle costs ``max(interval, time spent probing)``, so
        detection is bounded by ``misses * max(interval, ping timeout)``
        with the ping timeout fixed at the interval.
        """
        interval = self.heartbeat_interval
        threshold = self.heartbeat_misses
        ping_timeout = max(interval, 0.02)
        session: Optional[_WorkerSession] = None
        misses = 0
        seq = 0
        try:
            while not state.finished.is_set():
                began = time.monotonic()
                with state.cond:
                    if host not in state.live:
                        return
                try:
                    if session is None:
                        session = _WorkerSession.connect(
                            host, self.connect_timeout, role="heartbeat"
                        )
                        if session.version < 2:
                            return  # pre-heartbeat worker: nothing to probe
                        session.sock.settimeout(ping_timeout)
                        with state.cond:
                            state.monitor_sessions[host] = session
                    seq += 1
                    reply = session.request({"type": "ping", "seq": seq})
                    if reply.get("type") != "pong":
                        raise OSError(f"unexpected heartbeat reply {reply!r}")
                    misses = 0
                except _ProtocolUnsupported:
                    session = None
                    return
                except (OSError, EOFError, pickle.PickleError, struct.error) as exc:
                    if session is not None:
                        with state.cond:
                            if state.monitor_sessions.get(host) is session:
                                state.monitor_sessions.pop(host, None)
                        session.close()
                        session = None
                    if state.finished.is_set():
                        return
                    misses += 1
                    with state.cond:
                        if host not in state.live:
                            return
                    self.progress.on_heartbeat_miss(host, misses, threshold)
                    if misses >= threshold:
                        self._host_lost(
                            state,
                            host,
                            f"no heartbeat after {misses} probes "
                            f"({interval:g}s apart): {exc}",
                        )
                        return
                pause = max(0.0, interval - (time.monotonic() - began))
                if state.finished.wait(timeout=pause):
                    return
        finally:
            if session is not None:
                with state.cond:
                    if state.monitor_sessions.get(host) is session:
                        state.monitor_sessions.pop(host, None)
                session.close(polite=True)

    # -- per-host driver thread --------------------------------------------

    def _serve_host(
        self,
        state: _RunState,
        host: str,
        chunks: Sequence[Sequence[TrialSpec]],
        boundaries: Mapping[int, Optional[int]],
        payloads: Mapping[int, Optional[Mapping[str, Any]]],
    ) -> None:
        session: Optional[_WorkerSession] = None
        failures = 0
        try:
            while True:
                chunk_id = self._claim(state, host, chunks, boundaries)
                if chunk_id is None:
                    return
                try:
                    if session is None:
                        session = _WorkerSession.connect(host, self.connect_timeout)
                        with state.cond:
                            state.sessions[host] = session
                            self.progress.on_worker_connect(host, session.pid)
                    dispatched = time.perf_counter()
                    reply = session.request(
                        {
                            "type": "chunk",
                            "chunk": chunk_id,
                            "specs": list(chunks[chunk_id]),
                            "snapshot": payloads.get(chunk_id),
                        }
                    )
                    elapsed = time.perf_counter() - dispatched
                except (OSError, EOFError, pickle.PickleError, struct.error) as exc:
                    if session is not None:
                        session.close()
                    failures += 1
                    with state.cond:
                        if state.sessions.get(host) is session:
                            state.sessions.pop(host, None)
                        session = None
                        if host not in state.live:
                            # The heartbeat monitor declared this host dead
                            # while we were blocked; it already migrated the
                            # in-flight chunk — do not re-queue or re-lose.
                            return
                        retrying = failures <= self.retries
                        if retrying:
                            state.in_flight.pop(host, None)
                            state.queues[host].appendleft(chunk_id)
                            state.cond.notify_all()
                    if retrying:
                        time.sleep(self.backoff * (2 ** (failures - 1)))
                        continue
                    self._host_lost(state, host, exc, chunk_id)
                    return
                failures = 0
                if reply.get("type") == "result":
                    self._note_latency(host, elapsed, len(chunks[chunk_id]))
                    self._record(state, host, chunk_id, reply.get("results") or [])
                else:
                    # A worker-side exception is deterministic — the chunk
                    # would fail anywhere — so it aborts the batch instead
                    # of migrating.
                    with state.cond:
                        if state.error is None:
                            state.error = (
                                chunk_id,
                                str(reply.get("error", reply)),
                            )
                        state.in_flight.pop(host, None)
                        state.cond.notify_all()
                    return
        finally:
            with state.cond:
                if state.sessions.get(host) is session:
                    state.sessions.pop(host, None)
            if session is not None:
                session.close(polite=True)

    def _claim(
        self,
        state: _RunState,
        host: str,
        chunks: Sequence[Sequence[TrialSpec]],
        boundaries: Mapping[int, Optional[int]],
    ) -> Optional[int]:
        """Pop this host's next chunk, stealing from a busy peer when idle.

        Blocks while other live hosts still have queued or in-flight work
        that could migrate here; returns ``None`` when the batch is done,
        aborted, or no future work can possibly reach this host.
        """
        with state.cond:
            while True:
                if state.error is not None or host not in state.live:
                    return None
                queue = state.queues[host]
                stolen_from = None
                if not queue:
                    victims = [
                        h
                        for h in state.live
                        if h != host and state.queues[h]
                    ]
                    if victims:
                        victim = max(victims, key=lambda h: len(state.queues[h]))
                        queue.append(state.queues[victim].pop())
                        stolen_from = victim
                if queue:
                    chunk_id = queue.popleft()
                    state.in_flight[host] = chunk_id
                    if stolen_from is not None:
                        self.progress.on_steal(chunk_id, stolen_from, host)
                    if chunk_id not in state.announced:
                        state.announced.add(chunk_id)
                        self.progress.on_chunk_start(
                            chunk_id,
                            len(chunks[chunk_id]),
                            boundary=boundaries[chunk_id],
                        )
                    return chunk_id
                if len(state.completed) == state.total_chunks:
                    return None
                pending_elsewhere = any(
                    h != host and (h in state.in_flight or state.queues[h])
                    for h in state.live
                )
                if not pending_elsewhere:
                    return None
                state.cond.wait(timeout=0.05)

    def _host_lost(
        self,
        state: _RunState,
        host: str,
        reason: Union[str, Exception],
        chunk_id: Optional[int] = None,
    ) -> None:
        """Declare a host dead (once) and migrate its work to the survivors.

        Shared by the dispatch path (retries exhausted; passes the failed
        ``chunk_id``) and the heartbeat monitor (missed-ping threshold;
        no ``chunk_id`` — the in-flight entry covers any blocked
        dispatch).  The first caller wins; later calls are no-ops, which
        is what keeps ``worker_lost`` exactly-once when both paths race.
        """
        if state.finished.is_set():
            return
        sessions: List[_WorkerSession] = []
        with state.cond:
            if host not in state.live:
                return
            state.live.discard(host)
            orphans: List[int] = []
            in_flight = state.in_flight.pop(host, None)
            if chunk_id is not None and chunk_id != in_flight:
                orphans.append(chunk_id)
            if in_flight is not None:
                orphans.append(in_flight)
            orphans.extend(state.queues[host])
            state.queues[host].clear()
            orphans = [o for o in orphans if o not in state.completed]
            for registry in (state.sessions, state.monitor_sessions):
                session = registry.pop(host, None)
                if session is not None:
                    sessions.append(session)
            self.progress.on_worker_lost(host, str(reason))
            survivors = sorted(state.live)
            if survivors:
                for i, orphan in enumerate(orphans):
                    target = survivors[i % len(survivors)]
                    state.queues[target].append(orphan)
                    self.progress.on_chunk_migrated(orphan, host, target)
            state.cond.notify_all()
        # Closed outside the lock: severing the dispatch session unblocks
        # a thread parked in recv on it, which then observes the host is
        # no longer live and exits without re-queueing.
        for session in sessions:
            session.close()

    def _record(
        self, state: _RunState, host: str, chunk_id: int, results: List[TrialResult]
    ) -> None:
        """Record a completed chunk exactly once and wake waiting peers."""
        with state.cond:
            state.in_flight.pop(host, None)
            if chunk_id not in state.completed:
                state.completed[chunk_id] = results
                state.done_trials += len(results)
                self.progress.on_chunk_done(chunk_id, results)
                self.progress.on_progress(state.done_trials, state.total_trials)
            state.cond.notify_all()
