"""Trial model: picklable (config, seed, index) units and their runners.

A :class:`TrialSpec` captures one independent estimation of one experiment
as pure data: which trial *kind* to run, the master seed of the
experiment's :class:`~repro.sim.rng.RngHub`, the trial index, and declarative
specs for the overlay and estimator.  Because every trial derives its
randomness from ``(hub_seed, index)`` alone — via the hub's stateless
``child``/``stream`` derivation — a batch of specs can be executed in any
order, in any process, and the merged results are bit-identical to a serial
run.

Chunks of specs that share a context (same overlay, same churn trace) are
executed together by a *chunk runner* so the worker warms up once per
chunk: the overlay is built a single time, and churn-driven kinds resume
the scenario from a hand-off snapshot when the executor supplies one
(:mod:`repro.runtime.snapshots`), else replay the membership trace from
t=0 (churn draws from its own named stream, so replaying events without
estimating reproduces the serial graph state exactly — the prefix-replay
fallback behind ``--no-snapshot``).

For backwards compatibility the ``overlay``/``estimator`` slots also accept
live objects (an :class:`~repro.overlay.graph.OverlayGraph`, a factory
closure).  Such specs are *not portable*: they cannot be pickled to workers
or hashed into a store key, so the executor runs them serially in-process
as one chunk — the graceful-fallback path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..churn.models import ChurnEvent, ChurnTrace
from ..churn.scheduler import ChurnScheduler
from ..core import kernels as _kernels
from ..core.aggregation import AggregationMonitor, AggregationProtocol
from ..core.base import EstimatorError
from ..core.hops_sampling import HopsSamplingEstimator
from ..core.idspace import IdSpaceSpec, IntervalDensityEstimator
from ..core.random_tour import RandomTourEstimator
from ..core.sample_collide import SampleCollideEstimator
from ..overlay.builders import (
    heterogeneous_random,
    homogeneous_random,
    ring_lattice,
    scale_free,
)
from ..overlay.graph import OverlayGraph
from ..overlay.repair import RepairPolicySpec
from ..sim.latency import LatencySpec
from ..overlay.views import degree_histogram, degree_stats, powerlaw_exponent
from ..sim.rng import RngHub, derive_seed
from ..sim.rounds import RoundDriver
from .obs import chunk_profiler, phase
from .snapshots import SNAPSHOT_KINDS, ProbeReplayState, RepairReplayState

__all__ = [
    "EstimatorSpec",
    "IdSpaceSpec",
    "LatencySpec",
    "OverlaySpec",
    "RepairPolicySpec",
    "TrialResult",
    "TrialSpec",
    "BACKEND_KINDS",
    "DELAY_PRICINGS",
    "ESTIMATOR_BUILDERS",
    "ESTIMATOR_RNG_BUILDERS",
    "ESTIMATOR_STREAMS",
    "OVERLAY_BUILDERS",
    "TRIAL_KINDS",
    "apply_graph_backend",
    "run_chunk",
    "trace_from_payload",
    "trace_to_payload",
]

# Kernel work inside estimators surfaces as the ``kernel`` phase of chunk
# profiles; the hook keeps :mod:`repro.core.kernels` runtime-agnostic.
_kernels.set_phase_recorder(phase)


# ----------------------------------------------------------------------
# Churn-trace payloads (JSON-able mirror of ChurnTrace)
# ----------------------------------------------------------------------


def trace_to_payload(trace: ChurnTrace) -> List[Dict[str, float]]:
    """Flatten a trace into a list of plain event dicts (JSON/pickle safe).

    Only non-default fields are emitted so payloads hash stably.
    """
    payload: List[Dict[str, float]] = []
    for ev in trace:
        item: Dict[str, float] = {"time": float(ev.time)}
        if ev.joins:
            item["joins"] = int(ev.joins)
        if ev.leaves:
            item["leaves"] = int(ev.leaves)
        if ev.frac_joins:
            item["frac_joins"] = float(ev.frac_joins)
        if ev.frac_leaves:
            item["frac_leaves"] = float(ev.frac_leaves)
        payload.append(item)
    return payload


def trace_from_payload(payload: Sequence[Mapping[str, float]]) -> ChurnTrace:
    """Rebuild a fresh (unconsumed) :class:`ChurnTrace` from a payload."""
    return ChurnTrace(ChurnEvent(**item) for item in payload)


def _as_trace(value: Union[ChurnTrace, Sequence[Mapping[str, float]]]) -> ChurnTrace:
    if isinstance(value, ChurnTrace):
        return value
    return trace_from_payload(value)


# ----------------------------------------------------------------------
# Declarative overlay / estimator specs
# ----------------------------------------------------------------------

#: builder name -> callable(hub, **params) -> OverlayGraph.  Stream names
#: match the historical runner code so spec-built overlays are identical to
#: the ones the figure functions used to build inline.  Builders that take a
#: ``stream`` parameter let callers reproduce experiments that historically
#: drew the overlay from a non-default hub channel (the topology ablation
#: uses "het"/"hom"); the default always matches the runner's lineage.
OVERLAY_BUILDERS: Dict[str, Callable[..., OverlayGraph]] = {
    "heterogeneous": lambda hub, n, max_degree=10, min_degree=1, stream="overlay": (
        heterogeneous_random(
            n, max_degree=max_degree, min_degree=min_degree, rng=hub.stream(stream)
        )
    ),
    "homogeneous": lambda hub, n, k=8, stream="overlay": homogeneous_random(
        n, k=k, rng=hub.stream(stream)
    ),
    "ring_lattice": lambda hub, n, k=2: ring_lattice(n, k=k),
    "scale_free": lambda hub, n, m=3: scale_free(n, m=m, rng=hub.stream("overlay.sf")),
}


@dataclass(frozen=True)
class OverlaySpec:
    """Declarative, picklable description of an overlay build."""

    builder: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.builder not in OVERLAY_BUILDERS:
            raise ValueError(
                f"unknown overlay builder {self.builder!r}; "
                f"have {sorted(OVERLAY_BUILDERS)}"
            )

    def build(self, hub: RngHub) -> OverlayGraph:
        """Deterministically materialize the overlay from ``hub``."""
        return OVERLAY_BUILDERS[self.builder](hub, **self.params)

    def as_config(self) -> Dict[str, Any]:
        """Plain-dict form for content addressing."""
        return {"builder": self.builder, "params": dict(self.params)}

    @classmethod
    def heterogeneous(
        cls,
        n: int,
        max_degree: int = 10,
        min_degree: int = 1,
        stream: str = "overlay",
    ) -> "OverlaySpec":
        """The paper's standard heterogeneous random overlay.

        ``stream`` names the hub channel the builder draws from; it is only
        recorded (and only perturbs the content address) when it differs
        from the historical default.
        """
        params = {
            "n": int(n),
            "max_degree": int(max_degree),
            "min_degree": int(min_degree),
        }
        if stream != "overlay":
            params["stream"] = stream
        return cls("heterogeneous", params)

    @classmethod
    def homogeneous(cls, n: int, k: int = 8, stream: str = "overlay") -> "OverlaySpec":
        """The §IV-A near-``k``-regular overlay (topology ablation)."""
        params: Dict[str, Any] = {"n": int(n), "k": int(k)}
        if stream != "overlay":
            params["stream"] = stream
        return cls("homogeneous", params)

    @classmethod
    def ring_lattice(cls, n: int, k: int = 2) -> "OverlaySpec":
        """Deterministic worst-case-expansion ring (timer ablation)."""
        return cls("ring_lattice", {"n": int(n), "k": int(k)})

    @classmethod
    def scale_free(cls, n: int, m: int = 3) -> "OverlaySpec":
        """The Fig 7/8 Barabási–Albert overlay."""
        return cls("scale_free", {"n": int(n), "m": int(m)})


class _AggregationEpoch:
    """One fixed-length Aggregation epoch wrapped as a one-shot estimator.

    The topology ablation compares Aggregation head-to-head with the probe
    estimators; this adapter gives ``AggregationProtocol(...).estimate(rounds=r)``
    the same ``.estimate()`` surface the probe kinds expose.
    """

    def __init__(self, graph: OverlayGraph, rng, rounds: int = 50) -> None:
        self._protocol = AggregationProtocol(graph, rng=rng)
        self._rounds = int(rounds)

    def estimate(self):
        """Run one fresh epoch and return its :class:`Estimate`."""
        return self._protocol.estimate(rounds=self._rounds)


#: estimator kind -> callable(graph, rng, **params) building the estimator
#: from an *explicit* generator.  This is the primitive layer: the hub-based
#: builders below and the ``fresh_probe`` trial kind (which must reproduce
#: ``hub.fresh(name)`` lineages exactly) both construct through it.
ESTIMATOR_RNG_BUILDERS: Dict[str, Callable[..., Any]] = {
    "sample_collide": lambda graph, rng, l=200, timer=10.0, backend="dict": (
        SampleCollideEstimator(graph, l=l, timer=timer, rng=rng, backend=backend)
    ),
    "hops_sampling": lambda graph, rng, gossip_to=2, min_hops_reporting=5, oracle_distances=False, backend="dict": (
        HopsSamplingEstimator(
            graph,
            gossip_to=gossip_to,
            min_hops_reporting=min_hops_reporting,
            oracle_distances=oracle_distances,
            rng=rng,
            backend=backend,
        )
    ),
    "random_tour": lambda graph, rng: RandomTourEstimator(graph, rng=rng),
    "aggregation_epoch": lambda graph, rng, rounds=50: _AggregationEpoch(
        graph, rng, rounds=rounds
    ),
    # The shared IdentifierSpace is worker-local context, not spec data:
    # ``idspace_probe`` injects it via ``build_with_rng(space=...)``.
    "interval_density": lambda graph, rng, k=50, space=None: IntervalDensityEstimator(
        graph, space=space, k=k, rng=rng
    ),
}

#: Hub channel each kind draws from when built via a hub.  "sc"/"hops"
#: match the factories previously defined inline in the figure modules,
#: preserving RNG lineage.
ESTIMATOR_STREAMS: Dict[str, str] = {
    "sample_collide": "sc",
    "hops_sampling": "hops",
    "random_tour": "rt",
    "aggregation_epoch": "agg",
    "interval_density": "ids",
}

#: Estimator kinds that accept a ``backend`` parameter (the batched-kernel
#: graph representations of :mod:`repro.core.kernels`).  Kinds outside the
#: set — e.g. the inherently sequential random tour — always run on the
#: dict reference and are left untouched by :func:`apply_graph_backend`.
BACKEND_KINDS = frozenset({"sample_collide", "hops_sampling"})


def _hub_builder(kind: str) -> Callable[..., Any]:
    def build(graph: OverlayGraph, hub: RngHub, **params: Any) -> Any:
        """Build the estimator drawing from its historical hub stream."""
        return ESTIMATOR_RNG_BUILDERS[kind](
            graph, hub.stream(ESTIMATOR_STREAMS[kind]), **params
        )

    return build


#: estimator kind -> callable(graph, hub, **params) (hub-stream lineage).
ESTIMATOR_BUILDERS: Dict[str, Callable[..., Any]] = {
    kind: _hub_builder(kind) for kind in ESTIMATOR_RNG_BUILDERS
}


@dataclass(frozen=True)
class EstimatorSpec:
    """Declarative, picklable description of an estimator instantiation."""

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ESTIMATOR_BUILDERS:
            raise ValueError(
                f"unknown estimator {self.kind!r}; have {sorted(ESTIMATOR_BUILDERS)}"
            )

    def build(self, graph: OverlayGraph, hub: RngHub):
        """Instantiate the estimator on ``graph`` drawing RNG from ``hub``."""
        return ESTIMATOR_BUILDERS[self.kind](graph, hub, **self.params)

    def build_with_rng(self, graph: OverlayGraph, rng, **context):
        """Instantiate the estimator with an explicit generator.

        Used by trial kinds that must reproduce a specific historical RNG
        lineage (``fresh_probe`` derives one generator per repetition).
        ``context`` passes worker-local objects the spec cannot carry —
        e.g. the shared :class:`~repro.core.idspace.IdentifierSpace` of
        ``idspace_probe`` — and never enters the content address.
        """
        return ESTIMATOR_RNG_BUILDERS[self.kind](
            graph, rng, **{**self.params, **context}
        )

    def as_config(self) -> Dict[str, Any]:
        """Plain-dict form for content addressing."""
        return {"kind": self.kind, "params": dict(self.params)}

    def with_backend(self, backend: str) -> "EstimatorSpec":
        """Copy of this spec pinned to a graph ``backend``.

        Only meaningful for kinds in :data:`BACKEND_KINDS`; other kinds
        are returned unchanged.  ``"dict"`` *removes* the key — the
        reference backend is the unrecorded default, so historical
        artifacts (hashed before the parameter existed) stay addressable,
        while ``"array"`` perturbs the content address on purpose: its
        results are distributionally, not bitwise, equivalent.
        """
        if self.kind not in BACKEND_KINDS:
            return self
        params = {k: v for k, v in self.params.items() if k != "backend"}
        if backend != "dict":
            params["backend"] = backend
        if params == self.params:
            return self
        return EstimatorSpec(self.kind, params)

    @classmethod
    def sample_collide(
        cls, l: int = 200, timer: float = 10.0, backend: str = "dict"
    ) -> "EstimatorSpec":
        """The §III-A Sample&Collide estimator (sample size ``l``)."""
        spec = cls("sample_collide", {"l": int(l), "timer": float(timer)})
        return spec.with_backend(backend)

    @classmethod
    def hops_sampling(
        cls,
        gossip_to: int = 2,
        min_hops_reporting: int = 5,
        oracle_distances: bool = False,
        backend: str = "dict",
    ) -> "EstimatorSpec":
        """The §III-B HopsSampling estimator (gossip poll + hop histogram)."""
        params = {
            "gossip_to": int(gossip_to),
            "min_hops_reporting": int(min_hops_reporting),
        }
        # Only recorded when enabled so pre-existing artifacts (hashed
        # without the key) stay addressable.
        if oracle_distances:
            params["oracle_distances"] = True
        return cls("hops_sampling", params).with_backend(backend)

    @classmethod
    def random_tour(cls) -> "EstimatorSpec":
        """The §II random-walk baseline (cost-gap ablation)."""
        return cls("random_tour", {})

    @classmethod
    def aggregation_epoch(cls, rounds: int = 50) -> "EstimatorSpec":
        """One fixed-length Aggregation epoch as a one-shot estimate."""
        return cls("aggregation_epoch", {"rounds": int(rounds)})

    @classmethod
    def interval_density(cls, k: int = 50) -> "EstimatorSpec":
        """The §I id-density estimator (idspace ablation).

        The shared :class:`~repro.core.idspace.IdentifierSpace` is built
        worker-side from the batch's :class:`IdSpaceSpec` and injected via
        ``build_with_rng(space=...)``.
        """
        return cls("interval_density", {"k": int(k)})


# ----------------------------------------------------------------------
# TrialSpec / TrialResult
# ----------------------------------------------------------------------

OverlayLike = Union[OverlaySpec, OverlayGraph, None]
EstimatorLike = Union[EstimatorSpec, Callable, None]


@dataclass(frozen=True)
class TrialSpec:
    """One independent trial as a (config, seed, index) unit.

    Parameters
    ----------
    kind:
        Key into :data:`TRIAL_KINDS` selecting the chunk runner.
    hub_seed:
        Master seed of the experiment's :class:`RngHub`; every random draw
        of the trial derives from it and ``index`` alone.
    index:
        Trial number within the experiment (1-based estimation number for
        probe kinds, 0-based run number for aggregation kinds — whatever
        the serial code historically used, so RNG lineage is preserved).
    overlay / estimator:
        Declarative specs (portable) or live objects (in-process only).
    params:
        Kind-specific extras (churn-trace payload, horizon, rounds, …).
    stream:
        Sub-stream id for kinds that run several estimation streams over
        one churning overlay (Figs 9-14).
    overlay_seed:
        Hub seed the overlay is built from when it differs from
        ``hub_seed`` (Fig 8 builds the overlay from the figure hub but runs
        each series under a child hub).
    """

    kind: str
    hub_seed: int
    index: int
    overlay: OverlayLike = None
    estimator: EstimatorLike = None
    params: Dict[str, Any] = field(default_factory=dict)
    stream: int = 0
    overlay_seed: Optional[int] = None

    @property
    def portable(self) -> bool:
        """True when the spec can be pickled to a worker and content-hashed."""
        if self.overlay is not None and not isinstance(self.overlay, OverlaySpec):
            return False
        if self.estimator is not None and not isinstance(
            self.estimator, EstimatorSpec
        ):
            return False
        return _jsonable(self.params)

    def as_config(self) -> Dict[str, Any]:
        """Canonical per-trial configuration (raises on live objects)."""
        if not self.portable:
            raise TypeError(
                "spec holds live objects (graph/closure/trace) and cannot "
                "be content-addressed; use OverlaySpec/EstimatorSpec and "
                "JSON-able params"
            )
        return {
            "kind": self.kind,
            "hub_seed": int(self.hub_seed),
            "index": int(self.index),
            "stream": int(self.stream),
            "overlay": self.overlay.as_config() if self.overlay else None,
            "overlay_seed": self.overlay_seed,
            "estimator": self.estimator.as_config() if self.estimator else None,
            "params": dict(self.params),
        }


def _jsonable(value: Any) -> bool:
    if value is None or isinstance(value, (bool, int, float, str)):
        return True
    if isinstance(value, (list, tuple)):
        return all(_jsonable(v) for v in value)
    if isinstance(value, dict):
        return all(isinstance(k, str) and _jsonable(v) for k, v in value.items())
    return False


def apply_graph_backend(
    specs: Sequence["TrialSpec"], backend: str
) -> List["TrialSpec"]:
    """Pin every kernel-capable estimator spec in ``specs`` to ``backend``.

    The funnel :func:`~repro.runtime.api.run_trials` applies to a batch
    when :attr:`~repro.runtime.api.RuntimeOptions.graph_backend` is set:
    estimator specs of :data:`BACKEND_KINDS` get the backend injected into
    their params (see :meth:`EstimatorSpec.with_backend` for the
    content-address rules), everything else passes through unchanged —
    including live-object specs, which are not portable anyway.
    """
    if backend not in _kernels.GRAPH_BACKENDS:
        raise ValueError(
            f"unknown graph backend {backend!r}; have {_kernels.GRAPH_BACKENDS}"
        )
    out: List[TrialSpec] = []
    for spec in specs:
        if isinstance(spec.estimator, EstimatorSpec):
            pinned = spec.estimator.with_backend(backend)
            if pinned is not spec.estimator:
                spec = replace(spec, estimator=pinned)
        out.append(spec)
    return out


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one trial.

    ``value``/``true_size`` cover the scalar probe kinds; kinds that
    produce whole curves (aggregation) carry them in ``extra``.

    ``profile`` carries worker-side phase timings attached by
    :func:`run_chunk` (see :mod:`repro.runtime.obs`).  It is pure
    telemetry: excluded from equality (``compare=False``) and from
    :meth:`as_dict`, so stored artifacts and determinism comparisons are
    byte-identical whether or not profiling ran.
    """

    index: int
    value: float
    true_size: float
    stream: int = 0
    ok: bool = True
    extra: Optional[Dict[str, Any]] = None
    profile: Optional[Dict[str, Any]] = field(default=None, compare=False)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able form for the results store."""
        out: Dict[str, Any] = {
            "index": int(self.index),
            "value": float(self.value),
            "true_size": float(self.true_size),
        }
        if self.stream:
            out["stream"] = int(self.stream)
        if not self.ok:
            out["ok"] = False
        if self.extra is not None:
            out["extra"] = self.extra
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrialResult":
        """Rebuild a result from its :meth:`as_dict` form (store reads)."""
        return cls(
            index=int(data["index"]),
            value=float(data["value"]),
            true_size=float(data["true_size"]),
            stream=int(data.get("stream", 0)),
            ok=bool(data.get("ok", True)),
            extra=data.get("extra"),
        )


# ----------------------------------------------------------------------
# Chunk runners
# ----------------------------------------------------------------------


#: Kinds whose chunk runner mutates the overlay (churn): they must build a
#: fresh graph per chunk and must never share a memoized instance.
_MUTATING_KINDS = frozenset(
    {"dynamic_probe", "multi_probe", "agg_dynamic", "repair_replay"}
)

#: Per-process memo of the last few spec-built overlays.  Static kinds only
#: read the graph, and spec builds are deterministic, so sharing one
#: instance across chunks/batches (e.g. Fig 8's three series over one
#: scale-free overlay) changes nothing but the build count.
_GRAPH_CACHE: Dict[str, OverlayGraph] = {}
_GRAPH_CACHE_LIMIT = 4


def _chunk_graph(spec: TrialSpec) -> OverlayGraph:
    """The chunk's overlay: built from the spec, or the live graph as-is."""
    if isinstance(spec.overlay, OverlaySpec):
        seed = spec.hub_seed if spec.overlay_seed is None else spec.overlay_seed
        if spec.kind in _MUTATING_KINDS:
            with phase("boot"):
                return spec.overlay.build(RngHub(seed))
        key = f"{seed}:{sorted(spec.overlay.as_config()['params'].items())}:{spec.overlay.builder}"
        graph = _GRAPH_CACHE.get(key)
        if graph is None:
            with phase("boot"):
                graph = spec.overlay.build(RngHub(seed))
            while len(_GRAPH_CACHE) >= _GRAPH_CACHE_LIMIT:
                _GRAPH_CACHE.pop(next(iter(_GRAPH_CACHE)))
            _GRAPH_CACHE[key] = graph
        return graph
    if isinstance(spec.overlay, OverlayGraph):
        return spec.overlay
    raise TypeError(f"trial kind {spec.kind!r} needs an overlay, got {spec.overlay!r}")


def _make_estimator(spec: TrialSpec, graph: OverlayGraph, hub: RngHub):
    if isinstance(spec.estimator, EstimatorSpec):
        return spec.estimator.build(graph, hub)
    if callable(spec.estimator):
        return spec.estimator(graph, hub)
    raise TypeError(f"trial kind {spec.kind!r} needs an estimator")


def _run_static_probe(specs: Sequence[TrialSpec]) -> List[TrialResult]:
    """Independent one-shot estimations on a static overlay (Figs 1-4, 8, 18)."""
    first = specs[0]
    hub = RngHub(first.hub_seed)
    graph = _chunk_graph(first)
    out: List[TrialResult] = []
    for spec in specs:
        est = _make_estimator(spec, graph, hub.child(f"run{spec.index}"))
        with phase("estimation", (spec.index, spec.stream)):
            value = float(est.estimate().value)
        out.append(
            TrialResult(
                index=spec.index,
                value=value,
                true_size=float(graph.size),
                stream=spec.stream,
            )
        )
    return out


def _scalar_meta(meta: Mapping[str, Any]) -> Dict[str, Any]:
    """The JSON-safe scalar slice of an estimate's diagnostics."""
    out: Dict[str, Any] = {}
    for k, v in meta.items():
        if isinstance(v, (np.integer, np.floating)):
            v = v.item()
        if isinstance(v, (bool, int, float, str)):
            out[k] = v
    return out


def _fresh_results(
    specs: Sequence[TrialSpec],
    graph: OverlayGraph,
    make_estimator: Callable[[TrialSpec, Any], Any],
) -> List[TrialResult]:
    """Shared loop of the ``hub.fresh``-lineage probe kinds.

    The ablation tables historically drew one generator per repetition via
    :meth:`~repro.sim.rng.RngHub.fresh`: the ``k``-th call for a name seeds
    from ``derive_seed(hub_seed, f"{name}#{k}")``.  Here each spec's
    ``index`` *is* that counter value and ``params["fresh_name"]`` the
    stream label, so a batch reproduces the serial draws bit-for-bit in any
    execution order and at any worker count.  Message cost and the scalar
    diagnostics land in ``extra`` (``messages``, ``meta``) for the tables'
    overhead columns.
    """
    out: List[TrialResult] = []
    for spec in specs:
        name = spec.params["fresh_name"]
        if not isinstance(spec.estimator, EstimatorSpec):
            raise TypeError(f"{spec.kind} trials require an EstimatorSpec")
        rng = np.random.default_rng(
            derive_seed(spec.hub_seed, f"{name}#{spec.index}")
        )
        with phase("estimation", (spec.index, spec.stream)):
            est = make_estimator(spec, rng).estimate()
        out.append(
            TrialResult(
                index=spec.index,
                value=float(est.value),
                true_size=float(graph.size),
                stream=spec.stream,
                extra={
                    "messages": int(est.messages),
                    "meta": _scalar_meta(est.meta),
                },
            )
        )
    return out


def _run_fresh_probe(specs: Sequence[TrialSpec]) -> List[TrialResult]:
    """Repetition-style estimations with ``hub.fresh`` lineage (ablations)."""
    graph = _chunk_graph(specs[0])
    return _fresh_results(
        specs, graph, lambda spec, rng: spec.estimator.build_with_rng(graph, rng)
    )


def _run_idspace_probe(specs: Sequence[TrialSpec]) -> List[TrialResult]:
    """Fresh-lineage estimations against a worker-built identifier space.

    Like ``fresh_probe``, but the estimator is constructed around a shared
    :class:`~repro.core.idspace.IdentifierSpace` materialized inside the
    worker from the batch's :class:`IdSpaceSpec` (``params["idspace"]``).
    Ids draw from the hub stream the spec names — independent of the
    per-repetition fresh generators — so every chunk rebuilds the exact
    same id assignment and chunk boundaries cannot perturb results.
    """
    first = specs[0]
    graph = _chunk_graph(first)
    space = IdSpaceSpec.from_config(first.params.get("idspace") or {}).build(
        graph, RngHub(first.hub_seed)
    )
    return _fresh_results(
        specs,
        graph,
        lambda spec, rng: spec.estimator.build_with_rng(graph, rng, space=space),
    )


def _replay_probe(
    specs: Sequence[TrialSpec],
    estimate_at: Callable[[int, OverlayGraph, RngHub], List[TrialResult]],
    snapshot: Optional[Mapping[str, Any]] = None,
) -> List[TrialResult]:
    """Shared churn-replay skeleton for the probe-under-churn kinds.

    Advances the churn schedule step by step exactly as the serial loop
    did; ``estimate_at`` is invoked for each step so the kind decides which
    trials (if any) run there.  Replay is exact because churn consumes only
    the hub's ``"churn"`` stream while estimations draw from per-index
    child hubs.

    With a ``snapshot`` (a :class:`~repro.runtime.snapshots.ProbeReplayState`
    payload at some boundary index) the replay *resumes* there instead of
    rebuilding the overlay and replaying the churn prefix from t=0 — the
    state hand-off that makes chunked replay O(horizon) total.  Restored
    or not, the step loop visits identical states, so results are
    bit-identical either way.
    """
    first = specs[0]
    if snapshot is not None:
        with phase("restore"):
            state = ProbeReplayState.restore(first, snapshot)
    else:
        with phase("boot"):
            state = ProbeReplayState.boot(first)
    last = max(spec.index for spec in specs)
    out: List[TrialResult] = []
    for i in range(state.position + 1, last + 1):
        with phase("churn"):
            state.advance(i)
        if state.dead:
            break
        out.extend(estimate_at(i, state.graph, state.hub))
    return out


def _run_dynamic_probe(
    specs: Sequence[TrialSpec],
    snapshot: Optional[Mapping[str, Any]] = None,
) -> List[TrialResult]:
    """Probe-style estimations interleaved with churn (single stream)."""
    wanted = {spec.index: spec for spec in specs}

    def estimate_at(i: int, graph: OverlayGraph, hub: RngHub) -> List[TrialResult]:
        """One estimation at step ``i`` when the batch wants one there."""
        spec = wanted.get(i)
        if spec is None:
            return []
        try:
            with phase("estimation", (i, spec.stream)):
                value = float(
                    _make_estimator(spec, graph, hub.child(f"run{i}")).estimate().value
                )
        except EstimatorError:
            value = float("nan")
        return [TrialResult(index=i, value=value, true_size=float(graph.size))]

    return _replay_probe(specs, estimate_at, snapshot)


def _run_multi_probe(
    specs: Sequence[TrialSpec],
    snapshot: Optional[Mapping[str, Any]] = None,
) -> List[TrialResult]:
    """Several estimation streams over one churning overlay (Figs 9-14)."""
    by_index: Dict[int, List[TrialSpec]] = {}
    for spec in specs:
        by_index.setdefault(spec.index, []).append(spec)

    def estimate_at(i: int, graph: OverlayGraph, hub: RngHub) -> List[TrialResult]:
        """All wanted streams' estimations at step ``i``, stream order."""
        out = []
        for spec in sorted(by_index.get(i, ()), key=lambda s: s.stream):
            try:
                est = _make_estimator(spec, graph, hub.child(f"s{spec.stream}r{i}"))
                with phase("estimation", (i, spec.stream)):
                    value = float(est.estimate().value)
            except EstimatorError:
                value = float("nan")
            out.append(
                TrialResult(
                    index=i,
                    value=value,
                    true_size=float(graph.size),
                    stream=spec.stream,
                )
            )
        return out

    return _replay_probe(specs, estimate_at, snapshot)


def _run_agg_convergence(specs: Sequence[TrialSpec]) -> List[TrialResult]:
    """Per-round convergence curves, one epoch per trial (Figs 5-6)."""
    first = specs[0]
    hub = RngHub(first.hub_seed)
    graph = _chunk_graph(first)
    n = graph.size
    out: List[TrialResult] = []
    for spec in specs:
        rounds = int(spec.params["rounds"])
        proto = AggregationProtocol(
            graph, rng=hub.child(f"agg{spec.index}").stream("proto")
        )
        with phase("estimation", (spec.index, spec.stream)):
            proto.start_epoch()
            qs: List[float] = []
            for _ in range(rounds):
                proto.run_round()
                try:
                    qs.append(float(proto.read().quality(n)))
                except EstimatorError:  # pragma: no cover - initiator always has value
                    qs.append(0.0)
        out.append(
            TrialResult(
                index=spec.index,
                value=qs[-1] if qs else float("nan"),
                true_size=float(n),
                extra={"quality": qs},
            )
        )
    return out


def _run_agg_epoch(specs: Sequence[TrialSpec]) -> List[TrialResult]:
    """Fresh fixed-length epoch per trial on a static overlay (Fig 8).

    The i-th trial's RNG reproduces the i-th ``hub.fresh("proto")`` draw of
    the historical serial loop.
    """
    first = specs[0]
    graph = _chunk_graph(first)
    n = graph.size
    out: List[TrialResult] = []
    for spec in specs:
        rng = np.random.default_rng(
            derive_seed(spec.hub_seed, f"proto#{spec.index - 1}")
        )
        proto = AggregationProtocol(graph, rng=rng)
        with phase("estimation", (spec.index, spec.stream)):
            est = proto.estimate(rounds=int(spec.params.get("rounds", 50)))
        out.append(
            TrialResult(index=spec.index, value=float(est.value), true_size=float(n))
        )
    return out


def _run_agg_dynamic(specs: Sequence[TrialSpec]) -> List[TrialResult]:
    """Continuous Aggregation monitoring under churn, one run per trial
    (Figs 15-17).  Each run builds its own overlay from its run hub."""
    first = specs[0]
    hub = RngHub(first.hub_seed)
    out: List[TrialResult] = []
    for spec in specs:
        p = spec.params
        run_hub = hub.child(f"aggdyn{spec.index}")
        if not isinstance(spec.overlay, OverlaySpec):
            raise TypeError("agg_dynamic trials require an OverlaySpec")
        with phase("boot"):
            graph = spec.overlay.build(run_hub)
        driver = RoundDriver()
        scheduler = ChurnScheduler(
            graph,
            _as_trace(p["trace"]),
            rng=run_hub.stream("churn"),
            max_degree=int(p.get("max_degree", 10)),
        )
        scheduler.attach(driver)
        monitor = AggregationMonitor(
            graph,
            restart_interval=int(p["restart_interval"]),
            rng=run_hub.stream("monitor"),
        )
        monitor.attach(driver)
        sizes: List[int] = []
        driver.subscribe(lambda rnd, g=graph, s=sizes: s.append(g.size), priority=30)
        # Churn and continuous monitoring advance in lock step inside the
        # driver; the inseparable scenario run is attributed to estimation.
        with phase("estimation", (spec.index, spec.stream)):
            driver.run(int(p["horizon"]))

        xs: List[float] = []
        ests: List[float] = []
        trues: List[float] = []
        for rnd, (est, size) in enumerate(zip(monitor.series, sizes), start=1):
            if size > 0:
                xs.append(float(rnd))
                ests.append(float(est))
                trues.append(float(size))
        out.append(
            TrialResult(
                index=spec.index,
                value=ests[-1] if ests else float("nan"),
                true_size=trues[-1] if trues else 0.0,
                ok=bool(ests),
                extra={
                    "x": xs,
                    "estimates": ests,
                    "true": trues,
                    "failures": int(monitor.failures),
                },
            )
        )
    return out


#: Pricing sequence of the delay ablation.  The serial study priced the
#: four completion-time rows in exactly this order, all consuming one
#: shared ``"lat"`` latency stream, so replay must walk the same order;
#: a ``delay_probe`` spec's ``index`` is a position in this tuple.
DELAY_PRICINGS = ("sc_sequential", "sc_parallel", "hops", "aggregation")


def _run_delay_probe(specs: Sequence[TrialSpec]) -> List[TrialResult]:
    """Latency-model pricing of measured protocol structures (delay ablation).

    One chunk = one overlay + one measurement pass + a pricing replay.
    The real S&C and HopsSampling estimators run once per chunk on their
    own hub streams (``"sc"``/``"hops"``) to measure execution structure
    (walks, hops per walk, spread rounds); the :class:`LatencySpec`-built
    model then prices the :data:`DELAY_PRICINGS` sequence, drawing every
    latency from the shared ``"lat"`` stream in that fixed order.  A chunk
    starting mid-sequence replays the earlier pricings' draws and discards
    them — the latency-stream analogue of churn-prefix replay — so each
    trial depends only on ``(hub_seed, index)``.
    """
    first = specs[0]
    p = first.params
    hub = RngHub(first.hub_seed)
    graph = _chunk_graph(first)
    model = LatencySpec.from_config(p["latency"]).build(rng=hub.stream("lat"))
    with phase("estimation"):
        sc_est = ESTIMATOR_RNG_BUILDERS["sample_collide"](
            graph, hub.stream("sc"), **p.get("sc", {})
        ).estimate()
        hops_params = dict(p.get("hops", {}))
        hops_est = ESTIMATOR_RNG_BUILDERS["hops_sampling"](
            graph, hub.stream("hops"), **hops_params
        ).estimate()

    walks = int(sc_est.meta["draws"])
    hops_per_walk = sc_est.meta["walk_hops"] / max(walks, 1)
    spread_rounds = int(hops_est.meta["spread_rounds"])
    agg_rounds = int(p["agg_rounds"])
    fanout = int(hops_params.get("gossip_to", 2))
    structure = {
        "walks": walks,
        "hops_per_walk": float(hops_per_walk),
        "spread_rounds": spread_rounds,
        "agg_rounds": agg_rounds,
    }
    pricings = (
        lambda: model.sample_collide_delay(walks, hops_per_walk, parallel_walks=False),
        lambda: model.sample_collide_delay(walks, hops_per_walk, parallel_walks=True),
        lambda: model.hops_sampling_delay(spread_rounds, fanout=fanout),
        lambda: model.aggregation_delay(agg_rounds),
    )
    wanted = {spec.index: spec for spec in specs}
    last = max(wanted)
    if not (0 <= min(wanted) and last < len(pricings)):
        raise ValueError(
            f"delay_probe index out of range: have pricings 0..{len(pricings) - 1}"
        )
    out: List[TrialResult] = []
    for i in range(last + 1):
        breakdown = pricings[i]()
        spec = wanted.get(i)
        if spec is None:
            continue
        out.append(
            TrialResult(
                index=i,
                value=float(breakdown.total),
                true_size=float(graph.size),
                stream=spec.stream,
                extra={"pricing": DELAY_PRICINGS[i], **structure},
            )
        )
    return out


def _run_repair_replay(
    specs: Sequence[TrialSpec],
    snapshot: Optional[Mapping[str, Any]] = None,
) -> List[TrialResult]:
    """Aggregation monitoring under churn *with overlay repair* (Fig 17
    revisited).  One chunk = one scenario replay: churn (``"churn"``
    stream), the :class:`RepairPolicySpec`-built maintenance policy
    (``"rep"`` stream) and the monitor (``"monitor"`` stream) all advance
    in lock step up to the chunk's highest wanted round, exactly as the
    serial loop did — a chunk holding only late rounds reproduces the
    identical prefix because every draw comes from named hub streams.
    With a ``snapshot`` (a :class:`~repro.runtime.snapshots.RepairReplayState`
    payload) the replay resumes at the captured round instead of
    rebuilding from round 1.  Each trial records the held estimate and
    true size at its round, plus the *cumulative* repair traffic and
    failed-epoch count in ``extra`` (``messages``/``failures``), so the
    final round carries the serial run's totals.
    """
    first = specs[0]
    if snapshot is not None:
        with phase("restore"):
            state = RepairReplayState.restore(first, snapshot)
    else:
        with phase("boot"):
            state = RepairReplayState.boot(first)
    base = state.position
    if min(spec.index for spec in specs) < 1:
        raise ValueError("repair_replay indices are 1-based round numbers")
    last = max(spec.index for spec in specs)
    with phase("churn"):
        state.advance(last)

    wanted = {spec.index: spec for spec in specs}
    out: List[TrialResult] = []
    for i in range(base + 1, last + 1):
        spec = wanted.get(i)
        if spec is None:
            continue
        size, repair_msgs, failures = state.records[i - base - 1]
        out.append(
            TrialResult(
                index=i,
                value=float(state.monitor.series[i - base - 1]),
                true_size=float(size),
                stream=spec.stream,
                extra={"messages": int(repair_msgs), "failures": int(failures)},
            )
        )
    return out


def _run_overlay_stats(specs: Sequence[TrialSpec]) -> List[TrialResult]:
    """One overlay realization reduced to degree statistics (Fig 7).

    The trial's ``value`` is the mean degree and ``true_size`` the node
    count; ``extra`` carries the full ``(degree, count)`` histogram, the
    :class:`~repro.overlay.views.DegreeStats` scalars, the ML power-law
    exponent and ``average_degree`` (exactly ``graph.average_degree()``,
    for consumers like Table I's analytic overhead models).  Everything is
    a pure function of the built graph, so the result is as deterministic
    as the overlay build itself.
    """
    graph = _chunk_graph(specs[0])
    with phase("estimation"):
        hist = degree_histogram(graph)
        stats = degree_stats(graph)
        try:
            exponent = float(powerlaw_exponent(graph))
        except ValueError:
            exponent = float("nan")
        extra = {
            "histogram": [[int(d), int(c)] for d, c in hist],
            "powerlaw_exponent": exponent,
            "average_degree": float(graph.average_degree()),
            **{k: v for k, v in stats.as_dict().items() if k != "n"},
        }
    return [
        TrialResult(
            index=spec.index,
            value=float(stats.mean_degree),
            true_size=float(graph.size),
            stream=spec.stream,
            extra=extra,
        )
        for spec in specs
    ]


def _run_stream_epoch(specs: Sequence[TrialSpec]) -> List[TrialResult]:
    """Sequential Aggregation epochs drawing one shared hub stream (Table I).

    The historical serial code ran ``AggregationProtocol(graph,
    rng=hub.stream(name)).estimate(rounds=r)``: consecutive estimates on
    one protocol instance consume one *continuous* generator.  Here the
    i-th trial is the i-th ``estimate()`` call, so a chunk starting
    mid-sequence replays (and discards) the earlier epochs' draws — the
    same prefix-replay contract as ``delay_probe`` — making each trial a
    function of ``(hub_seed, index)`` alone.  ``extra`` records the
    epoch's message count for the tables' overhead columns.
    """
    first = specs[0]
    p = first.params
    hub = RngHub(first.hub_seed)
    graph = _chunk_graph(first)
    proto = AggregationProtocol(graph, rng=hub.stream(str(p.get("stream", "agg"))))
    rounds = int(p.get("rounds", 50))
    wanted = {spec.index: spec for spec in specs}
    if min(wanted) < 0:
        raise ValueError("stream_epoch indices are 0-based epoch numbers")
    out: List[TrialResult] = []
    for i in range(max(wanted) + 1):
        spec = wanted.get(i)
        key = (i, spec.stream) if spec is not None else None
        with phase("estimation", key):
            est = proto.estimate(rounds=rounds)
        if spec is None:
            continue
        out.append(
            TrialResult(
                index=i,
                value=float(est.value),
                true_size=float(graph.size),
                stream=spec.stream,
                extra={
                    "messages": int(est.messages),
                    "meta": _scalar_meta(est.meta),
                },
            )
        )
    return out


#: trial kind -> chunk runner.  Extend to open new workloads.  Runners of
#: kinds in :data:`~repro.runtime.snapshots.SNAPSHOT_KINDS` additionally
#: accept an optional replay-state snapshot as second argument.
TRIAL_KINDS: Dict[str, Callable[..., List[TrialResult]]] = {
    "static_probe": _run_static_probe,
    "fresh_probe": _run_fresh_probe,
    "idspace_probe": _run_idspace_probe,
    "delay_probe": _run_delay_probe,
    "dynamic_probe": _run_dynamic_probe,
    "multi_probe": _run_multi_probe,
    "repair_replay": _run_repair_replay,
    "agg_convergence": _run_agg_convergence,
    "agg_epoch": _run_agg_epoch,
    "agg_dynamic": _run_agg_dynamic,
    "overlay_stats": _run_overlay_stats,
    "stream_epoch": _run_stream_epoch,
}


def run_chunk(
    specs: Sequence[TrialSpec],
    snapshot: Optional[Mapping[str, Any]] = None,
) -> List[TrialResult]:
    """Execute one chunk of same-kind specs; the process-pool entry point.

    ``snapshot`` — accepted only for churn-replay kinds (the keys of
    :data:`~repro.runtime.snapshots.SNAPSHOT_KINDS`) — is the predecessor
    chunk's replay state at this chunk's start boundary: the runner resumes
    there instead of replaying the churn prefix from t=0.  Passing ``None``
    always works and reproduces the historical prefix-replay behaviour;
    results are bit-identical either way.
    """
    if not specs:
        return []
    kinds = {spec.kind for spec in specs}
    if len(kinds) != 1:
        raise ValueError(f"chunk mixes trial kinds: {sorted(kinds)}")
    kind = specs[0].kind
    try:
        runner = TRIAL_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown trial kind {kind!r}; have {sorted(TRIAL_KINDS)}"
        ) from None
    if snapshot is not None and kind not in SNAPSHOT_KINDS:
        raise ValueError(f"trial kind {kind!r} does not accept a replay snapshot")
    with chunk_profiler() as prof:
        if kind in SNAPSHOT_KINDS:
            results = runner(specs, snapshot)
        else:
            results = runner(specs)
    return _attach_profiles(results, prof)


def _attach_profiles(results: List[TrialResult], prof) -> List[TrialResult]:
    """Attach worker-side phase timings to each result (telemetry only).

    The chunk-level summary (pid, epoch start, shared boot/restore/churn
    phases) rides on the first result so exactly one copy crosses the
    pickle channel per chunk.
    """
    summary = prof.chunk_summary()
    out: List[TrialResult] = []
    for pos, result in enumerate(results):
        trial = prof.trials.get((result.index, result.stream))
        profile: Dict[str, Any] = dict(trial) if trial else {"phases": {}}
        if pos == 0:
            profile["chunk"] = summary
        out.append(replace(result, profile=profile))
    return out
