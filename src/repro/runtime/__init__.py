"""Parallel trial execution and content-addressed result caching.

The paper's figures are all "run N independent estimations of algorithm X
on overlay Y under churn Z" — embarrassingly parallel work.  This package
turns one such experiment into a batch of picklable
:class:`~repro.runtime.trials.TrialSpec` units, shards them across a
process pool (:class:`~repro.runtime.pool.TrialExecutor`) or a cluster of
remote worker hosts (:class:`~repro.runtime.cluster.ClusterExecutor`,
``docs/DISTRIBUTED.md``), and persists the
merged results in a content-addressed on-disk store
(:class:`~repro.runtime.store.ResultsStore`) so repeated runs are cache
hits.

Determinism contract: every trial derives its randomness from
``(hub_seed, trial index)`` via :class:`~repro.sim.rng.RngHub` child
streams, never from execution order or worker identity, so parallel results
are bit-identical to serial ones.  Churn-replay kinds additionally hand
scheduler-state snapshots between chunks
(:mod:`~repro.runtime.snapshots`, ``docs/SNAPSHOTS.md``) so chunked
replay is O(horizon) total — an execution detail that never changes
results or content addresses.

Entry points: :func:`~repro.runtime.api.run_trials` and
:func:`~repro.runtime.api.sweep`.
"""

from .api import (
    RuntimeOptions,
    batch_config,
    run_trials,
    series_from_results,
    supports_runtime,
    sweep,
)
from .cluster import (
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    ClusterExecutor,
    WorkerServer,
    parse_hosts,
)
from .faults import (
    FAULT_KINDS,
    Fault,
    FaultPlan,
    FrameFault,
    WorkerFaults,
    chaos_matrix,
)
from .obs import (
    JOURNAL_SCHEMA_VERSION,
    PHASES,
    JournalReporter,
    PhaseAccumulator,
)
from .pool import SnapshotBackbone, TrialExecutor, chunk_specs
from .progress import (
    LogProgress,
    NullProgress,
    ProgressReporter,
    TeeProgress,
    TelemetryCollector,
)
from .snapshots import (
    SNAPSHOT_KINDS,
    SNAPSHOT_SCHEMA_VERSION,
    ProbeReplayState,
    RepairReplayState,
    snapshot_config,
)
from .provenance import (
    PHASE_METRICS,
    detect_git_revision,
    metric_values,
    phase_metric_values,
    summarize_results,
)
from .store import (
    ArtifactInfo,
    GCReport,
    ResultsStore,
    SCHEMA_VERSION,
    StoreStats,
    canonical_json,
    content_key,
    group_key,
)
from .trends import (
    CheckReport,
    GroupTrend,
    MetricComparison,
    MetricTrend,
    TrendRecord,
    TrendReport,
    check_baseline,
    compare_revisions,
    discover_stores,
    load_baseline,
    make_baseline,
    scan_stores,
    trend_report,
)
from .trials import (
    DELAY_PRICINGS,
    EstimatorSpec,
    IdSpaceSpec,
    LatencySpec,
    OverlaySpec,
    RepairPolicySpec,
    TrialResult,
    TrialSpec,
    run_chunk,
    trace_from_payload,
    trace_to_payload,
)

__all__ = [
    "ArtifactInfo",
    "CheckReport",
    "ClusterExecutor",
    "DELAY_PRICINGS",
    "EstimatorSpec",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "FrameFault",
    "GCReport",
    "GroupTrend",
    "IdSpaceSpec",
    "JOURNAL_SCHEMA_VERSION",
    "JournalReporter",
    "LatencySpec",
    "LogProgress",
    "MIN_PROTOCOL_VERSION",
    "MetricComparison",
    "MetricTrend",
    "StoreStats",
    "NullProgress",
    "OverlaySpec",
    "PHASES",
    "PHASE_METRICS",
    "PROTOCOL_VERSION",
    "PhaseAccumulator",
    "ProbeReplayState",
    "RepairPolicySpec",
    "RepairReplayState",
    "ProgressReporter",
    "ResultsStore",
    "RuntimeOptions",
    "SCHEMA_VERSION",
    "SNAPSHOT_KINDS",
    "SNAPSHOT_SCHEMA_VERSION",
    "SnapshotBackbone",
    "TeeProgress",
    "TelemetryCollector",
    "TrendRecord",
    "TrendReport",
    "TrialExecutor",
    "TrialResult",
    "TrialSpec",
    "WorkerFaults",
    "WorkerServer",
    "batch_config",
    "canonical_json",
    "chaos_matrix",
    "check_baseline",
    "chunk_specs",
    "compare_revisions",
    "content_key",
    "detect_git_revision",
    "discover_stores",
    "group_key",
    "load_baseline",
    "make_baseline",
    "metric_values",
    "parse_hosts",
    "phase_metric_values",
    "run_chunk",
    "run_trials",
    "scan_stores",
    "series_from_results",
    "snapshot_config",
    "summarize_results",
    "supports_runtime",
    "sweep",
    "trace_from_payload",
    "trace_to_payload",
    "trend_report",
]
