"""Parallel trial execution and content-addressed result caching.

The paper's figures are all "run N independent estimations of algorithm X
on overlay Y under churn Z" — embarrassingly parallel work.  This package
turns one such experiment into a batch of picklable
:class:`~repro.runtime.trials.TrialSpec` units, shards them across a
process pool (:class:`~repro.runtime.pool.TrialExecutor`), and persists the
merged results in a content-addressed on-disk store
(:class:`~repro.runtime.store.ResultsStore`) so repeated runs are cache
hits.

Determinism contract: every trial derives its randomness from
``(hub_seed, trial index)`` via :class:`~repro.sim.rng.RngHub` child
streams, never from execution order or worker identity, so parallel results
are bit-identical to serial ones.

Entry points: :func:`~repro.runtime.api.run_trials` and
:func:`~repro.runtime.api.sweep`.
"""

from .api import (
    RuntimeOptions,
    batch_config,
    run_trials,
    series_from_results,
    supports_runtime,
    sweep,
)
from .pool import TrialExecutor, chunk_specs
from .progress import LogProgress, NullProgress, ProgressReporter, TelemetryCollector
from .store import (
    ArtifactInfo,
    GCReport,
    ResultsStore,
    SCHEMA_VERSION,
    StoreStats,
    canonical_json,
    content_key,
)
from .trials import (
    EstimatorSpec,
    OverlaySpec,
    TrialResult,
    TrialSpec,
    run_chunk,
    trace_from_payload,
    trace_to_payload,
)

__all__ = [
    "ArtifactInfo",
    "EstimatorSpec",
    "GCReport",
    "LogProgress",
    "StoreStats",
    "NullProgress",
    "OverlaySpec",
    "ProgressReporter",
    "ResultsStore",
    "RuntimeOptions",
    "SCHEMA_VERSION",
    "TelemetryCollector",
    "TrialExecutor",
    "TrialResult",
    "TrialSpec",
    "batch_config",
    "canonical_json",
    "chunk_specs",
    "content_key",
    "run_chunk",
    "run_trials",
    "series_from_results",
    "supports_runtime",
    "sweep",
    "trace_from_payload",
    "trace_to_payload",
]
