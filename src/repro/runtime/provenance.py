"""Provenance and metric summaries stamped into artifact headers.

The trend tracker (:mod:`repro.runtime.trends`) joins artifacts across git
revisions, so every artifact must record *which code produced it* and *what
its results look like* without forcing readers to parse the (potentially
large) trial payload.  Two pieces live here:

* :func:`detect_git_revision` — the commit hash of the working tree, taken
  from ``$REPRO_GIT_REVISION`` when set (CI jobs export it so detached
  checkouts and shallow clones stay cheap) and from ``git rev-parse HEAD``
  otherwise.  Resolution is memoized per directory: one subprocess per
  process lifetime, not one per artifact save.
* :func:`summarize_results` / :func:`metric_values` — the per-artifact
  metric summary (estimation *quality*, message *overhead*) reduced to
  scalar statistics small enough for the header's bounded prefix read.

Quality is the paper's figure-of-merit: ``100 * estimate / true_size``
(100 = perfect).  Message counts exist only for trial kinds that account
them (``fresh_probe`` records ``extra["messages"]``); kinds without
accounting simply omit the metric rather than reporting zeros.
"""

from __future__ import annotations

import math
import os
import subprocess
from typing import Dict, List, Optional, Sequence

from .obs import PHASES
from .trials import TrialResult

__all__ = [
    "PHASE_METRICS",
    "detect_git_revision",
    "metric_values",
    "phase_metric_values",
    "summarize_results",
]

#: Header-metric names of the worker-side phase timings (one per phase of
#: :data:`repro.runtime.obs.PHASES`).  Timing metrics are machine-dependent:
#: reported for trend inspection, excluded from deterministic CI gates.
PHASE_METRICS = tuple(f"phase_{name}" for name in PHASES)

#: Environment override consulted before asking git (CI sets this).
REVISION_ENV = "REPRO_GIT_REVISION"

_revision_cache: Dict[str, str] = {}


def detect_git_revision(cwd: Optional[str] = None) -> str:
    """Commit hash identifying the code that is running, or ``""``.

    ``$REPRO_GIT_REVISION`` wins when set (and non-empty); otherwise
    ``git rev-parse HEAD`` runs once per ``cwd`` and is memoized.  Outside
    a work tree — or without a ``git`` binary — the revision is simply
    unknown: artifact saves must never fail over provenance.
    """
    env = os.environ.get(REVISION_ENV)
    if env:
        return env.strip()
    key = cwd or os.getcwd()
    if key not in _revision_cache:
        try:
            proc = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=cwd,
                capture_output=True,
                text=True,
                timeout=10,
            )
            out = proc.stdout.strip()
            _revision_cache[key] = out if proc.returncode == 0 and out else ""
        except (OSError, subprocess.SubprocessError):
            _revision_cache[key] = ""
    return _revision_cache[key]


def metric_values(results: Sequence[TrialResult]) -> Dict[str, List[float]]:
    """Per-trial metric samples extracted from a result batch.

    Returns ``{"quality": [...], "messages": [...]}`` with absent metrics
    omitted entirely.  Not-ok trials, empty overlays and non-finite
    estimates are dropped — identical to how the figure renderers filter.
    """
    quality: List[float] = []
    messages: List[float] = []
    for r in results:
        if r.ok and math.isfinite(r.value):
            if r.extra and "quality" in r.extra:
                # Convergence-style kinds store a per-round quality curve
                # and put the final quality in ``value`` directly.
                quality.append(float(r.value))
            elif r.true_size > 0:
                quality.append(100.0 * float(r.value) / float(r.true_size))
        if r.extra and isinstance(r.extra.get("messages"), (int, float)):
            messages.append(float(r.extra["messages"]))
    out: Dict[str, List[float]] = {}
    if quality:
        out["quality"] = quality
    if messages:
        out["messages"] = messages
    return out


def _stats(values: Sequence[float]) -> Dict[str, float]:
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return {"mean": mean, "std": math.sqrt(var), "min": min(values), "max": max(values), "n": n}


def phase_metric_values(results: Sequence[TrialResult]) -> Dict[str, List[float]]:
    """Per-phase timing samples from the results' observability profiles.

    Per-trial phases (estimation) contribute one sample per trial;
    chunk-level phases (boot/restore/churn) one sample per chunk.  Results
    loaded from the store carry no profiles (telemetry is never persisted
    in the payload) and contribute nothing — phase history across
    revisions instead lives in the artifact header summaries this module
    produces.
    """
    out: Dict[str, List[float]] = {}
    for r in results:
        profile = r.profile or {}
        for name, seconds in (profile.get("phases") or {}).items():
            out.setdefault(f"phase_{name}", []).append(float(seconds))
        chunk = profile.get("chunk") or {}
        for name, seconds in (chunk.get("phases") or {}).items():
            out.setdefault(f"phase_{name}", []).append(float(seconds))
    return out


def summarize_results(results: Sequence[TrialResult]) -> Dict[str, Dict[str, float]]:
    """Scalar summary of a batch — the header's ``metrics`` block.

    One ``{mean, std, min, max, n}`` entry per available metric, covering
    the result metrics (:func:`metric_values`) and the worker-side phase
    timings (:func:`phase_metric_values`).  Kept to a handful of floats so
    headers stay within the store's bounded header-probe window regardless
    of trial count.
    """
    samples = dict(metric_values(results))
    samples.update(phase_metric_values(results))
    return {metric: _stats(vals) for metric, vals in samples.items()}
