"""Trial executor: serial loop or chunked dispatch over a process pool.

Chunking serves two purposes: it amortizes the per-chunk warm-up (overlay
construction, churn replay) over many trials, and it keeps the number of
pickled task submissions small.  Results are merged in ``(index, stream)``
order, so the caller sees the exact sequence a serial run would have
produced regardless of which worker finished first.

Fallbacks are graceful and explicit: ``workers <= 1`` never spawns a
process; batches holding live objects (graphs, closures) are not picklable
and run serially in one chunk; and any pool-level failure to *dispatch*
(pickling error, missing multiprocessing support) downgrades to the serial
path after reporting via the progress callback.
"""

from __future__ import annotations

import math
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import List, Optional, Sequence

from .progress import NullProgress, ProgressReporter
from .trials import TrialResult, TrialSpec, run_chunk

__all__ = ["TrialExecutor", "chunk_specs"]

#: Target chunks per worker: enough slack for load balancing (chunks are
#: not equal cost) without drowning in warm-up overhead.
CHUNKS_PER_WORKER = 4


def chunk_specs(
    specs: Sequence[TrialSpec], chunk_size: int
) -> List[List[TrialSpec]]:
    """Split ``specs`` into consecutive chunks of at most ``chunk_size``.

    Order is preserved: churn-replay kinds rely on a chunk holding a
    contiguous index range so one replay serves all of its trials.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        list(specs[start : start + chunk_size])
        for start in range(0, len(specs), chunk_size)
    ]


class TrialExecutor:
    """Runs a batch of :class:`TrialSpec` serially or over worker processes.

    Parameters
    ----------
    workers:
        Process count; ``<= 1`` selects the in-process serial path.
    chunk_size:
        Trials per dispatched chunk (default: batch split into
        ``workers * CHUNKS_PER_WORKER`` chunks).
    progress:
        Optional :class:`ProgressReporter` for telemetry.
    """

    def __init__(
        self,
        workers: int = 1,
        chunk_size: Optional[int] = None,
        progress: Optional[ProgressReporter] = None,
    ) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = max(1, int(workers))
        self.chunk_size = chunk_size
        self.progress = progress if progress is not None else NullProgress()

    def _auto_chunk_size(self, total: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, math.ceil(total / (self.workers * CHUNKS_PER_WORKER)))

    def run(self, specs: Sequence[TrialSpec]) -> List[TrialResult]:
        """Execute the batch and return results in ``(index, stream)`` order."""
        specs = list(specs)
        if not specs:
            return []
        portable = all(spec.portable for spec in specs)
        workers = self.workers if portable else 1
        if not portable and self.workers > 1:
            self.progress.on_fallback(
                "batch holds live objects that cannot be shipped to workers"
            )
        started = time.perf_counter()
        self.progress.on_start(len(specs), workers)

        if workers <= 1 or len(specs) == 1:
            results = run_chunk(specs)
        else:
            results = self._run_parallel(specs, workers)

        results.sort(key=lambda r: (r.index, r.stream))
        self.progress.on_finish(len(results), time.perf_counter() - started)
        return results

    def _run_parallel(
        self, specs: List[TrialSpec], workers: int
    ) -> List[TrialResult]:
        chunks = chunk_specs(specs, self._auto_chunk_size(len(specs)))
        if len(chunks) == 1:
            return run_chunk(specs)
        try:
            results: List[TrialResult] = []
            done = 0
            with ProcessPoolExecutor(max_workers=min(workers, len(chunks))) as pool:
                futures = [pool.submit(run_chunk, chunk) for chunk in chunks]
                for future in as_completed(futures):
                    part = future.result()
                    results.extend(part)
                    done += len(part)
                    self.progress.on_progress(done, len(specs))
            return results
        except (pickle.PicklingError, ImportError, OSError) as exc:
            self.progress.on_fallback(f"process pool unavailable ({exc})")
            return run_chunk(specs)
