"""Trial executor: serial loop or chunked dispatch over a process pool.

Chunking serves two purposes: it amortizes the per-chunk warm-up (overlay
construction, churn replay) over many trials, and it keeps the number of
pickled task submissions small.  Results are merged in ``(index, stream)``
order, so the caller sees the exact sequence a serial run would have
produced regardless of which worker finished first.

For the churn-replay kinds (:data:`~repro.runtime.snapshots.SNAPSHOT_KINDS`)
parallel dispatch is *pipelined*: the executor advances one replay — the
snapshot backbone — and hands each chunk its predecessor's boundary
state, so a chunk resumes mid-scenario instead of replaying the churn
prefix from t=0.  Total replay work drops from O(horizon²/chunk) to
O(horizon).  For the probe kinds the backbone is churn-only (estimations
draw from stateless child hubs and stay fully parallel in the workers);
for ``repair_replay`` churn, repair and the monitoring protocol are one
inseparable scenario, so the backbone replays all of it — still a single
O(horizon) pass replacing the C/2 prefix replays chunking used to cost.
Results are bit-identical either way (``snapshots=False`` restores the
historical prefix-replay dispatch).  Boundary snapshots are content-
addressed into the results store when one is configured, so warm re-runs
skip the backbone too.

Fallbacks are graceful and explicit: ``workers <= 1`` never spawns a
process; batches holding live objects (graphs, closures) are not picklable
and run serially in one chunk (the single replay loop *is* the direct
serial hand-off — state simply persists across indices); and any
pool-level failure to *dispatch* (pickling error, missing multiprocessing
support) downgrades to the serial path after reporting via the progress
callback.
"""

from __future__ import annotations

import math
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, List, Mapping, Optional, Sequence

from .progress import NullProgress, ProgressReporter
from .snapshots import SNAPSHOT_KINDS, snapshot_config
from .trials import TrialResult, TrialSpec, run_chunk

__all__ = ["SnapshotBackbone", "TrialExecutor", "chunk_specs"]

#: Target chunks per worker: enough slack for load balancing (chunks are
#: not equal cost) without drowning in warm-up overhead.
CHUNKS_PER_WORKER = 4


def chunk_specs(
    specs: Sequence[TrialSpec], chunk_size: int
) -> List[List[TrialSpec]]:
    """Split ``specs`` into consecutive chunks of at most ``chunk_size``.

    Order is preserved: churn-replay kinds rely on a chunk holding a
    contiguous index range so one replay serves all of its trials.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        list(specs[start : start + chunk_size])
        for start in range(0, len(specs), chunk_size)
    ]


class SnapshotBackbone:
    """Driver-side churn-only replay feeding boundary snapshots to chunks.

    Shared by the process-pool executor here and the cluster executor in
    :mod:`~repro.runtime.cluster` — any dispatcher that chunks a
    churn-replay batch drives one of these for its hand-off payloads.
    One instance serves one pipelined batch: it advances a single replay
    state through the chunk boundaries in order (O(horizon) total work)
    and captures a pure-data snapshot at each.  When a store is attached,
    boundaries are looked up before computing and saved after — the
    content address (:func:`~repro.runtime.snapshots.snapshot_config`)
    covers only the scenario prefix, so any batch replaying the same
    scenario shares them.  Store hits are adopted lazily: the payload is
    handed out immediately and only materialized into a live state if a
    later boundary misses and must be advanced to.
    """

    def __init__(
        self, spec: TrialSpec, store, progress: Optional[ProgressReporter] = None
    ) -> None:
        self.spec = spec
        self.store = store
        self.progress = progress if progress is not None else NullProgress()
        self.state_cls = SNAPSHOT_KINDS[spec.kind]
        self._state = None
        self._adopt: Optional[Mapping[str, Any]] = None
        self._save_error_reported = False

    def payload_at(self, target: int) -> Optional[Mapping[str, Any]]:
        """Snapshot payload at boundary ``target`` (``None`` = no hand-off).

        Boundary 0 is the freshly built scenario before any churn — worth
        handing off too, because restoring an overlay from pure data is an
        order of magnitude cheaper than rebuilding it from its RNG stream.
        Returns ``None`` for negative boundaries and for non-monotone
        chunk layouts the backbone cannot serve — the chunk then falls
        back to prefix replay, which is always correct.

        Every resolution is reported via ``on_snapshot_boundary``; a
        failed best-effort save (read-only store) is surfaced once per
        backbone via ``on_snapshot_save_error`` instead of being silently
        dropped.
        """
        begin = time.perf_counter()
        if target < 0:
            self.progress.on_snapshot_boundary(target, 0.0, "skipped")
            return None
        config = snapshot_config(self.spec, target)
        if self.store is not None:
            cached = self.store.load_snapshot(config)
            if cached is not None:
                self._adopt = cached
                self.progress.on_snapshot_boundary(
                    target, time.perf_counter() - begin, "hit"
                )
                return cached
        if self._adopt is not None:
            self._state = self.state_cls.restore(self.spec, self._adopt)
            self._adopt = None
        if self._state is None:
            self._state = self.state_cls.boot(self.spec)
        if target < self._state.position:
            self.progress.on_snapshot_boundary(
                target, time.perf_counter() - begin, "skipped"
            )
            return None
        self._state.advance(target)
        payload = self._state.snapshot()
        if self.store is not None:
            try:
                self.store.save_snapshot(
                    config, payload, meta={"tag": f"snapshot:{self.spec.kind}"}
                )
            except OSError as exc:  # read-only store: snapshots are best-effort
                if not self._save_error_reported:
                    self._save_error_reported = True
                    self.progress.on_snapshot_save_error(str(exc))
        self.progress.on_snapshot_boundary(
            target, time.perf_counter() - begin, "computed"
        )
        return payload


class TrialExecutor:
    """Runs a batch of :class:`TrialSpec` serially or over worker processes.

    Parameters
    ----------
    workers:
        Process count; ``<= 1`` selects the in-process serial path.
    chunk_size:
        Trials per dispatched chunk (default: batch split into
        ``workers * CHUNKS_PER_WORKER`` chunks).
    progress:
        Optional :class:`ProgressReporter` for telemetry.
    snapshots:
        When True (default), churn-replay kinds dispatch with pipelined
        snapshot hand-off (module docstring); False forces the historical
        prefix-replay dispatch.  Results are bit-identical either way.
    snapshot_store:
        Optional :class:`~repro.runtime.store.ResultsStore` boundary
        snapshots are cached in (never consulted when ``snapshots`` is
        False).
    """

    def __init__(
        self,
        workers: int = 1,
        chunk_size: Optional[int] = None,
        progress: Optional[ProgressReporter] = None,
        snapshots: bool = True,
        snapshot_store=None,
    ) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = max(1, int(workers))
        self.chunk_size = chunk_size
        self.progress = progress if progress is not None else NullProgress()
        self.snapshots = bool(snapshots)
        self.snapshot_store = snapshot_store

    def _auto_chunk_size(self, total: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, math.ceil(total / (self.workers * CHUNKS_PER_WORKER)))

    def run(self, specs: Sequence[TrialSpec]) -> List[TrialResult]:
        """Execute the batch and return results in ``(index, stream)`` order."""
        specs = list(specs)
        if not specs:
            return []
        portable = all(spec.portable for spec in specs)
        workers = self.workers if portable else 1
        if not portable and self.workers > 1:
            self.progress.on_fallback(
                "batch holds live objects that cannot be shipped to workers"
            )
        started = time.perf_counter()
        self.progress.on_start(len(specs), workers)

        if workers <= 1 or len(specs) == 1:
            self.progress.on_chunk_start(0, len(specs))
            results = run_chunk(specs)
            self.progress.on_chunk_done(0, results)
        else:
            results = self._run_parallel(specs, workers)

        results.sort(key=lambda r: (r.index, r.stream))
        self.progress.on_finish(len(results), time.perf_counter() - started)
        return results

    def _run_parallel(
        self, specs: List[TrialSpec], workers: int
    ) -> List[TrialResult]:
        chunks = chunk_specs(specs, self._auto_chunk_size(len(specs)))
        if len(chunks) == 1:
            self.progress.on_chunk_start(0, len(specs))
            results = run_chunk(specs)
            self.progress.on_chunk_done(0, results)
            return results
        pipelined = self.snapshots and specs[0].kind in SNAPSHOT_KINDS
        completed: dict = {}
        done = 0
        try:
            with ProcessPoolExecutor(max_workers=min(workers, len(chunks))) as pool:
                if pipelined:
                    futures = self._submit_pipelined(pool, chunks)
                else:
                    futures = []
                    for i, chunk in enumerate(chunks):
                        self.progress.on_chunk_start(i, len(chunk))
                        futures.append(pool.submit(run_chunk, chunk))
                index_of = {future: i for i, future in enumerate(futures)}
                for future in as_completed(futures):
                    part = future.result()
                    completed[index_of[future]] = part
                    done += len(part)
                    self.progress.on_chunk_done(index_of[future], part)
                    self.progress.on_progress(done, len(specs))
            return [r for i in sorted(completed) for r in completed[i]]
        except (pickle.PicklingError, ImportError, OSError) as exc:
            # Keep whatever chunks already finished; only the remainder is
            # re-run serially.  Any regrouping of specs into chunks is
            # bit-identical (every trial derives from (hub_seed, index)
            # alone), so merged results match a clean run exactly.
            remaining = [
                spec
                for i, chunk in enumerate(chunks)
                if i not in completed
                for spec in chunk
            ]
            self.progress.on_partial_fallback(
                done,
                len(specs),
                f"process pool failed ({exc}); "
                f"re-running {len(remaining)} of {len(specs)} trials serially",
            )
            kept = [r for i in sorted(completed) for r in completed[i]]
            self.progress.on_chunk_start(len(chunks), len(remaining))
            rerun = run_chunk(remaining)
            self.progress.on_chunk_done(len(chunks), rerun)
            return kept + rerun

    def _submit_pipelined(self, pool: ProcessPoolExecutor, chunks) -> List:
        """Submit chunks with snapshot hand-off (churn-replay kinds).

        Every chunk — including the first, whose boundary is the freshly
        built scenario at index 0 — is submitted as soon as the backbone
        has its start-boundary snapshot: the snapshot at
        ``min(chunk indices) - 1``, i.e. the predecessor chunk's end
        state.  Workers restore instead of rebuilding the overlay and
        replaying the churn prefix, so estimation overlaps with the
        backbone's cheap churn-only advance.
        """
        backbone = SnapshotBackbone(chunks[0][0], self.snapshot_store, self.progress)
        futures = []
        for i, chunk in enumerate(chunks):
            target = min(spec.index for spec in chunk) - 1
            self.progress.on_chunk_start(i, len(chunk), boundary=target)
            futures.append(pool.submit(run_chunk, chunk, backbone.payload_at(target)))
        return futures
