"""Churn-trace persistence.

Dynamic experiments are only comparable when every algorithm faces the
*same* membership schedule; persisting traces lets a schedule be generated
once (or captured from a real system's join/leave log) and replayed across
runs, machines and versions.  The format is deliberately boring: one JSON
object per line (JSONL), one line per :class:`~repro.churn.models.ChurnEvent`,
with a header line carrying the format version.
"""

from __future__ import annotations

import json
import pathlib
from typing import IO, Union

from .models import ChurnEvent, ChurnTrace

__all__ = ["save_trace", "load_trace", "TraceFormatError", "FORMAT_VERSION"]

FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed or from an unknown version."""


def save_trace(trace: ChurnTrace, path: PathLike) -> None:
    """Write ``trace`` to ``path`` in JSONL format (overwrites)."""
    path = pathlib.Path(path)
    with path.open("w") as fh:
        _write(trace, fh)


def _write(trace: ChurnTrace, fh: IO[str]) -> None:
    header = {"format": "repro-churn-trace", "version": FORMAT_VERSION,
              "events": len(trace)}
    fh.write(json.dumps(header) + "\n")
    for ev in trace:
        record = {"time": ev.time}
        if ev.joins:
            record["joins"] = ev.joins
        if ev.leaves:
            record["leaves"] = ev.leaves
        if ev.frac_joins:
            record["frac_joins"] = ev.frac_joins
        if ev.frac_leaves:
            record["frac_leaves"] = ev.frac_leaves
        fh.write(json.dumps(record) + "\n")


def load_trace(path: PathLike) -> ChurnTrace:
    """Read a trace previously written by :func:`save_trace`.

    Raises :class:`TraceFormatError` on bad headers, unknown versions,
    or malformed event records (with the offending line number).
    """
    path = pathlib.Path(path)
    with path.open("r") as fh:
        lines = fh.read().splitlines()
    if not lines:
        raise TraceFormatError(f"{path}: empty trace file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{path}:1: invalid header: {exc}") from None
    if header.get("format") != "repro-churn-trace":
        raise TraceFormatError(f"{path}: not a repro churn trace")
    if header.get("version") != FORMAT_VERSION:
        raise TraceFormatError(
            f"{path}: unsupported version {header.get('version')!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    events = []
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
            events.append(
                ChurnEvent(
                    time=float(rec["time"]),
                    joins=int(rec.get("joins", 0)),
                    leaves=int(rec.get("leaves", 0)),
                    frac_joins=float(rec.get("frac_joins", 0.0)),
                    frac_leaves=float(rec.get("frac_leaves", 0.0)),
                )
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"{path}:{lineno}: bad event: {exc}") from None
    declared = header.get("events")
    if declared is not None and declared != len(events):
        raise TraceFormatError(
            f"{path}: header declares {declared} events, found {len(events)}"
        )
    return ChurnTrace(events)
