"""Churn substrate: membership-change traces and their application."""

from .models import (
    ChurnEvent,
    ChurnTrace,
    catastrophic_trace,
    growing_trace,
    shrinking_trace,
    steady_churn_trace,
)
from .io import TraceFormatError, load_trace, save_trace
from .scheduler import ChurnLogEntry, ChurnScheduler

__all__ = [
    "ChurnEvent",
    "ChurnLogEntry",
    "ChurnScheduler",
    "ChurnTrace",
    "TraceFormatError",
    "load_trace",
    "save_trace",
    "catastrophic_trace",
    "growing_trace",
    "shrinking_trace",
    "steady_churn_trace",
]
