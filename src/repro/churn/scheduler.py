"""Applying churn traces to a live overlay.

:class:`ChurnScheduler` binds a :class:`~repro.churn.models.ChurnTrace` to an
:class:`~repro.overlay.graph.OverlayGraph` through a
:class:`~repro.overlay.membership.MembershipPolicy`.  It can be driven two
ways, because the paper's dynamic figures use two different x-axes:

* **round-driven** — subscribe to a :class:`~repro.sim.rounds.RoundDriver`
  (Aggregation figures 15-17, x-axis "#Round"); churn runs at
  ``PRIORITY_CHURN`` so the overlay changes *before* the protocol round at
  the same instant;
* **probe-driven** — call :meth:`advance_to` manually between estimations
  (Sample&Collide / HopsSampling figures 9-14, x-axis "number of
  estimations" / "Time").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Tuple

from ..overlay.graph import OverlayGraph
from ..overlay.membership import MembershipPolicy
from ..sim.rng import RngLike, generator_from_state, generator_state
from ..sim.rounds import PRIORITY_CHURN, RoundDriver
from .models import ChurnTrace

__all__ = ["ChurnScheduler", "ChurnLogEntry"]


@dataclass(frozen=True)
class ChurnLogEntry:
    """One applied membership change, for audit/plotting."""

    time: float
    joins: int
    leaves: int
    size_after: int


class ChurnScheduler:
    """Consumes a trace and mutates the overlay accordingly.

    Parameters
    ----------
    graph:
        Overlay to mutate.
    trace:
        The churn schedule; consumed in time order, each event at most once.
    rng:
        Random source for victim selection and join wiring.
    max_degree, min_degree:
        Degree policy handed to the :class:`MembershipPolicy` for joiners.
    """

    def __init__(
        self,
        graph: OverlayGraph,
        trace: ChurnTrace,
        rng: RngLike = None,
        max_degree: int = 10,
        min_degree: int = 1,
    ) -> None:
        self.graph = graph
        self.trace = trace
        self.policy = MembershipPolicy(
            graph, max_degree=max_degree, min_degree=min_degree, rng=rng
        )
        self.log: List[ChurnLogEntry] = []

    # ------------------------------------------------------------------

    def advance_to(self, now: float) -> Tuple[int, int]:
        """Apply every event due at or before ``now``.

        Returns total (joins, leaves) applied by this call.  Fractional
        events resolve against the population at the moment they fire, so
        two successive "-25%" events remove 25% then 25%-of-the-remainder,
        exactly like the paper's Fig 15 staircase.
        """
        total_joins = 0
        total_leaves = 0
        for ev in self.trace.due(now):
            joins, leaves = ev.resolve(self.graph.size)
            if leaves:
                self.policy.leave(leaves)
            if joins:
                self.policy.join(joins)
            total_joins += joins
            total_leaves += leaves
            self.log.append(
                ChurnLogEntry(
                    time=ev.time,
                    joins=joins,
                    leaves=leaves,
                    size_after=self.graph.size,
                )
            )
        return total_joins, total_leaves

    def feed(self, events: Iterable[Any]) -> int:
        """Stream live events into the trace tail (service ingest path).

        Each item is a :class:`~repro.churn.models.ChurnEvent` or a mapping
        of its constructor fields.  Events must be due at or after the
        trace horizon (see :meth:`ChurnTrace.extend`); they are applied by
        the next :meth:`advance_to` call that reaches their time.  This is
        how the always-on estimation service (``repro.service``) keeps one
        scheduler resident instead of rebuilding per batch.
        """
        from .models import ChurnEvent

        return self.trace.extend(
            ev if isinstance(ev, ChurnEvent) else ChurnEvent(**dict(ev))
            for ev in events
        )

    def attach(self, driver: RoundDriver) -> None:
        """Subscribe to a round driver so churn fires automatically.

        The hook runs at ``PRIORITY_CHURN`` (before protocol hooks in the
        same round).
        """
        driver.subscribe(
            lambda rnd: self.advance_to(float(rnd)),
            priority=PRIORITY_CHURN,
            label="churn",
        )

    # ------------------------------------------------------------------
    # state hand-off (docs/SNAPSHOTS.md)
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Pure-data capture of the replay state at the current instant.

        Covers everything the scheduler's *future behaviour* depends on:
        the overlay (with its insertion-order contract), the victim/wiring
        generator state, and the trace cursor.  Deliberately excluded, to
        keep payloads O(overlay) rather than O(overlay + horizon): the
        trace's events (they travel in the trial spec's params and are
        re-supplied to :meth:`restore`) and the applied-event audit log
        (no replay consumer reads it — a restored scheduler's
        :attr:`log`/:meth:`total_applied` cover only post-restore events).
        """
        return {
            "graph": self.graph.snapshot(),
            "rng": generator_state(self.policy.rng),
            "cursor": self.trace.cursor,
        }

    @classmethod
    def restore(
        cls,
        snap: Mapping[str, Any],
        trace: ChurnTrace,
        max_degree: int = 10,
        min_degree: int = 1,
    ) -> "ChurnScheduler":
        """Rebuild a scheduler (and its overlay) from a :meth:`snapshot`.

        ``trace`` must be a *fresh* trace built from the same payload the
        captured scheduler consumed; it is fast-forwarded to the recorded
        cursor.  The restored scheduler's :meth:`advance_to` calls mutate
        the overlay bit-identically to the captured one's; its audit log
        starts empty (see :meth:`snapshot`).
        """
        graph = OverlayGraph.restore(snap["graph"])
        sched = cls(
            graph,
            trace,
            rng=generator_from_state(snap["rng"]),
            max_degree=max_degree,
            min_degree=min_degree,
        )
        trace.seek(int(snap["cursor"]))
        return sched

    # ------------------------------------------------------------------

    @property
    def applied_events(self) -> int:
        """Number of trace events applied so far."""
        return len(self.log)

    def total_applied(self) -> Tuple[int, int]:
        """Cumulative (joins, leaves) applied so far."""
        return (
            sum(e.joins for e in self.log),
            sum(e.leaves for e in self.log),
        )
