"""Churn traces: descriptions of *what* happens to the membership over time.

The paper's dynamic evaluation (§IV-D) uses three scenarios on a 100,000
node heterogeneous overlay:

* **catastrophic failures** — sudden loss of 25% of the nodes at given
  instants, plus one mass join (Fig 15: "-25% of nodes at 100 and 500,
  +25000 nodes at 700");
* **growing** — constant arrivals totalling +50% over the run (Figs 10,
  13, 16);
* **shrinking** — constant departures totalling −50% (Figs 11, 14, 17).

A trace is a sorted sequence of :class:`ChurnEvent`; each event says how
many nodes join and how many leave at a virtual time.  Traces are pure data:
applying them to an overlay is the job of
:class:`repro.churn.scheduler.ChurnScheduler`.

Counts may be specified as absolute numbers or as fractions of the
population *at event time* (``frac_leaves=0.25`` removes a quarter of
whatever is alive then), matching the paper's "-25%" phrasing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "ChurnEvent",
    "ChurnTrace",
    "catastrophic_trace",
    "growing_trace",
    "shrinking_trace",
    "steady_churn_trace",
]


@dataclass(frozen=True)
class ChurnEvent:
    """Membership change at one instant.

    Exactly one of (``joins``, ``frac_joins``) and one of (``leaves``,
    ``frac_leaves``) may be non-zero; fractions are resolved against the
    population at application time.
    """

    time: float
    joins: int = 0
    leaves: int = 0
    frac_joins: float = 0.0
    frac_leaves: float = 0.0

    def __post_init__(self) -> None:
        if self.joins < 0 or self.leaves < 0:
            raise ValueError("joins/leaves must be non-negative")
        if not (0.0 <= self.frac_joins) or not (0.0 <= self.frac_leaves <= 1.0):
            raise ValueError("fractions out of range")
        if self.joins and self.frac_joins:
            raise ValueError("specify joins either absolutely or fractionally")
        if self.leaves and self.frac_leaves:
            raise ValueError("specify leaves either absolutely or fractionally")

    def resolve(self, population: int) -> Tuple[int, int]:
        """Concrete (joins, leaves) counts for the given population."""
        joins = self.joins if self.joins else int(round(self.frac_joins * population))
        leaves = (
            self.leaves if self.leaves else int(round(self.frac_leaves * population))
        )
        leaves = min(leaves, population)
        return joins, leaves


class ChurnTrace:
    """A time-sorted sequence of :class:`ChurnEvent`.

    Iterating yields events in time order; :meth:`due` pops the events whose
    time has arrived, which is how the scheduler consumes a trace
    incrementally.
    """

    def __init__(self, events: Iterable[ChurnEvent] = ()) -> None:
        self._events: List[ChurnEvent] = sorted(events, key=lambda e: e.time)
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    @property
    def remaining(self) -> int:
        """Events not yet consumed via :meth:`due`."""
        return len(self._events) - self._cursor

    @property
    def horizon(self) -> float:
        """Time of the last event (0.0 for an empty trace)."""
        return self._events[-1].time if self._events else 0.0

    def due(self, now: float) -> List[ChurnEvent]:
        """Pop and return all events with ``time <= now`` (in order)."""
        out: List[ChurnEvent] = []
        while self._cursor < len(self._events) and self._events[self._cursor].time <= now:
            out.append(self._events[self._cursor])
            self._cursor += 1
        return out

    def reset(self) -> None:
        """Rewind consumption to the beginning."""
        self._cursor = 0

    def extend(self, events: Iterable[ChurnEvent]) -> int:
        """Append live events to the tail of the trace; returns the count.

        This is the streaming entry point used by the always-on estimation
        service (``repro.service``, ``docs/SERVICE.md``): a resident
        scheduler's trace grows as membership events arrive instead of
        being fixed at construction.  Every appended event must be due at
        or after the trace's current :attr:`horizon` — the sorted-order
        invariant every consumer (and the snapshot cursor contract) relies
        on — and must not predate already-consumed events.
        """
        added = sorted(events, key=lambda e: e.time)
        if not added:
            return 0
        floor = self.horizon
        if self._cursor:
            floor = max(floor, self._events[self._cursor - 1].time)
        if added[0].time < floor:
            raise ValueError(
                f"cannot extend trace into the past: event at t={added[0].time} "
                f"predates the trace horizon t={floor}"
            )
        self._events.extend(added)
        return len(added)

    @property
    def cursor(self) -> int:
        """Number of events already consumed via :meth:`due`.

        Part of the snapshot protocol (``docs/SNAPSHOTS.md``): the cursor
        plus the (immutable) event list fully describe a trace's
        consumption state, so a restored trace :meth:`seek`-ed to the same
        cursor yields identical future :meth:`due` pops.
        """
        return self._cursor

    def seek(self, cursor: int) -> None:
        """Set the consumption cursor (0 = nothing consumed).

        Used when restoring a churn-replay snapshot: the trace is rebuilt
        fresh from its payload, then fast-forwarded here instead of
        replaying :meth:`due` calls.
        """
        if not (0 <= cursor <= len(self._events)):
            raise ValueError(
                f"cursor {cursor} out of range for trace of {len(self._events)} events"
            )
        self._cursor = int(cursor)

    def net_change(self, initial: int) -> int:
        """Expected final population after the whole trace (fractions are
        resolved sequentially against the running population)."""
        pop = initial
        for ev in self._events:
            j, l = ev.resolve(pop)
            pop += j - l
        return pop


# ----------------------------------------------------------------------
# Scenario factories matching the paper
# ----------------------------------------------------------------------


def catastrophic_trace(
    failure_times: Sequence[float] = (100.0, 500.0),
    failure_fraction: float = 0.25,
    rejoin_time: Optional[float] = 700.0,
    rejoin_count: int = 25_000,
) -> ChurnTrace:
    """The paper's catastrophic scenario (Fig 15 caption).

    ``failure_fraction`` of the *current* population fails at each failure
    time; optionally ``rejoin_count`` fresh nodes join at ``rejoin_time``.
    Defaults reproduce the Fig 15 schedule on a 100k overlay.
    """
    events = [
        ChurnEvent(time=t, frac_leaves=failure_fraction) for t in failure_times
    ]
    if rejoin_time is not None and rejoin_count > 0:
        events.append(ChurnEvent(time=rejoin_time, joins=rejoin_count))
    return ChurnTrace(events)


def _spread_counts(total: int, steps: int) -> List[int]:
    """Split ``total`` into ``steps`` near-equal integer chunks (sum exact)."""
    base = total // steps
    extra = total % steps
    return [base + (1 if i < extra else 0) for i in range(steps)]


def growing_trace(
    initial_size: int,
    growth_fraction: float = 0.5,
    start: float = 1.0,
    end: float = 100.0,
    steps: int = 99,
) -> ChurnTrace:
    """Constant arrivals totalling ``growth_fraction·initial_size``.

    Arrivals are spread uniformly over ``steps`` instants in ``[start,
    end]``, modelling the paper's steadily growing network (+50%).
    """
    if initial_size <= 0:
        raise ValueError("initial_size must be positive")
    if growth_fraction < 0:
        raise ValueError("growth_fraction must be non-negative")
    if steps < 1:
        raise ValueError("steps must be >= 1")
    total = int(round(initial_size * growth_fraction))
    times = [start + (end - start) * i / max(steps - 1, 1) for i in range(steps)]
    counts = _spread_counts(total, steps)
    return ChurnTrace(
        ChurnEvent(time=t, joins=c) for t, c in zip(times, counts) if c > 0
    )


def shrinking_trace(
    initial_size: int,
    shrink_fraction: float = 0.5,
    start: float = 1.0,
    end: float = 100.0,
    steps: int = 99,
) -> ChurnTrace:
    """Constant departures totalling ``shrink_fraction·initial_size`` (−50%)."""
    if initial_size <= 0:
        raise ValueError("initial_size must be positive")
    if not (0.0 <= shrink_fraction <= 1.0):
        raise ValueError("shrink_fraction must be in [0, 1]")
    if steps < 1:
        raise ValueError("steps must be >= 1")
    total = int(round(initial_size * shrink_fraction))
    times = [start + (end - start) * i / max(steps - 1, 1) for i in range(steps)]
    counts = _spread_counts(total, steps)
    return ChurnTrace(
        ChurnEvent(time=t, leaves=c) for t, c in zip(times, counts) if c > 0
    )


def steady_churn_trace(
    rate_per_step: int,
    start: float = 1.0,
    end: float = 100.0,
    steps: int = 99,
) -> ChurnTrace:
    """Simultaneous constant arrivals *and* departures (size-neutral churn).

    Models the paper's "constant nodes arrivals and departures" stress
    without net size drift; useful for measuring estimator variance under
    pure membership turnover.
    """
    if rate_per_step < 0:
        raise ValueError("rate_per_step must be non-negative")
    if steps < 1:
        raise ValueError("steps must be >= 1")
    times = [start + (end - start) * i / max(steps - 1, 1) for i in range(steps)]
    return ChurnTrace(
        ChurnEvent(time=t, joins=rate_per_step, leaves=rate_per_step) for t in times
    )
