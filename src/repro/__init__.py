"""repro — peer-to-peer size estimation in large and dynamic networks.

A production-grade reproduction of Le Merrer, Kermarrec & Massoulié,
*"Peer to peer size estimation in large and dynamic networks: A comparative
study"* (HPDC-15, 2006).

The package provides:

* the three candidate algorithms of the study (Sample&Collide,
  HopsSampling, gossip-based Aggregation) plus the baselines they were
  selected against (inverted birthday paradox, Random Tour, gossipSample);
* the substrate they were evaluated on: dynamic unstructured overlay
  graphs, a message-counting discrete-event simulator, and churn scenarios
  (catastrophic failures, growth, shrinkage);
* an experiment harness regenerating every figure and table of the paper's
  evaluation section (see ``repro.experiments`` and ``benchmarks/``).

Quickstart
----------
>>> from repro import heterogeneous_random, SampleCollideEstimator
>>> g = heterogeneous_random(5_000, rng=7)
>>> est = SampleCollideEstimator(g, l=50, rng=7).estimate()
>>> 0.5 < est.value / g.size < 2.0
True
"""

from .churn import (
    ChurnEvent,
    ChurnScheduler,
    ChurnTrace,
    catastrophic_trace,
    growing_trace,
    shrinking_trace,
    steady_churn_trace,
)
from .core import (
    AggregationMonitor,
    AggregationProtocol,
    Estimate,
    EstimatorError,
    GossipSampleEstimator,
    HopsSamplingEstimator,
    InvertedBirthdayEstimator,
    RandomTourEstimator,
    SampleCollideEstimator,
    SizeEstimator,
    UniformWalkSampler,
)
from .core.registry import available, create, register
from .overlay import (
    MembershipPolicy,
    OverlayGraph,
    erdos_renyi,
    heterogeneous_random,
    homogeneous_random,
    ring_lattice,
    scale_free,
)
from .sim import (
    EstimateSeries,
    MessageKind,
    MessageMeter,
    RngHub,
    RollingAverage,
    RoundDriver,
    SimulationEngine,
    quality_percent,
)

__version__ = "1.0.0"

__all__ = [
    "AggregationMonitor",
    "AggregationProtocol",
    "ChurnEvent",
    "ChurnScheduler",
    "ChurnTrace",
    "Estimate",
    "EstimateSeries",
    "EstimatorError",
    "GossipSampleEstimator",
    "HopsSamplingEstimator",
    "InvertedBirthdayEstimator",
    "MembershipPolicy",
    "MessageKind",
    "MessageMeter",
    "OverlayGraph",
    "RandomTourEstimator",
    "RngHub",
    "RollingAverage",
    "RoundDriver",
    "SampleCollideEstimator",
    "SimulationEngine",
    "SizeEstimator",
    "UniformWalkSampler",
    "available",
    "catastrophic_trace",
    "create",
    "erdos_renyi",
    "growing_trace",
    "heterogeneous_random",
    "homogeneous_random",
    "quality_percent",
    "register",
    "ring_lattice",
    "scale_free",
    "shrinking_trace",
    "steady_churn_trace",
    "__version__",
]
