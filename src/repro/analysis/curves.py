"""Figure-result containers shared by the experiment harness.

A :class:`FigureResult` is the in-memory equivalent of one of the paper's
plots: a set of named curves plus metadata (parameters, scale, notes), with
CSV export and summary helpers.  The benchmarks assert on these objects and
the CLI renders them as ASCII charts (:mod:`repro.analysis.ascii_chart`).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

import numpy as np

__all__ = ["Curve", "FigureResult", "TableResult"]


@dataclass
class Curve:
    """One plotted line: aligned x/y arrays plus a legend label."""

    label: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
        self.y = np.asarray(self.y, dtype=float)
        if self.x.shape != self.y.shape:
            raise ValueError(
                f"curve {self.label!r}: x{self.x.shape} vs y{self.y.shape}"
            )

    def __len__(self) -> int:
        return int(self.x.shape[0])

    def tail_mean(self, fraction: float = 0.5) -> float:
        """Mean of the trailing ``fraction`` of the curve (steady state)."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        k = max(1, int(len(self) * fraction))
        return float(np.nanmean(self.y[-k:]))

    def final(self) -> float:
        """Last y value."""
        if len(self) == 0:
            raise ValueError(f"curve {self.label!r} is empty")
        return float(self.y[-1])


@dataclass
class FigureResult:
    """Reproduction of one paper figure."""

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    curves: List[Curve] = field(default_factory=list)
    params: Dict[str, Any] = field(default_factory=dict)
    notes: str = ""

    def curve(self, label: str) -> Curve:
        """Look up a curve by its legend label."""
        for c in self.curves:
            if c.label == label:
                return c
        raise KeyError(
            f"{self.figure_id}: no curve {label!r}; have {[c.label for c in self.curves]}"
        )

    def add(self, label: str, x: Sequence[float], y: Sequence[float]) -> Curve:
        """Append a curve and return it."""
        c = Curve(label=label, x=np.asarray(x, float), y=np.asarray(y, float))
        self.curves.append(c)
        return c

    def to_csv(self) -> str:
        """Long-format CSV (figure, curve, x, y) for external plotting."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["figure", "curve", "x", "y"])
        for c in self.curves:
            for xv, yv in zip(c.x, c.y):
                writer.writerow([self.figure_id, c.label, repr(float(xv)), repr(float(yv))])
        return buf.getvalue()


@dataclass
class TableResult:
    """Reproduction of one paper table: ordered rows of named columns."""

    table_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values: Any) -> None:
        """Append a row; keys must match the declared columns."""
        missing = set(self.columns) - set(values)
        extra = set(values) - set(self.columns)
        if missing or extra:
            raise ValueError(
                f"{self.table_id}: row mismatch (missing={sorted(missing)}, extra={sorted(extra)})"
            )
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"{self.table_id}: no column {name!r}")
        return [r[name] for r in self.rows]

    def to_csv(self) -> str:
        """CSV export with a header row."""
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=self.columns)
        writer.writeheader()
        writer.writerows(self.rows)
        return buf.getvalue()
