"""Statistical validation of estimator output.

A comparative study lives or dies on whether observed differences are
real.  This module provides the statistics the test-suite, benchmarks and
downstream users apply to :class:`~repro.sim.metrics.EstimateSeries` data:

* :func:`bootstrap_mean_ci` — nonparametric confidence interval for the
  mean quality of a series (estimator distributions are skewed — Random
  Tour wildly so — making normal-theory intervals misleading);
* :func:`bias_test` — one-sample sign test for systematic over/under
  estimation (the paper's HopsSampling bias claim, made testable without
  distributional assumptions);
* :func:`detect_convergence` — first index where a series enters and
  stays inside a tolerance band (the paper's "converges around 40
  rounds" measurements);
* :func:`variance_ratio_test` — bootstrap comparison of two estimators'
  spread (the paper's "noisier curves" statements).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..sim.rng import RngLike, as_generator

__all__ = [
    "BootstrapCI",
    "BiasVerdict",
    "bootstrap_mean_ci",
    "bias_test",
    "detect_convergence",
    "variance_ratio_test",
]


@dataclass(frozen=True)
class BootstrapCI:
    """A bootstrap confidence interval for a mean."""

    mean: float
    lower: float
    upper: float
    confidence: float

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper

    @property
    def halfwidth(self) -> float:
        """Half the interval width (a resolution measure)."""
        return (self.upper - self.lower) / 2.0


def bootstrap_mean_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2_000,
    rng: RngLike = None,
) -> BootstrapCI:
    """Percentile-bootstrap CI for the mean of ``values``.

    Raises :class:`ValueError` on empty input or a nonsensical confidence
    level.  NaNs (failed probes in dynamic runs) are dropped first.
    """
    arr = np.asarray(values, dtype=float)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        raise ValueError("no finite values to bootstrap")
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 100:
        raise ValueError("resamples must be >= 100")
    gen = as_generator(rng, "bootstrap")
    idx = gen.integers(arr.size, size=(resamples, arr.size))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return BootstrapCI(
        mean=float(arr.mean()), lower=float(lo), upper=float(hi),
        confidence=confidence,
    )


@dataclass(frozen=True)
class BiasVerdict:
    """Outcome of a sign test for systematic bias."""

    n_below: int
    n_above: int
    p_value: float
    biased_low: bool
    biased_high: bool


def bias_test(
    qualities: Sequence[float], target: float = 100.0, alpha: float = 0.01
) -> BiasVerdict:
    """Two-sided sign test: do the qualities sit systematically off-target?

    Counts points strictly below/above ``target`` (ties dropped) and
    computes the exact binomial two-sided p-value under the
    no-bias null (p = 1/2).  ``biased_low``/``biased_high`` are set when
    the null is rejected at level ``alpha`` in that direction.
    """
    arr = np.asarray(qualities, dtype=float)
    arr = arr[np.isfinite(arr)]
    below = int((arr < target).sum())
    above = int((arr > target).sum())
    n = below + above
    if n == 0:
        return BiasVerdict(0, 0, 1.0, False, False)
    k = min(below, above)
    # exact two-sided binomial tail: 2 * P[X <= k], capped at 1
    tail = sum(math.comb(n, i) for i in range(k + 1)) / 2.0**n
    p = min(1.0, 2.0 * tail)
    return BiasVerdict(
        n_below=below,
        n_above=above,
        p_value=p,
        biased_low=p < alpha and below > above,
        biased_high=p < alpha and above > below,
    )


def detect_convergence(
    series: Sequence[float],
    target: float = 100.0,
    tolerance: float = 1.0,
    hold: int = 3,
) -> Optional[int]:
    """First index at which the series enters the ``target ± tolerance``
    band and stays there for ``hold`` consecutive points (and through the
    end of the observed window).

    Returns ``None`` if the series never settles.  This is the measurement
    behind "converges around 40 rounds" (Figs 5-6): a single in-band point
    during a noisy transient does not count.
    """
    arr = np.asarray(series, dtype=float)
    if hold < 1:
        raise ValueError("hold must be >= 1")
    in_band = np.abs(arr - target) <= tolerance
    for i in range(arr.size):
        if in_band[i:].all() and (arr.size - i) >= hold:
            return i
    return None


def variance_ratio_test(
    a: Sequence[float],
    b: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2_000,
    rng: RngLike = None,
) -> Tuple[float, bool]:
    """Bootstrap test of ``std(a) > std(b)``.

    Returns ``(ratio, significant)`` where ``ratio = std(a)/std(b)`` and
    ``significant`` is True when the bootstrap lower confidence bound of
    the ratio exceeds 1 — i.e. *a* is demonstrably noisier than *b*
    (the paper's HopsSampling-vs-S&C claim).
    """
    arr_a = np.asarray(a, dtype=float)
    arr_b = np.asarray(b, dtype=float)
    arr_a = arr_a[np.isfinite(arr_a)]
    arr_b = arr_b[np.isfinite(arr_b)]
    if arr_a.size < 3 or arr_b.size < 3:
        raise ValueError("need at least 3 finite points per sample")
    gen = as_generator(rng, "variance_ratio")
    ia = gen.integers(arr_a.size, size=(resamples, arr_a.size))
    ib = gen.integers(arr_b.size, size=(resamples, arr_b.size))
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = arr_a[ia].std(axis=1) / np.maximum(arr_b[ib].std(axis=1), 1e-300)
    alpha = 1.0 - confidence
    lower = float(np.quantile(ratios, alpha))
    point = float(arr_a.std() / max(arr_b.std(), 1e-300))
    return point, lower > 1.0
