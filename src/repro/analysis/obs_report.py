"""Consumers of the runtime's JSONL run journal (``repro.runtime.obs``).

Three views over one journal file:

* :func:`validate_journal` — structural schema check (the CI docs job runs
  it on a freshly generated journal);
* :func:`render_obs_summary` — ASCII phase-breakdown table plus batch and
  snapshot-backbone counters (``repro-experiment obs summary``);
* :func:`journal_to_trace` — Chrome trace-event JSON for
  chrome://tracing / https://ui.perfetto.dev (``repro-experiment obs
  trace``): one track per process (driver + each worker PID), complete
  ``"X"`` spans for chunks and trials, instant ``"i"`` events for cache
  hits, fallbacks and snapshot-save errors.

All timestamps in the journal are epoch seconds (the only clock
comparable across processes); the trace converter rebases them onto the
journal's earliest event and scales to the trace format's microseconds.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Mapping, Sequence, Union

from ..runtime.obs import JOURNAL_SCHEMA_VERSION, PHASES
from ..sim.metrics import PhaseBreakdown

__all__ = [
    "EVENT_FIELDS",
    "journal_to_trace",
    "read_journal",
    "render_obs_summary",
    "validate_journal",
]

#: Required fields per journal event type (beyond the universal ``ts``).
EVENT_FIELDS: Dict[str, Sequence[str]] = {
    "journal": ("schema", "pid"),
    "batch_meta": ("batch", "kind", "trials", "tag"),
    "batch_start": ("batch", "total", "workers"),
    "progress": ("done", "total"),
    "cache_hit": ("trials",),
    "fallback": ("reason",),
    "partial_fallback": ("done", "total", "reason"),
    "chunk_start": ("chunk", "trials"),
    "chunk_done": ("chunk", "trials"),
    "trial": ("chunk", "index", "stream"),
    "snapshot_boundary": ("target", "seconds", "outcome"),
    "snapshot_save_error": ("error",),
    "batch_finish": ("done", "elapsed"),
    # Cluster lifecycle (repro.runtime.cluster, docs/DISTRIBUTED.md).
    "worker_connect": ("host", "pid"),
    "worker_lost": ("host", "reason"),
    "chunk_migrated": ("chunk", "from_host", "to_host"),
    "steal": ("chunk", "from_host", "to_host"),
    # Liveness + chaos harness (heartbeat monitor, fault injection).
    "heartbeat_miss": ("host", "misses", "threshold"),
    "fault_injected": ("host", "kind"),
    # Service lifecycle (repro.service, docs/SERVICE.md).
    "service_start": ("families", "size", "seed", "round"),
    "estimate_served": ("families", "round", "staleness"),
    "ingest_dropped": ("dropped", "queued"),
    "snapshot_checkpoint": ("round", "path", "bytes", "seconds"),
}


def read_journal(
    path: Union[str, pathlib.Path]
) -> List[Dict[str, Any]]:
    """Parse a JSONL journal into a list of event dicts.

    Blank lines are skipped; a malformed line raises :class:`ValueError`
    with its 1-based line number.
    """
    events: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON ({exc})") from None
            if not isinstance(event, dict):
                raise ValueError(f"{path}:{lineno}: journal line is not an object")
            events.append(event)
    return events


def validate_journal(events: Sequence[Mapping[str, Any]]) -> List[str]:
    """Structural check of a parsed journal; returns problem descriptions.

    An empty list means the journal conforms to the schema documented in
    ``docs/OBSERVABILITY.md``: a header line per reporter with a known
    schema version, known event types, their required fields present, and
    numeric timestamps throughout.
    """
    problems: List[str] = []
    if not events:
        return ["journal is empty"]
    if events[0].get("event") != "journal":
        problems.append("first line is not a 'journal' header")
    for pos, event in enumerate(events, start=1):
        kind = event.get("event")
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"line {pos}: missing numeric 'ts'")
        if kind not in EVENT_FIELDS:
            problems.append(f"line {pos}: unknown event type {kind!r}")
            continue
        for field in EVENT_FIELDS[kind]:
            if field not in event:
                problems.append(f"line {pos}: {kind} event missing {field!r}")
        if kind == "journal" and event.get("schema") != JOURNAL_SCHEMA_VERSION:
            problems.append(
                f"line {pos}: unsupported journal schema "
                f"{event.get('schema')!r} (expected {JOURNAL_SCHEMA_VERSION})"
            )
        phases = event.get("phases")
        if phases is not None:
            for name in phases:
                if name not in PHASES:
                    problems.append(f"line {pos}: unknown phase {name!r}")
    return problems


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------


def _us(epoch: float, origin: float) -> int:
    return int(round((epoch - origin) * 1_000_000))


def journal_to_trace(events: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Convert journal events to a Chrome trace-event document.

    The result is the JSON-object form (``{"traceEvents": [...]}``) that
    chrome://tracing and Perfetto both load.  Layout: the driver's events
    sit on its own pid track (batches as spans; cache hits, fallbacks and
    save errors as instants; snapshot-boundary resolutions as spans ending
    at their journal timestamp), while each worker PID gets a track with
    chunk spans and nested trial spans from the worker-side profiles.
    """
    origin = min(
        (float(e["ts"]) for e in events if isinstance(e.get("ts"), (int, float))),
        default=0.0,
    )
    driver_pid = next(
        (int(e["pid"]) for e in events if e.get("event") == "journal"), 0
    )
    trace: List[Dict[str, Any]] = []
    seen_pids = {driver_pid}
    trace.append(
        {
            "ph": "M",
            "name": "process_name",
            "pid": driver_pid,
            "tid": 0,
            "args": {"name": f"driver (pid {driver_pid})"},
        }
    )

    def worker_track(pid: int) -> int:
        if pid not in seen_pids:
            seen_pids.add(pid)
            trace.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"worker (pid {pid})"},
                }
            )
        return pid

    def instant(event: Mapping[str, Any], name: str, **args: Any) -> None:
        trace.append(
            {
                "ph": "i",
                "s": "p",
                "name": name,
                "pid": driver_pid,
                "tid": 0,
                "ts": _us(float(event["ts"]), origin),
                "args": args,
            }
        )

    batch_start: Dict[Any, Mapping[str, Any]] = {}
    batch_meta: Dict[Any, Mapping[str, Any]] = {}
    for event in events:
        kind = event.get("event")
        batch = event.get("batch")
        if kind == "batch_meta":
            batch_meta[batch] = event
        elif kind == "batch_start":
            batch_start[batch] = event
        elif kind == "batch_finish":
            start = batch_start.get(batch)
            if start is None:
                continue
            meta = batch_meta.get(batch, {})
            trace.append(
                {
                    "ph": "X",
                    "name": f"batch {batch}: {meta.get('tag', meta.get('kind', '?'))}",
                    "cat": "batch",
                    "pid": driver_pid,
                    "tid": 0,
                    "ts": _us(float(start["ts"]), origin),
                    "dur": max(0, int(round(float(event.get("elapsed", 0)) * 1e6))),
                    "args": {
                        "trials": event.get("done"),
                        "kind": meta.get("kind"),
                        "key": meta.get("key"),
                    },
                }
            )
        elif kind == "cache_hit":
            instant(event, "cache hit", trials=event.get("trials"))
        elif kind == "fallback":
            instant(event, "serial fallback", reason=event.get("reason"))
        elif kind == "partial_fallback":
            instant(
                event,
                "partial fallback",
                done=event.get("done"),
                total=event.get("total"),
                reason=event.get("reason"),
            )
        elif kind == "snapshot_save_error":
            instant(event, "snapshot save error", error=event.get("error"))
        elif kind == "worker_connect":
            instant(
                event,
                f"worker connect {event.get('host')}",
                host=event.get("host"),
                worker_pid=event.get("pid"),
            )
        elif kind == "worker_lost":
            instant(
                event,
                f"worker lost {event.get('host')}",
                host=event.get("host"),
                reason=event.get("reason"),
            )
        elif kind == "chunk_migrated":
            instant(
                event,
                f"chunk {event.get('chunk')} migrated",
                chunk=event.get("chunk"),
                from_host=event.get("from_host"),
                to_host=event.get("to_host"),
            )
        elif kind == "steal":
            instant(
                event,
                f"chunk {event.get('chunk')} stolen",
                chunk=event.get("chunk"),
                from_host=event.get("from_host"),
                to_host=event.get("to_host"),
            )
        elif kind == "heartbeat_miss":
            instant(
                event,
                f"heartbeat miss {event.get('host')}",
                host=event.get("host"),
                misses=event.get("misses"),
                threshold=event.get("threshold"),
            )
        elif kind == "fault_injected":
            instant(
                event,
                f"fault {event.get('kind')} on {event.get('host')}",
                host=event.get("host"),
                fault=event.get("kind"),
                detail=event.get("detail"),
            )
        elif kind == "snapshot_boundary":
            seconds = float(event.get("seconds", 0.0))
            trace.append(
                {
                    "ph": "X",
                    "name": f"boundary {event.get('target')} ({event.get('outcome')})",
                    "cat": "snapshot",
                    "pid": driver_pid,
                    "tid": 1,
                    "ts": _us(float(event["ts"]) - seconds, origin),
                    "dur": max(0, int(round(seconds * 1e6))),
                    "args": {"outcome": event.get("outcome")},
                }
            )
        elif kind == "chunk_done":
            pid = event.get("pid")
            started = event.get("started")
            elapsed = event.get("elapsed")
            if pid is None or started is None or elapsed is None:
                continue
            trace.append(
                {
                    "ph": "X",
                    "name": f"chunk {event.get('chunk')}",
                    "cat": "chunk",
                    "pid": worker_track(int(pid)),
                    "tid": 0,
                    "ts": _us(float(started), origin),
                    "dur": max(0, int(round(float(elapsed) * 1e6))),
                    "args": {
                        "trials": event.get("trials"),
                        "phases": event.get("phases") or {},
                    },
                }
            )
        elif kind == "trial":
            pid = event.get("pid")
            started = event.get("started")
            elapsed = event.get("elapsed")
            if pid is None or started is None or elapsed is None:
                continue
            trace.append(
                {
                    "ph": "X",
                    "name": f"trial {event.get('index')}.{event.get('stream')}",
                    "cat": "trial",
                    "pid": worker_track(int(pid)),
                    "tid": 1,
                    "ts": _us(float(started), origin),
                    "dur": max(0, int(round(float(elapsed) * 1e6))),
                    "args": {"phases": event.get("phases") or {}},
                }
            )
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# ASCII summary
# ----------------------------------------------------------------------


def _fmt_seconds(value: float) -> str:
    if value >= 100:
        return f"{value:.0f}s"
    if value >= 1:
        return f"{value:.2f}s"
    return f"{value * 1000:.1f}ms"


def render_obs_summary(events: Sequence[Mapping[str, Any]]) -> str:
    """ASCII phase-breakdown and runtime counters for a parsed journal."""
    breakdown = PhaseBreakdown()
    batches = trials = chunks = cache_hits = fallbacks = partials = 0
    save_errors = 0
    wall = 0.0
    boundary_counts: Dict[str, int] = {}
    workers: set = set()
    cluster_hosts: set = set()
    lost_hosts = migrations = steals = 0
    heartbeat_misses = faults_injected = 0
    for event in events:
        kind = event.get("event")
        if kind in ("chunk_done", "trial"):
            breakdown.add(event.get("phases") or {})
        if kind == "batch_finish":
            batches += 1
            wall += float(event.get("elapsed", 0.0))
            trials += int(event.get("done", 0))
        elif kind == "chunk_done":
            chunks += 1
            if event.get("pid") is not None:
                workers.add(event["pid"])
        elif kind == "cache_hit":
            cache_hits += 1
        elif kind == "fallback":
            fallbacks += 1
        elif kind == "partial_fallback":
            partials += 1
        elif kind == "snapshot_save_error":
            save_errors += 1
        elif kind == "snapshot_boundary":
            outcome = str(event.get("outcome"))
            boundary_counts[outcome] = boundary_counts.get(outcome, 0) + 1
        elif kind == "worker_connect":
            cluster_hosts.add(event.get("host"))
        elif kind == "worker_lost":
            lost_hosts += 1
        elif kind == "chunk_migrated":
            migrations += 1
        elif kind == "steal":
            steals += 1
        elif kind == "heartbeat_miss":
            heartbeat_misses += 1
        elif kind == "fault_injected":
            faults_injected += 1

    lines: List[str] = []
    lines.append("run journal summary")
    lines.append(
        f"  batches: {batches}   trials: {trials}   chunks: {chunks}   "
        f"workers seen: {len(workers)}   wall: {_fmt_seconds(wall)}"
    )
    counter_bits = [f"cache hits: {cache_hits}"]
    if fallbacks:
        counter_bits.append(f"serial fallbacks: {fallbacks}")
    if partials:
        counter_bits.append(f"partial fallbacks: {partials}")
    if save_errors:
        counter_bits.append(f"snapshot save errors: {save_errors}")
    if boundary_counts:
        counter_bits.append(
            "snapshot boundaries: "
            + ", ".join(f"{k}={v}" for k, v in sorted(boundary_counts.items()))
        )
    lines.append("  " + "   ".join(counter_bits))
    if (
        cluster_hosts
        or lost_hosts
        or migrations
        or steals
        or heartbeat_misses
        or faults_injected
    ):
        cluster_bits = [f"cluster hosts: {len(cluster_hosts)}"]
        if lost_hosts:
            cluster_bits.append(f"workers lost: {lost_hosts}")
        if migrations:
            cluster_bits.append(f"chunks migrated: {migrations}")
        if steals:
            cluster_bits.append(f"steals: {steals}")
        if heartbeat_misses:
            cluster_bits.append(f"heartbeat misses: {heartbeat_misses}")
        if faults_injected:
            cluster_bits.append(f"faults injected: {faults_injected}")
        lines.append("  " + "   ".join(cluster_bits))
    lines.append("")
    header = f"  {'phase':<12} {'total':>10} {'share':>7} {'spans':>7} {'mean':>10}"
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for name in PHASES:
        if name not in breakdown.totals:
            continue
        lines.append(
            f"  {name:<12} {_fmt_seconds(breakdown.totals[name]):>10} "
            f"{breakdown.share(name):>6.1f}% {breakdown.counts[name]:>7} "
            f"{_fmt_seconds(breakdown.mean(name)):>10}"
        )
    if not breakdown.totals:
        lines.append("  (no phase timings recorded)")
    return "\n".join(lines) + "\n"
