"""Terminal and markdown rendering of trend-tracking output.

The :mod:`repro.runtime.trends` subsystem produces structured reports
(revision trajectories, head-to-head comparisons, baseline checks); this
module turns them into aligned ASCII tables for the terminal and pipe
tables for markdown (CI job summaries, PR comments).  Rendering is kept
apart from the computation so the JSON emitters and these humans-first
views never drift apart structurally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

if TYPE_CHECKING:  # imported for annotations only: repro.runtime.trends
    # imports this module back (rendering split from computation), so a
    # runtime import here would make `import repro.runtime` order-dependent.
    from ..runtime.trends import (
        CheckReport,
        MetricComparison,
        TrendReport,
    )

__all__ = [
    "render_check_report",
    "render_comparison",
    "render_trend_report",
]


def _short(revision: str, width: int = 10) -> str:
    if not revision:
        return "-"
    return revision if len(revision) <= width else revision[:width] + ".."


def _fmt(value: float) -> str:
    """Compact numeric formatting across the metric ranges we print
    (qualities near 100, message counts in the thousands, sub-second
    runtimes)."""
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.2f}"
    return f"{value:.4g}"


def _ci(mean: float, lower: float, upper: float) -> str:
    return f"{_fmt(mean)} [{_fmt(lower)}, {_fmt(upper)}]"


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]], markdown: bool) -> str:
    """One table, GitHub-pipe style under ``markdown`` else space-aligned."""
    if markdown:
        out = ["| " + " | ".join(headers) + " |"]
        out.append("|" + "|".join(" --- " for _ in headers) + "|")
        for row in rows:
            out.append("| " + " | ".join(row) + " |")
        return "\n".join(out) + "\n"
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip()]
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)).rstrip())
    return "\n".join(lines) + "\n"


def render_trend_report(report: TrendReport, markdown: bool = False) -> str:
    """Per-group revision trajectories with drift verdicts."""
    if not report.groups:
        if report.records:
            return (
                f"{report.records} artifact(s) scanned but none expose the "
                "requested metric(s)\n"
            )
        return "no artifacts found (empty or unreadable store directories)\n"
    blocks: List[str] = []
    for group in report.groups:
        title = (
            f"{group.tag or '(untagged)'} [{group.group[:10]}] — "
            f"{len(group.revisions)} revision(s), {group.trials} trial(s)"
        )
        blocks.append(f"### {title}" if markdown else title)
        rows: List[List[str]] = []
        for trend in group.metrics:
            first = trend.points[0]
            for point in trend.points:
                is_last = point is trend.points[-1]
                delta = (
                    f"{point.ci.mean - first.ci.mean:+.4g}"
                    if point is not first
                    else ""
                )
                flag = ""
                if is_last and point is not first:
                    flag = "DRIFT" if trend.drifted else "ok"
                    if trend.noisier:
                        flag += " noisier"
                rows.append(
                    [
                        trend.metric if point is first else "",
                        _short(point.revision),
                        _ci(point.ci.mean, point.ci.lower, point.ci.upper),
                        str(point.samples),
                        str(point.artifacts),
                        delta,
                        flag,
                    ]
                )
        blocks.append(
            _table(
                ["METRIC", "REVISION", "MEAN [95% CI]", "N", "ARTS", "DELTA", ""],
                rows,
                markdown,
            )
        )
    drifted = sum(1 for g in report.groups if g.drifted)
    blocks.append(
        f"{len(report.groups)} group(s) across {len(report.stores)} store(s), "
        f"{report.records} artifact(s); {drifted} drifted"
    )
    return "\n".join(blocks) + "\n"


def render_comparison(
    comparisons: Sequence[MetricComparison],
    rev_a: str,
    rev_b: str,
    markdown: bool = False,
) -> str:
    """Head-to-head table for ``trends compare REV_A REV_B``."""
    header = f"comparing {_short(rev_a, 12)} (A) vs {_short(rev_b, 12)} (B)"
    if not comparisons:
        return header + "\nno group has artifacts at both revisions\n"
    rows: List[List[str]] = []
    for cmp in comparisons:
        flag = "DRIFT" if cmp.drifted else "ok"
        if cmp.noisier:
            flag += " noisier"
        rows.append(
            [
                cmp.tag or "(untagged)",
                cmp.group[:10],
                cmp.metric,
                _ci(cmp.a.ci.mean, cmp.a.ci.lower, cmp.a.ci.upper),
                _ci(cmp.b.ci.mean, cmp.b.ci.lower, cmp.b.ci.upper),
                f"{cmp.delta:+.4g}",
                flag,
            ]
        )
    table = _table(
        ["TAG", "GROUP", "METRIC", "A MEAN [CI]", "B MEAN [CI]", "DELTA", ""],
        rows,
        markdown,
    )
    drifted = sum(1 for c in comparisons if c.drifted)
    summary = f"{len(comparisons)} metric(s) compared; {drifted} drifted"
    return f"{header}\n\n{table}\n{summary}\n"


def render_check_report(check: CheckReport, markdown: bool = False) -> str:
    """Verdict table for ``trends check`` against a committed baseline."""
    rows: List[List[str]] = []
    for o in check.outcomes:
        rows.append(
            [
                o.status,
                o.tag or "(untagged)",
                o.group[:10],
                o.metric,
                _ci(o.baseline_mean, o.baseline_lower, o.baseline_upper),
                _fmt(o.observed_mean) if o.observed_mean is not None else "-",
                _short(o.revision),
            ]
        )
    table = _table(
        ["STATUS", "TAG", "GROUP", "METRIC", "BASELINE [CI]", "OBSERVED", "REVISION"],
        rows,
        markdown,
    ) if rows else "baseline has no checkable entries\n"
    n_drift = sum(1 for o in check.outcomes if o.status == "drift")
    n_missing = sum(1 for o in check.outcomes if o.status == "missing")
    lines = [
        table,
        f"{len(check.outcomes)} check(s): "
        f"{len(check.outcomes) - n_drift - n_missing} ok, "
        f"{n_drift} drift, {n_missing} missing",
    ]
    if check.new_groups:
        names = ", ".join(
            f"{tag or '(untagged)'}[{group[:10]}]" for tag, group in check.new_groups
        )
        lines.append(f"{len(check.new_groups)} group(s) not in baseline: {names}")
    return "\n".join(lines) + "\n"
