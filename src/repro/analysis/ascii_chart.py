"""Terminal rendering of figure results.

The original figures are gnuplot line charts; in a headless reproduction
the equivalent artifact is an ASCII chart plus the CSV the user can plot
externally.  The renderer is deliberately dependency-free.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from .curves import Curve, FigureResult, TableResult

__all__ = ["render_figure", "render_table", "line_chart"]

_MARKERS = "*o+x#@%&"


def _nice_bounds(lo: float, hi: float) -> tuple:
    """Pad and round axis bounds so flat curves stay visible."""
    if not math.isfinite(lo) or not math.isfinite(hi):
        return 0.0, 1.0
    if lo == hi:
        pad = abs(lo) * 0.1 + 1.0
        return lo - pad, hi + pad
    pad = (hi - lo) * 0.05
    return lo - pad, hi + pad


def line_chart(
    curves: Sequence[Curve],
    width: int = 72,
    height: int = 20,
    ylabel: str = "",
    xlabel: str = "",
) -> str:
    """Render curves on a shared grid; one marker character per curve."""
    curves = [c for c in curves if len(c) > 0]
    if not curves:
        return "(no data)\n"
    xs = np.concatenate([c.x for c in curves])
    ys = np.concatenate([c.y for c in curves])
    ys = ys[np.isfinite(ys)]
    if ys.size == 0:
        return "(all values non-finite)\n"
    x_lo, x_hi = _nice_bounds(float(xs.min()), float(xs.max()))
    y_lo, y_hi = _nice_bounds(float(ys.min()), float(ys.max()))

    grid = [[" "] * width for _ in range(height)]
    for ci, c in enumerate(curves):
        marker = _MARKERS[ci % len(_MARKERS)]
        for xv, yv in zip(c.x, c.y):
            if not (math.isfinite(xv) and math.isfinite(yv)):
                continue
            col = int((xv - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((yv - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][min(max(col, 0), width - 1)] = marker

    lines: List[str] = []
    top_label = f"{y_hi:,.6g}"
    bottom_label = f"{y_lo:,.6g}"
    label_w = max(len(top_label), len(bottom_label))
    for r, row in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(label_w)
        elif r == height - 1:
            prefix = bottom_label.rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_w + "-" * (width + 2))
    x_axis = f"{x_lo:,.6g}".ljust(width // 2) + f"{x_hi:,.6g}".rjust(width // 2)
    lines.append(" " * (label_w + 2) + x_axis)
    if xlabel:
        lines.append(" " * (label_w + 2) + xlabel.center(width))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {c.label}" for i, c in enumerate(curves)
    )
    lines.append("")
    lines.append(f"  legend: {legend}")
    if ylabel:
        lines.insert(0, f"  y: {ylabel}")
    return "\n".join(lines) + "\n"


def render_figure(fig: FigureResult, width: int = 72, height: int = 20) -> str:
    """Full textual rendering of a figure: header, chart, params, notes."""
    out: List[str] = []
    out.append("=" * (width + 8))
    out.append(f"{fig.figure_id}: {fig.title}")
    out.append("=" * (width + 8))
    out.append(line_chart(fig.curves, width=width, height=height,
                          ylabel=fig.ylabel, xlabel=fig.xlabel))
    if fig.params:
        params = ", ".join(f"{k}={v}" for k, v in sorted(fig.params.items()))
        out.append(f"  params: {params}")
    if fig.notes:
        out.append(f"  notes: {fig.notes}")
    return "\n".join(out) + "\n"


def render_table(table: TableResult) -> str:
    """Aligned-columns textual rendering of a table result."""
    cols = table.columns
    rows = [[_fmt(r[c]) for c in cols] for r in table.rows]
    widths = [
        max(len(c), *(len(row[i]) for row in rows)) if rows else len(c)
        for i, c in enumerate(cols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = [f"{table.table_id}: {table.title}"]
    out.append(" | ".join(c.ljust(w) for c, w in zip(cols, widths)))
    out.append(sep)
    for row in rows:
        out.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    if table.notes:
        out.append(f"  notes: {table.notes}")
    return "\n".join(out) + "\n"


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:,.4g}"
    if isinstance(v, int):
        return f"{v:,}"
    return str(v)
