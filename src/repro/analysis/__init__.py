"""Result containers and terminal rendering for experiment outputs."""

from .ascii_chart import line_chart, render_figure, render_table
from .curves import Curve, FigureResult, TableResult
from .obs_report import (
    journal_to_trace,
    read_journal,
    render_obs_summary,
    validate_journal,
)
from .validation import (
    BiasVerdict,
    BootstrapCI,
    bias_test,
    bootstrap_mean_ci,
    detect_convergence,
    variance_ratio_test,
)
from .trend_report import (
    render_check_report,
    render_comparison,
    render_trend_report,
)

__all__ = [
    "BiasVerdict",
    "BootstrapCI",
    "Curve",
    "bias_test",
    "bootstrap_mean_ci",
    "detect_convergence",
    "variance_ratio_test",
    "FigureResult",
    "TableResult",
    "journal_to_trace",
    "line_chart",
    "read_journal",
    "render_check_report",
    "render_comparison",
    "render_figure",
    "render_obs_summary",
    "render_table",
    "render_trend_report",
    "validate_journal",
]
