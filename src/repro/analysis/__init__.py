"""Result containers and terminal rendering for experiment outputs."""

from .ascii_chart import line_chart, render_figure, render_table
from .curves import Curve, FigureResult, TableResult
from .validation import (
    BiasVerdict,
    BootstrapCI,
    bias_test,
    bootstrap_mean_ci,
    detect_convergence,
    variance_ratio_test,
)
from .trend_report import (
    render_check_report,
    render_comparison,
    render_trend_report,
)

__all__ = [
    "BiasVerdict",
    "BootstrapCI",
    "Curve",
    "bias_test",
    "bootstrap_mean_ci",
    "detect_convergence",
    "variance_ratio_test",
    "FigureResult",
    "TableResult",
    "line_chart",
    "render_check_report",
    "render_comparison",
    "render_figure",
    "render_table",
    "render_trend_report",
]
