"""Legacy setup shim.

The normal entry point is pyproject.toml; this file exists so that
``pip install -e .`` works on minimal environments that lack the ``wheel``
package (legacy ``setup.py develop`` path via ``--no-use-pep517``).
"""

from setuptools import setup

setup()
