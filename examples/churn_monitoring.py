#!/usr/bin/env python
"""Continuous size monitoring through the always-on estimation service.

The §IV-D scenario — a flash crowd followed by a mass departure — but
instead of driving the simulation layer directly, this walkthrough runs
the scenario the way an operator would: boot ``repro.service``, talk to
it purely through its HTTP surface (``docs/SERVICE.md``), and let it keep
two estimator families warm:

* a Sample&Collide probe refreshed every 5 rounds (memoryless, reacts
  fast);
* an Aggregation monitor with 40-round restart epochs (exact in steady
  state, staircase-lagged under churn).

The client streams membership events with ``POST /ingest``, advances the
resident scenario with ``POST /tick``, and polls ``GET /estimate`` — the
same round-trips ``repro-experiment serve`` exposes to real monitoring
clients.  Prints a timeline comparing both families against the true
size, the trade-off the paper's dynamic evaluation quantifies.

Run:
    python examples/churn_monitoring.py

For the paper's dynamic figures at scale use ``repro-experiment run``
(see examples/reproduce_paper.py); for a standalone resident service use
``repro-experiment serve`` (docs/SERVICE.md).
"""

from __future__ import annotations

from repro.service import (
    EstimationService,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
)

N0 = 8_000
HORIZON = 300
PROBE_EVERY = 5


def main() -> None:
    # Operator side: one resident service, two warm families.  In
    # production this is `repro-experiment serve`; embedding it keeps the
    # example a single process while the client still goes over HTTP.
    config = ServiceConfig(
        seed=7,
        initial_size=N0,
        estimators=("sample_collide", "aggregation"),
        probe_interval=PROBE_EVERY,
        sc_l=100,
        agg_restart_interval=40,
    )
    server = ServiceServer(EstimationService(config))

    timeline = []
    with server:
        client = ServiceClient(server.address)
        health = client.health()
        print(
            f"Monitoring a {health['size']:,}-node overlay for {HORIZON} rounds "
            "(+50% at round 60, -40% at round 180) ...\n"
        )

        for rnd in range(1, HORIZON + 1):
            # Membership events stream in as they happen; the service
            # folds them into the live ChurnScheduler at the next tick.
            if rnd == 60:
                client.ingest([{"joins": N0 // 2}])
            elif rnd == 180:
                client.ingest([{"frac_leaves": 0.4}])
            client.tick()
            if rnd % PROBE_EVERY == 0:
                reply = client.estimate()
                est = reply["estimates"]
                timeline.append(
                    (
                        rnd,
                        client.health()["size"],
                        est["sample_collide"]["value"],
                        est["aggregation"]["value"],
                    )
                )

    print(f"{'round':>6} {'true size':>10} {'S&C probe':>11} {'Aggregation':>12}")
    for rnd, true, sc_v, agg_v in timeline:
        marker = ""
        if rnd == 60:
            marker = "  <- flash crowd"
        elif rnd == 180:
            marker = "  <- mass failure"
        agg_s = f"{agg_v:>12,.0f}" if agg_v is not None else f"{'-':>12}"
        print(f"{rnd:>6} {true:>10,} {sc_v:>11,.0f} {agg_s}{marker}")

    print()
    print("Note how the S&C probe tracks each event within one probe period,")
    print("while the Aggregation staircase lags by up to one restart epoch —")
    print("but sits exactly on the true size in steady state.")


if __name__ == "__main__":
    main()
