#!/usr/bin/env python
"""Continuous size monitoring of a churning overlay (the §IV-D scenario).

Simulates a flash crowd followed by a mass departure while two monitors
track the overlay size:

* a Sample&Collide probe fired every 5 rounds (memoryless, reacts fast);
* an Aggregation monitor with periodic 40-round restart epochs (exact in
  steady state, staircase-lagged under churn).

Prints a timeline comparing both against the true size — the trade-off the
paper's dynamic evaluation quantifies.

Run:
    python examples/churn_monitoring.py

This walkthrough drives the simulation layer directly and stays serial;
for sharded, cached, journaled runs of the paper's dynamic figures use
``repro-experiment run`` with ``--workers``/``--hosts``/``--journal``
(see examples/reproduce_paper.py and docs/DISTRIBUTED.md).
"""

from __future__ import annotations

from repro import (
    ChurnScheduler,
    ChurnTrace,
    ChurnEvent,
    RoundDriver,
    SampleCollideEstimator,
    heterogeneous_random,
)
from repro.core.aggregation import AggregationMonitor
from repro.sim.rng import RngHub

N0 = 8_000
HORIZON = 300


def main() -> None:
    hub = RngHub(7)
    graph = heterogeneous_random(N0, rng=hub.stream("overlay"))

    # Flash crowd at round 60 (+50%), mass failure at round 180 (-40%).
    trace = ChurnTrace([
        ChurnEvent(time=60, joins=N0 // 2),
        ChurnEvent(time=180, frac_leaves=0.4),
    ])

    driver = RoundDriver()
    ChurnScheduler(graph, trace, rng=hub.stream("churn")).attach(driver)

    agg_monitor = AggregationMonitor(graph, restart_interval=40,
                                     rng=hub.stream("agg"))
    agg_monitor.attach(driver)

    timeline = []

    def probe(rnd: int) -> None:
        if rnd % 5 != 0:
            return
        sc = SampleCollideEstimator(graph, l=100, rng=hub.fresh("sc"))
        sc_est = sc.estimate().value
        agg_est = agg_monitor.series[-1] if agg_monitor.series else float("nan")
        timeline.append((rnd, graph.size, sc_est, agg_est))

    driver.subscribe(probe, priority=30)
    print(f"Monitoring a {N0:,}-node overlay for {HORIZON} rounds "
          "(+50% at round 60, -40% at round 180) ...\n")
    driver.run(HORIZON)

    print(f"{'round':>6} {'true size':>10} {'S&C probe':>11} {'Aggregation':>12}")
    for rnd, true, sc_v, agg_v in timeline:
        marker = ""
        if rnd == 60:
            marker = "  <- flash crowd"
        elif rnd == 180:
            marker = "  <- mass failure"
        agg_s = f"{agg_v:>12,.0f}" if agg_v == agg_v else f"{'-':>12}"
        print(f"{rnd:>6} {true:>10,} {sc_v:>11,.0f} {agg_s}{marker}")

    print()
    print("Note how the S&C probe tracks each event within one probe period,")
    print("while the Aggregation staircase lags by up to one restart epoch —")
    print("but sits exactly on the true size in steady state.")


if __name__ == "__main__":
    main()
