#!/usr/bin/env python
"""Quickstart: estimate the size of a peer-to-peer overlay three ways.

Builds the paper's standard overlay (heterogeneous random graph, max degree
10), then runs each candidate algorithm once and prints its estimate, error
and message cost — a minimal tour of the public API.

Run:
    python examples/quickstart.py [n_nodes] [seed]
"""

from __future__ import annotations

import sys

from repro import (
    AggregationProtocol,
    HopsSamplingEstimator,
    SampleCollideEstimator,
    heterogeneous_random,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42

    print(f"Building a heterogeneous random overlay with {n:,} nodes ...")
    graph = heterogeneous_random(n, max_degree=10, rng=seed)
    print(f"  nodes: {graph.size:,}   edges: {graph.num_edges:,}   "
          f"avg degree: {graph.average_degree():.2f}")
    print()

    # --- Sample&Collide: random-walk sampling + inverted birthday paradox
    sc = SampleCollideEstimator(graph, l=200, timer=10.0, rng=seed)
    est = sc.estimate()
    _report("Sample&Collide (l=200, oneShot)", est, graph.size)

    # --- HopsSampling: gossip spread + probabilistic polling
    hops = HopsSamplingEstimator(graph, rng=seed)
    est = hops.estimate()
    _report("HopsSampling (minHopsReporting=5)", est, graph.size)
    print(f"    (spread reached {est.meta['coverage']:.0%} of the overlay — "
          "unreached nodes are why this one under-estimates)")

    # --- Aggregation: push-pull averaging, exact after convergence
    agg = AggregationProtocol(graph, rng=seed)
    est = agg.estimate(rounds=50)
    _report("Aggregation (50 rounds)", est, graph.size)

    print()
    print("Takeaway (the paper's Table I): Aggregation is near-exact but")
    print("costs 2*N*rounds messages; Sample&Collide trades accuracy for")
    print("cost via l; HopsSampling sits in between with a low bias.")


def _report(name: str, est, true_size: int) -> None:
    err = est.quality(true_size) - 100.0
    print(f"  {name}")
    print(f"    estimate: {est.value:>12,.0f}   (true {true_size:,}, "
          f"error {err:+.1f}%)   cost: {est.messages:,} messages")


if __name__ == "__main__":
    main()
