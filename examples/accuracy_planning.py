#!/usr/bin/env python
"""Planning estimator deployments from accuracy/budget targets.

The paper's §V lesson is that Sample&Collide "adapts to the application
performance needs by simply modifying one parameter".  This example shows
the planning API built on that: state a target, get a configuration; then
validate the plan empirically and finish with a self-tuning monitor that
holds its accuracy while the overlay doubles in size.

Run:
    python examples/accuracy_planning.py
"""

from __future__ import annotations

import numpy as np

from repro import SampleCollideEstimator, heterogeneous_random
from repro.churn import ChurnScheduler, growing_trace
from repro.core.adaptive import (
    AdaptiveMonitor,
    choose_l_for_budget,
    plan_estimation,
)
from repro.sim.rng import RngHub

N = 10_000


def main() -> None:
    hub = RngHub(31)
    graph = heterogeneous_random(N, rng=hub.stream("overlay"))

    print("1. Accuracy-targeted planning")
    print("-" * 60)
    for target in (0.20, 0.10, 0.05, 0.01, 0.001):
        plan = plan_estimation(size_hint=N, target_rel_error=target)
        print(f"  target ±{target:>6.1%} -> {plan.algorithm:<15} "
              f"{plan.parameters}   ~{plan.projected_messages:,.0f} msgs")

    print()
    print("2. Budget-targeted planning (Sample&Collide's l from a budget)")
    print("-" * 60)
    for budget in (20_000, 60_000, 200_000, 600_000):
        l = choose_l_for_budget(budget, size_hint=N)
        print(f"  budget {budget:>8,} msgs -> l={l:<5} "
              f"(projected error ~{1/np.sqrt(l):.1%})")

    print()
    print("3. Validating one plan empirically (target ±10%)")
    print("-" * 60)
    plan = plan_estimation(size_hint=N, target_rel_error=0.10)
    errors, costs = [], []
    for s in range(12):
        est = SampleCollideEstimator(
            graph, l=plan.parameters["l"], rng=hub.fresh("probe")
        ).estimate()
        errors.append(abs(est.quality(N) - 100))
        costs.append(est.messages)
    print(f"  plan: {plan.rationale}")
    print(f"  measured: mean |error| {np.mean(errors):.1f}% "
          f"(target 10%), mean cost {np.mean(costs):,.0f} msgs "
          f"(projected {plan.projected_messages:,.0f})")

    print()
    print("4. Self-tuning monitor on a doubling overlay")
    print("-" * 60)
    monitor = AdaptiveMonitor(graph, target_rel_std=0.1, window=5,
                              rng=hub.stream("mon"))
    trace = growing_trace(N, 1.0, start=1, end=20, steps=20)
    sched = ChurnScheduler(graph, trace, rng=hub.stream("churn"))
    for step in range(1, 26):
        if step <= 20:
            sched.advance_to(step)
        est = monitor.probe()
        if step % 5 == 0:
            print(f"  step {step:>2}: true {graph.size:>6,}  "
                  f"monitor {monitor.current_estimate:>9,.0f}  "
                  f"(probe cost {est.messages:,} msgs)")
    final_err = abs(monitor.current_estimate / graph.size - 1)
    print(f"  final tracking error: {final_err:.1%} "
          "(cost per probe auto-scaled with sqrt(N))")


if __name__ == "__main__":
    main()
