#!/usr/bin/env python
"""Regenerate every figure and table of the paper in one run.

Thin wrapper over the experiment harness: renders each figure as an ASCII
chart, writes CSVs (plot-ready with gnuplot/matplotlib) into ``results/``
and prints a closing summary of paper-shape checks.

Run (≈30 s at the small scale, minutes at default):
    python examples/reproduce_paper.py --scale small

Shard each figure's trials over worker processes and cache results so a
rerun only recomputes what changed:
    python examples/reproduce_paper.py --scale small --workers 4 --cache-dir .repro-cache

Fan out to remote workers instead (``repro-experiment worker serve`` on
each host, docs/DISTRIBUTED.md), and journal the run for
``obs summary|trace|validate`` (docs/OBSERVABILITY.md):
    python examples/reproduce_paper.py --hosts nodeA:7700,nodeB:7700 --journal run.jsonl

Results are bit-identical for any ``--workers``/``--hosts`` setting.
"""

from __future__ import annotations

import argparse
import contextlib
import pathlib
import time

from repro.analysis.ascii_chart import render_figure, render_table
from repro.analysis.curves import FigureResult
from repro.experiments import FIGURES, TABLES
from repro.runtime import JournalReporter, RuntimeOptions, supports_runtime


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small",
                        choices=["small", "default", "paper"])
    parser.add_argument("--out", type=pathlib.Path, default=pathlib.Path("results"))
    parser.add_argument("--seed", type=int, default=20060619)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes per experiment (results identical)")
    parser.add_argument("--hosts", default=None,
                        help="comma-separated host:port worker list for cluster "
                             "execution (docs/DISTRIBUTED.md); trusted networks only")
    parser.add_argument("--cache-dir", type=pathlib.Path, default=None,
                        help="content-addressed results store for instant reruns")
    parser.add_argument("--journal", type=pathlib.Path, default=None,
                        help="append a JSONL run journal for obs summary/trace/"
                             "validate (docs/OBSERVABILITY.md)")
    args = parser.parse_args()

    args.out.mkdir(parents=True, exist_ok=True)
    with contextlib.ExitStack() as stack:
        journal = (stack.enter_context(JournalReporter(args.journal))
                   if args.journal else None)
        runtime = RuntimeOptions.create(workers=args.workers,
                                        cache_dir=args.cache_dir,
                                        hosts=args.hosts, progress=journal)
        run_catalog(args, runtime)


def run_catalog(args: argparse.Namespace, runtime: RuntimeOptions) -> None:
    """Regenerate every catalog entry through ``runtime``, CSVs into ``args.out``."""
    started = time.perf_counter()

    for name, fn in list(FIGURES.items()) + list(TABLES.items()):
        t0 = time.perf_counter()
        kwargs = {"scale": args.scale, "seed": args.seed}
        if supports_runtime(fn):
            kwargs["runtime"] = runtime
        result = fn(**kwargs)
        elapsed = time.perf_counter() - t0
        if isinstance(result, FigureResult):
            print(render_figure(result))
        else:
            print(render_table(result))
        (args.out / f"{name}.csv").write_text(result.to_csv())
        print(f"  [{name}: {elapsed:.1f}s, CSV -> {args.out / (name + '.csv')}]\n")

    total = time.perf_counter() - started
    print(f"Regenerated {len(FIGURES)} figures + {len(TABLES)} tables "
          f"in {total:.0f}s at scale={args.scale!r}.")
    print("Compare against the paper's expectations in EXPERIMENTS.md.")


if __name__ == "__main__":
    main()
