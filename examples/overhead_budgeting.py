#!/usr/bin/env python
"""Choosing an estimator under a message budget (the paper's §V tradeoffs).

A developer integrating size estimation usually starts from a budget:
"how accurate can I get for X messages per estimate?"  This example sweeps
Sample&Collide's l parameter and compares the achievable (cost, accuracy)
points against HopsSampling and Aggregation on the same overlay, printing
the frontier the paper's Table I summarizes.

Run:
    python examples/overhead_budgeting.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AggregationProtocol,
    HopsSamplingEstimator,
    SampleCollideEstimator,
    heterogeneous_random,
)
from repro.sim.rng import RngHub

N = 10_000
REPS = 8


def measure(make) -> tuple:
    costs, errors = [], []
    for _ in range(REPS):
        est = make().estimate()
        costs.append(est.messages)
        errors.append(abs(est.quality(N) - 100.0))
    return float(np.mean(costs)), float(np.mean(errors))


def main() -> None:
    hub = RngHub(11)
    graph = heterogeneous_random(N, rng=hub.stream("overlay"))

    print(f"Cost/accuracy frontier on an n={N:,} overlay "
          f"(mean of {REPS} runs each)\n")
    print(f"{'configuration':<34} {'msgs/estimate':>14} {'mean |error| %':>15}")
    print("-" * 65)

    rows = []
    for l in (10, 50, 100, 200, 400):
        cost, err = measure(
            lambda l=l: SampleCollideEstimator(graph, l=l, rng=hub.fresh("sc"))
        )
        rows.append((f"Sample&Collide l={l}", cost, err))

    cost, err = measure(lambda: HopsSamplingEstimator(graph, rng=hub.fresh("h")))
    rows.append(("HopsSampling (one shot)", cost, err))

    for rounds in (20, 35, 50):
        cost, err = measure(
            lambda r=rounds: _AggOnce(graph, hub, r)
        )
        rows.append((f"Aggregation {rounds} rounds", cost, err))

    for name, cost, err in rows:
        print(f"{name:<34} {cost:>14,.0f} {err:>14.2f}%")

    print()
    print("Reading the frontier:")
    print(" * Sample&Collide spans the whole budget axis — l is the dial")
    print("   (error ~ 1/sqrt(l), cost ~ sqrt(l)).")
    print(" * Aggregation buys near-exactness, but only at the high end,")
    print("   and cutting rounds below convergence degrades it sharply —")
    print("   the inflexibility the paper calls out.")
    print(" * HopsSampling is cheap-ish but carries its coverage bias.")


class _AggOnce:
    """Adapter giving AggregationProtocol the one-shot estimator shape."""

    def __init__(self, graph, hub, rounds):
        self.proto = AggregationProtocol(graph, rng=hub.fresh("agg"))
        self.rounds = rounds

    def estimate(self):
        return self.proto.estimate(rounds=self.rounds)


if __name__ == "__main__":
    main()
