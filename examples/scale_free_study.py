#!/usr/bin/env python
"""Topology sensitivity study: random vs scale-free overlays (§IV-C-g).

Many real overlays (and the Internet itself, as the paper notes) have
power-law degree distributions.  This example builds a Barabási–Albert
overlay next to the standard heterogeneous random one and measures how
each algorithm's accuracy changes — reproducing the paper's Fig 7/8
findings in script form:

* Sample&Collide's timer walk stays unbiased (its whole design point);
* Aggregation stays exact (mass conservation is topology-free);
* HopsSampling's under-estimation gets *worse* (hubs skew the gossip
  spread's coverage).

Run:
    python examples/scale_free_study.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AggregationProtocol,
    HopsSamplingEstimator,
    SampleCollideEstimator,
    heterogeneous_random,
    scale_free,
)
from repro.overlay.views import degree_stats, powerlaw_exponent
from repro.sim.rng import RngHub

N = 8_000
REPS = 10


def run_suite(graph, hub) -> dict:
    n = graph.size
    out = {}
    out["Sample&Collide (l=200)"] = [
        SampleCollideEstimator(graph, l=200, rng=hub.fresh("sc")).estimate().quality(n)
        for _ in range(REPS)
    ]
    out["HopsSampling"] = [
        HopsSamplingEstimator(graph, rng=hub.fresh("hops")).estimate().quality(n)
        for _ in range(REPS)
    ]
    out["Aggregation (50 rounds)"] = [
        AggregationProtocol(graph, rng=hub.fresh("agg")).estimate(rounds=50).quality(n)
        for _ in range(REPS)
    ]
    return out


def describe(graph, label) -> None:
    s = degree_stats(graph)
    line = (f"{label}: n={s.n:,}  avg deg={s.mean_degree:.1f}  "
            f"max deg={s.max_degree}")
    try:
        line += f"  power-law exponent={powerlaw_exponent(graph):.2f}"
    except ValueError:
        pass
    print(line)


def main() -> None:
    hub = RngHub(23)
    random_overlay = heterogeneous_random(N, rng=hub.stream("rand"))
    sf_overlay = scale_free(N, m=3, rng=hub.stream("sf"))

    describe(random_overlay, "random overlay    ")
    describe(sf_overlay, "scale-free overlay")
    print()

    res_rand = run_suite(random_overlay, hub.child("on_rand"))
    res_sf = run_suite(sf_overlay, hub.child("on_sf"))

    print(f"{'algorithm':<26} {'random: mean q%':>16} {'scale-free: mean q%':>20}")
    print("-" * 64)
    for name in res_rand:
        q_r = np.mean(res_rand[name])
        q_s = np.mean(res_sf[name])
        print(f"{name:<26} {q_r:>15.1f}% {q_s:>19.1f}%")

    hops_delta = np.mean(res_rand["HopsSampling"]) - np.mean(res_sf["HopsSampling"])
    print()
    print(f"HopsSampling loses a further {hops_delta:.1f} quality points on the")
    print("scale-free overlay — the paper's amplified-bias observation —")
    print("while the walk-based and epidemic candidates are unaffected.")


if __name__ == "__main__":
    main()
