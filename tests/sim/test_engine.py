"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationEngine, SimulationError


class TestScheduling:
    def test_time_ordering(self):
        eng = SimulationEngine()
        log = []
        eng.schedule(5.0, lambda e: log.append("late"))
        eng.schedule(1.0, lambda e: log.append("early"))
        eng.run()
        assert log == ["early", "late"]

    def test_priority_breaks_ties(self):
        eng = SimulationEngine()
        log = []
        eng.schedule(1.0, lambda e: log.append("b"), priority=1)
        eng.schedule(1.0, lambda e: log.append("a"), priority=0)
        eng.run()
        assert log == ["a", "b"]

    def test_fifo_within_priority(self):
        eng = SimulationEngine()
        log = []
        for i in range(5):
            eng.schedule(1.0, lambda e, i=i: log.append(i))
        eng.run()
        assert log == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        eng = SimulationEngine()
        times = []
        eng.schedule(2.5, lambda e: times.append(e.now))
        eng.schedule(7.0, lambda e: times.append(e.now))
        eng.run()
        assert times == [2.5, 7.0]
        assert eng.now == 7.0

    def test_schedule_in_past_rejected(self):
        eng = SimulationEngine(start_time=10.0)
        with pytest.raises(SimulationError):
            eng.schedule(9.0, lambda e: None)

    def test_schedule_at_now_allowed(self):
        eng = SimulationEngine(start_time=10.0)
        hit = []
        eng.schedule(10.0, lambda e: hit.append(1))
        eng.run()
        assert hit == [1]

    def test_schedule_in_relative(self):
        eng = SimulationEngine(start_time=3.0)
        times = []
        eng.schedule_in(2.0, lambda e: times.append(e.now))
        eng.run()
        assert times == [5.0]

    def test_schedule_in_negative_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().schedule_in(-1.0, lambda e: None)

    def test_events_can_schedule_events(self):
        eng = SimulationEngine()
        log = []

        def first(e):
            log.append("first")
            e.schedule_in(1.0, lambda e2: log.append("second"))

        eng.schedule(1.0, first)
        eng.run()
        assert log == ["first", "second"]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        eng = SimulationEngine()
        log = []
        ev = eng.schedule(1.0, lambda e: log.append("no"))
        eng.schedule(2.0, lambda e: log.append("yes"))
        ev.cancel()
        eng.run()
        assert log == ["yes"]

    def test_pending_excludes_cancelled(self):
        eng = SimulationEngine()
        ev = eng.schedule(1.0, lambda e: None)
        eng.schedule(2.0, lambda e: None)
        assert eng.pending == 2
        ev.cancel()
        assert eng.pending == 1

    def test_stop_cancels_everything(self):
        eng = SimulationEngine()
        log = []

        def stopper(e):
            log.append("ran")
            e.stop()

        eng.schedule(1.0, stopper)
        eng.schedule(2.0, lambda e: log.append("never"))
        eng.run()
        assert log == ["ran"]


class TestRunControl:
    def test_run_until_horizon(self):
        eng = SimulationEngine()
        log = []
        eng.schedule(1.0, lambda e: log.append(1))
        eng.schedule(5.0, lambda e: log.append(5))
        executed = eng.run(until=3.0)
        assert executed == 1
        assert log == [1]
        assert eng.now == 3.0  # clock advanced to horizon
        assert eng.pending == 1  # late event still queued

    def test_run_resumes_after_horizon(self):
        eng = SimulationEngine()
        log = []
        eng.schedule(5.0, lambda e: log.append(5))
        eng.run(until=3.0)
        eng.run()
        assert log == [5]

    def test_max_events(self):
        eng = SimulationEngine()
        log = []
        for i in range(10):
            eng.schedule(float(i + 1), lambda e, i=i: log.append(i))
        eng.run(max_events=3)
        assert log == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        assert SimulationEngine().step() is False

    def test_executed_counter(self):
        eng = SimulationEngine()
        for i in range(4):
            eng.schedule(float(i + 1), lambda e: None)
        eng.run()
        assert eng.executed == 4

    def test_reentrant_run_rejected(self):
        eng = SimulationEngine()

        def recurse(e):
            with pytest.raises(SimulationError):
                e.run()

        eng.schedule(1.0, recurse)
        eng.run()


class TestRecurring:
    def test_fixed_count(self):
        eng = SimulationEngine()
        hits = []
        eng.schedule_every(1.0, lambda e: hits.append(e.now), count=4)
        eng.run()
        assert hits == [1.0, 2.0, 3.0, 4.0]

    def test_explicit_start(self):
        eng = SimulationEngine()
        hits = []
        eng.schedule_every(2.0, lambda e: hits.append(e.now), start=5.0, count=2)
        eng.run()
        assert hits == [5.0, 7.0]

    def test_unbounded_with_horizon(self):
        eng = SimulationEngine()
        hits = []
        eng.schedule_every(1.0, lambda e: hits.append(e.now))
        eng.run(until=3.5)
        assert hits == [1.0, 2.0, 3.0]

    def test_zero_count_never_fires(self):
        eng = SimulationEngine()
        hits = []
        eng.schedule_every(1.0, lambda e: hits.append(1), count=0)
        eng.run(until=10)
        assert hits == []

    def test_bad_interval_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().schedule_every(0.0, lambda e: None)
