"""Tests for accuracy metrics (quality %, last10runs, estimate series)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.metrics import (
    EstimateSeries,
    RollingAverage,
    error_percent,
    quality_percent,
)


class TestQuality:
    def test_exact_is_100(self):
        assert quality_percent(500, 500) == 100.0

    def test_over_under(self):
        assert quality_percent(150, 100) == 150.0
        assert quality_percent(50, 100) == 50.0

    def test_error_absolute(self):
        assert error_percent(120, 100) == pytest.approx(20.0)
        assert error_percent(80, 100) == pytest.approx(20.0)

    def test_nonpositive_true_size_rejected(self):
        with pytest.raises(ValueError):
            quality_percent(10, 0)
        with pytest.raises(ValueError):
            error_percent(10, -5)


class TestRollingAverage:
    def test_window_semantics(self):
        r = RollingAverage(3)
        assert r.push(1.0) == 1.0
        assert r.push(2.0) == 1.5
        assert r.push(3.0) == 2.0
        assert r.push(4.0) == 3.0  # the 1.0 fell out

    def test_count(self):
        r = RollingAverage(5)
        for i in range(3):
            r.push(float(i))
        assert r.count == 3

    def test_reset(self):
        r = RollingAverage(3)
        r.push(5.0)
        r.reset()
        assert r.count == 0
        assert math.isnan(r.mean)

    def test_empty_mean_is_nan(self):
        assert math.isnan(RollingAverage(3).mean)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            RollingAverage(0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
           st.integers(1, 10))
    @settings(max_examples=100, deadline=None)
    def test_matches_naive_windowed_mean(self, values, window):
        r = RollingAverage(window)
        for i, v in enumerate(values):
            got = r.push(v)
            expect = sum(values[max(0, i - window + 1) : i + 1]) / min(i + 1, window)
            assert got == pytest.approx(expect, rel=1e-9, abs=1e-9)


class TestEstimateSeries:
    def _make(self):
        s = EstimateSeries("t")
        for i, (est, true) in enumerate([(90, 100), (110, 100), (100, 100), (130, 100)], 1):
            s.append(i, est, true)
        return s

    def test_lengths_and_arrays(self):
        s = self._make()
        assert len(s) == 4
        assert list(s.x) == [1, 2, 3, 4]
        assert list(s.estimates) == [90, 110, 100, 130]

    def test_qualities(self):
        s = self._make()
        assert list(s.qualities()) == [90.0, 110.0, 100.0, 130.0]

    def test_errors(self):
        s = self._make()
        assert list(s.errors()) == [10.0, 10.0, 0.0, 30.0]

    def test_rolling_qualities(self):
        s = self._make()
        rolled = s.rolling_qualities(window=2)
        assert rolled[0] == 90.0
        assert rolled[1] == pytest.approx(100.0)
        assert rolled[3] == pytest.approx(115.0)

    def test_rolling_uses_current_true_size(self):
        s = EstimateSeries()
        s.append(1, 100, 100)
        s.append(2, 100, 200)  # network doubled but estimates lag
        rolled = s.rolling_qualities(window=2)
        assert rolled[1] == pytest.approx(50.0)

    def test_summary_stats(self):
        s = self._make()
        summ = s.summary()
        assert summ.count == 4
        assert summ.mean_quality == pytest.approx(107.5)
        assert summ.worst_error == 30.0
        assert summ.bias == pytest.approx(7.5)
        assert summ.within_10pct == pytest.approx(0.75)
        assert summ.within_20pct == pytest.approx(0.75)

    def test_summary_skip(self):
        s = self._make()
        summ = s.summary(skip=3)
        assert summ.count == 1
        assert summ.mean_quality == 130.0

    def test_summary_skip_too_much(self):
        with pytest.raises(ValueError):
            self._make().summary(skip=4)

    def test_append_bad_true_size(self):
        with pytest.raises(ValueError):
            EstimateSeries().append(1, 10, 0)

    def test_rows_roundtrip(self):
        s = self._make()
        rows = list(s.rows())
        assert rows[0] == (1.0, 90.0, 100.0)
        assert len(rows) == 4

    def test_as_dict_summary(self):
        d = self._make().summary().as_dict()
        assert "rmse_quality" in d and "bias" in d
