"""Tests for message accounting (the paper's overhead metric)."""

from __future__ import annotations

import pytest

from repro.sim.messages import MessageKind, MessageMeter, MeterSnapshot


class TestMeter:
    def test_starts_empty(self):
        meter = MessageMeter()
        assert meter.total == 0
        assert meter.count(MessageKind.SPREAD) == 0

    def test_add_accumulates(self):
        meter = MessageMeter()
        meter.add(MessageKind.WALK, 10)
        meter.add(MessageKind.WALK, 5)
        meter.add(MessageKind.REPLY)
        assert meter.count(MessageKind.WALK) == 15
        assert meter.count(MessageKind.REPLY) == 1
        assert meter.total == 16

    def test_add_zero_is_noop(self):
        meter = MessageMeter()
        meter.add(MessageKind.SPREAD, 0)
        assert meter.total == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MessageMeter().add(MessageKind.SPREAD, -1)

    def test_reset(self):
        meter = MessageMeter()
        meter.add(MessageKind.EXCHANGE, 100)
        meter.reset()
        assert meter.total == 0

    def test_items(self):
        meter = MessageMeter()
        meter.add(MessageKind.SPREAD, 2)
        meter.add(MessageKind.REPLY, 3)
        assert dict(meter.items()) == {"spread": 2, "reply": 3}

    def test_all_kinds_distinct(self):
        meter = MessageMeter()
        for kind in MessageKind:
            meter.add(kind, 1)
        assert meter.total == len(MessageKind)
        for kind in MessageKind:
            assert meter.count(kind) == 1


class TestSnapshot:
    def test_snapshot_is_frozen(self):
        meter = MessageMeter()
        meter.add(MessageKind.WALK, 5)
        snap = meter.snapshot()
        meter.add(MessageKind.WALK, 5)
        assert snap.of(MessageKind.WALK) == 5
        assert meter.count(MessageKind.WALK) == 10

    def test_total(self):
        meter = MessageMeter()
        meter.add(MessageKind.WALK, 3)
        meter.add(MessageKind.REPLY, 4)
        assert meter.snapshot().total == 7

    def test_subtraction_gives_delta(self):
        meter = MessageMeter()
        meter.add(MessageKind.SPREAD, 10)
        before = meter.snapshot()
        meter.add(MessageKind.SPREAD, 7)
        meter.add(MessageKind.REPLY, 2)
        delta = meter.snapshot() - before
        assert delta.of(MessageKind.SPREAD) == 7
        assert delta.of(MessageKind.REPLY) == 2
        assert delta.total == 9

    def test_missing_kind_is_zero(self):
        assert MeterSnapshot({}).of(MessageKind.CONTROL) == 0
