"""Tests for the message-delay model (the paper's future-work extension)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.sim.latency import (
    DelayBreakdown,
    LatencyModel,
    completion_time_lockstep,
)


class TestLatencyModel:
    def test_draw_shapes_and_positivity(self):
        model = LatencyModel(median_ms=50, sigma=0.5, rng=1)
        lat = model.draw(1_000)
        assert lat.shape == (1_000,)
        assert (lat > 0).all()

    def test_zero_draws(self):
        assert LatencyModel(rng=1).draw(0).shape == (0,)

    def test_negative_draws_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(rng=1).draw(-1)

    def test_median_honoured(self):
        model = LatencyModel(median_ms=80, sigma=0.5, rng=2)
        lat = model.draw(20_000)
        assert np.median(lat) == pytest.approx(0.080, rel=0.05)

    def test_constant_mode(self):
        model = LatencyModel(median_ms=10, sigma=0.0, rng=3)
        lat = model.draw(100)
        assert (lat == 0.010).all()
        assert model.mean() == pytest.approx(0.010)

    def test_mean_formula(self):
        model = LatencyModel(median_ms=50, sigma=0.5, rng=4)
        analytic = 0.050 * math.exp(0.5**2 / 2)
        assert model.mean() == pytest.approx(analytic)
        assert model.draw(50_000).mean() == pytest.approx(analytic, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyModel(median_ms=0)
        with pytest.raises(ValueError):
            LatencyModel(sigma=-0.1)


class TestLockstep:
    def test_zero_rounds(self):
        assert completion_time_lockstep(LatencyModel(rng=1), 0, 8) == 0.0

    def test_grows_linearly_in_rounds(self):
        model = LatencyModel(median_ms=50, sigma=0.0, rng=1)
        t10 = completion_time_lockstep(model, 10, 8)
        t20 = completion_time_lockstep(model, 20, 8)
        assert t20 == pytest.approx(2 * t10)

    def test_max_exceeds_mean_under_jitter(self):
        jitter = LatencyModel(median_ms=50, sigma=0.8, rng=2)
        const = LatencyModel(median_ms=50, sigma=0.0, rng=2)
        assert completion_time_lockstep(jitter, 50, 64) > completion_time_lockstep(
            const, 50, 64
        )


class TestAlgorithmDelays:
    def test_sample_collide_sequential_vs_parallel(self):
        model = LatencyModel(median_ms=50, sigma=0.5, rng=5)
        seq = model.sample_collide_delay(500, 70, parallel_walks=False)
        par = LatencyModel(median_ms=50, sigma=0.5, rng=5).sample_collide_delay(
            500, 70, parallel_walks=True
        )
        assert par.total < seq.total / 10  # parallelism wins massively

    def test_hops_delay_breakdown(self):
        model = LatencyModel(median_ms=50, sigma=0.5, rng=6)
        d = model.hops_sampling_delay(spread_rounds=12)
        assert isinstance(d, DelayBreakdown)
        assert d.total == pytest.approx(d.phases["spread"] + d.phases["reply"])

    def test_aggregation_delay_uses_round_trips(self):
        model = LatencyModel(median_ms=50, sigma=0.0, rng=7)
        d = model.aggregation_delay(rounds=50)
        assert d.total == pytest.approx(2 * 50 * 0.050)

    def test_paper_conjecture_hops_fastest(self):
        # §V: the gossip spread + ACK beats 50 aggregation round trips and
        # the sequential wait for the walk samples.
        model = LatencyModel(median_ms=50, sigma=0.5, rng=8)
        hops = model.hops_sampling_delay(spread_rounds=15).total
        agg = model.aggregation_delay(rounds=50).total
        sc = model.sample_collide_delay(2_000, 70, parallel_walks=False).total
        assert hops < agg < sc

    def test_validation(self):
        model = LatencyModel(rng=9)
        with pytest.raises(ValueError):
            model.sample_collide_delay(-1, 10)
        with pytest.raises(ValueError):
            model.hops_sampling_delay(-1)
        with pytest.raises(ValueError):
            model.aggregation_delay(-1)


class TestDelayExperiment:
    def test_delay_table(self, tiny_scale):
        from repro.experiments.delay import delay_comparison

        table = delay_comparison(scale=tiny_scale)
        assert len(table.rows) == 4
        by = {r["algorithm"]: r["completion_seconds"] for r in table.rows}
        # the paper's conjecture holds in the model
        assert by["HopsSampling"] < by["Aggregation"]
        assert by["Aggregation"] < by["Sample&Collide (sequential walks)"]
