"""Tests for the deterministic RNG hub."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.rng import RngHub, as_generator, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_name_sensitivity(self):
        assert derive_seed(42, "x") != derive_seed(42, "y")

    def test_seed_sensitivity(self):
        assert derive_seed(42, "x") != derive_seed(43, "x")

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(123456, "label") < 2**64


class TestRngHub:
    def test_same_seed_same_streams(self):
        a, b = RngHub(7), RngHub(7)
        assert a.stream("s").random() == b.stream("s").random()

    def test_streams_are_cached(self):
        hub = RngHub(7)
        assert hub.stream("s") is hub.stream("s")

    def test_streams_independent_of_request_order(self):
        a, b = RngHub(7), RngHub(7)
        a.stream("first")  # consume nothing, but create in different order
        x = a.stream("second").random()
        y = b.stream("second").random()
        assert x == y

    def test_different_names_different_draws(self):
        hub = RngHub(7)
        assert hub.stream("a").random() != hub.stream("b").random()

    def test_fresh_advances(self):
        hub = RngHub(7)
        g1, g2 = hub.fresh("f"), hub.fresh("f")
        assert g1.random() != g2.random()

    def test_fresh_deterministic_across_hubs(self):
        a, b = RngHub(7), RngHub(7)
        assert a.fresh("f").random() == b.fresh("f").random()
        assert a.fresh("f").random() == b.fresh("f").random()

    def test_child_hubs_deterministic(self):
        a, b = RngHub(7).child("sub"), RngHub(7).child("sub")
        assert a.stream("s").random() == b.stream("s").random()

    def test_child_differs_from_parent(self):
        hub = RngHub(7)
        assert hub.child("sub").stream("s").random() != hub.stream("s").random()

    def test_seed_property(self):
        assert RngHub(99).seed == 99

    def test_none_seed_gives_entropy(self):
        # Cannot test the value; just that construction works and differs.
        assert RngHub(None).seed != RngHub(None).seed


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        assert as_generator(5).random() == as_generator(5).random()

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_hub_uses_named_stream(self):
        hub = RngHub(7)
        g = as_generator(hub, "chan")
        assert g is hub.stream("chan")

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            as_generator("not-a-seed")
