"""Cross-validation: closed-form delay models vs message-level simulation.

The delay ablation prices algorithms with the lock-step closed forms in
:mod:`repro.sim.latency`; the message-level :mod:`repro.sim.network` mode
measures completion times from actual per-message event orderings.  These
tests pin the two against each other so the ablation's numbers are backed
by simulation, not just algebra.
"""

from __future__ import annotations

import pytest

from repro.overlay.builders import heterogeneous_random
from repro.sim.latency import LatencyModel
from repro.sim.network import MessageLevelSpread, Network


class TestSpreadDelayModel:
    def _measure(self, n: int, sigma: float, seed: int):
        g = heterogeneous_random(n, rng=seed)
        net = Network(g, latency=LatencyModel(median_ms=50, sigma=sigma, rng=seed + 1))
        spread = MessageLevelSpread(net, gossip_to=2, rng=seed + 2)
        spread.run(g.random_node(seed + 3))
        return spread, net

    def test_constant_latency_matches_generation_count(self):
        """With zero jitter, completion time = (#epidemic generations) x
        latency exactly — the lock-step abstraction is exact."""
        spread, net = self._measure(800, sigma=0.0, seed=30)
        generations = spread.finished_at / 0.050
        assert generations == pytest.approx(round(generations), abs=1e-6)
        # generations in the band the lock-step model assumes: log2-ish
        assert 5 <= generations <= 60

    def test_jitter_slows_completion(self):
        """Lock-step rounds are bounded by the slowest message, so latency
        jitter strictly increases completion time at equal median."""
        const, _ = self._measure(800, sigma=0.0, seed=31)
        jitter, _ = self._measure(800, sigma=0.8, seed=31)
        assert jitter.finished_at > const.finished_at * 0.9
        # reach is unaffected by delays (same protocol, different clock)
        assert abs(jitter.coverage() - const.coverage()) < 0.1

    def test_model_is_a_conservative_bracket(self):
        """The closed-form hops_sampling_delay upper-bounds the
        message-level measurement under the same latency law (lock-step
        barriers wait for the slowest message; a real epidemic lets fast
        paths race ahead, so generations overlap), while staying within a
        single-digit factor."""
        spread, net = self._measure(1_200, sigma=0.5, seed=32)
        measured = spread.finished_at
        # price the same number of generations through the lock-step model
        generations = max(int(round(measured / 0.050)), 1) if measured else 1
        model = LatencyModel(median_ms=50, sigma=0.5, rng=33)
        predicted = model.hops_sampling_delay(spread_rounds=generations).total
        assert measured <= predicted * 1.1  # conservative...
        assert measured > predicted / 8  # ...but not absurdly so

    def test_completion_grows_logarithmically_with_n(self):
        small, _ = self._measure(200, sigma=0.0, seed=34)
        large, _ = self._measure(3_200, sigma=0.0, seed=34)
        # 16x the nodes => ~log2(16)=4 extra generations, NOT 16x the time
        assert large.finished_at < 3 * small.finished_at
        assert large.finished_at > small.finished_at * 0.8
