"""Tests for the message-level network simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hops_sampling import _gossip_spread
from repro.overlay.builders import heterogeneous_random
from repro.overlay.graph import OverlayGraph
from repro.sim.latency import LatencyModel
from repro.sim.messages import MessageKind
from repro.sim.network import Message, MessageLevelSpread, Network


class TestNetworkDelivery:
    def test_message_delivered_to_handler(self):
        g = OverlayGraph(nodes=[0, 1], edges=[(0, 1)])
        net = Network(g, rng=1)
        got = []
        net.set_handler(1, lambda n, node, msg: got.append((node, msg.payload)))
        net.send(0, 1, MessageKind.SPREAD, payload="hi")
        net.run()
        assert got == [(1, "hi")]
        assert net.delivered == 1

    def test_latency_orders_deliveries(self):
        g = OverlayGraph(nodes=[0, 1, 2], edges=[(0, 1), (0, 2)])
        # jittered latencies: delivery order follows the draws, not send order
        net = Network(g, latency=LatencyModel(median_ms=50, sigma=1.0, rng=7), rng=7)
        order = []
        net.set_default_handler(lambda n, node, msg: order.append(node))
        for _ in range(20):
            net.send(0, 1, MessageKind.SPREAD)
            net.send(0, 2, MessageKind.SPREAD)
        net.run()
        assert len(order) == 40
        assert order != [1, 2] * 20  # at least one inversion occurred

    def test_departed_receiver_drops_but_charges(self):
        g = OverlayGraph(nodes=[0, 1], edges=[(0, 1)])
        net = Network(g, rng=2)
        net.set_default_handler(lambda n, node, msg: None)
        net.send(0, 1, MessageKind.SPREAD)
        g.remove_node(1)
        net.run()
        assert net.dropped == 1
        assert net.meter.count(MessageKind.SPREAD) == 1  # still on the wire

    def test_no_handler_counts_as_drop(self):
        g = OverlayGraph(nodes=[0, 1], edges=[(0, 1)])
        net = Network(g, rng=3)
        net.send(0, 1, MessageKind.REPLY)
        net.run()
        assert net.dropped == 1

    def test_handlers_can_send(self):
        # a 3-hop relay: 0 -> 1 -> 2
        g = OverlayGraph(nodes=[0, 1, 2], edges=[(0, 1), (1, 2)])
        net = Network(g, rng=4)
        arrived = []

        def relay(n: Network, node: int, msg: Message):
            if node == 1:
                n.send(1, 2, MessageKind.SPREAD, payload=msg.payload)
            else:
                arrived.append(msg.payload)

        net.set_default_handler(relay)
        net.send(0, 1, MessageKind.SPREAD, payload=42)
        net.run()
        assert arrived == [42]

    def test_virtual_time_advances_by_latency(self):
        g = OverlayGraph(nodes=[0, 1], edges=[(0, 1)])
        net = Network(g, latency=LatencyModel(median_ms=100, sigma=0.0, rng=5))
        net.set_default_handler(lambda n, node, msg: None)
        net.send(0, 1, MessageKind.SPREAD)
        net.run()
        assert net.engine.now == pytest.approx(0.1)


class TestMessageLevelSpread:
    def test_agrees_with_round_level_kernel(self):
        """The validation the module exists for: message-level and
        round-level spreads must land in the same coverage band and the
        same message-count scaling."""
        g = heterogeneous_random(1_500, rng=10)
        # round-level
        view = g.csr()
        rl = _gossip_spread(view, 0, 2, 1, 1, np.random.default_rng(11))
        # message-level (constant latency => pure ordering differences)
        net = Network(g, rng=12)
        ml = MessageLevelSpread(net, gossip_to=2, rng=13)
        ml.run(int(view.nodes[0]))
        assert abs(ml.coverage() - rl.coverage()) < 0.08
        sent = net.meter.count(MessageKind.SPREAD)
        assert sent == pytest.approx(rl.spread_messages, rel=0.15)

    def test_min_hop_rule(self):
        g = heterogeneous_random(400, rng=14)
        net = Network(g, rng=15)
        spread = MessageLevelSpread(net, rng=16)
        init = g.random_node(0)
        spread.run(init)
        assert spread.hops[init] == 0
        # recorded hops never below BFS distance
        view = g.csr()
        bfs = view.bfs_distances(view.index_of[init])
        for node, hop in spread.hops.items():
            assert hop >= bfs[view.index_of[node]]

    def test_completion_time_positive_and_bounded(self):
        g = heterogeneous_random(500, rng=17)
        net = Network(g, latency=LatencyModel(median_ms=50, sigma=0.0, rng=18))
        spread = MessageLevelSpread(net, rng=19)
        spread.run(g.random_node(1))
        # lock-step lower bound: one latency per epidemic generation
        assert spread.finished_at >= 0.05 * 3
        assert spread.finished_at < 0.05 * 100

    def test_dead_initiator_rejected(self):
        g = heterogeneous_random(50, rng=20)
        net = Network(g, rng=21)
        with pytest.raises(ValueError):
            MessageLevelSpread(net, rng=22).run(10**9)

    def test_parameter_validation(self):
        g = OverlayGraph(nodes=[0])
        net = Network(g, rng=23)
        with pytest.raises(ValueError):
            MessageLevelSpread(net, gossip_to=0)

    def test_isolated_initiator(self):
        g = OverlayGraph(nodes=[0])
        net = Network(g, rng=24)
        spread = MessageLevelSpread(net, rng=25)
        spread.run(0)
        assert spread.reached == 1
        assert net.meter.total == 0
