"""Tests for the synchronous round driver."""

from __future__ import annotations

import pytest

from repro.sim.rounds import (
    PRIORITY_CHURN,
    PRIORITY_OBSERVER,
    PRIORITY_PROTOCOL,
    RoundDriver,
)


class TestBasicRounds:
    def test_runs_requested_rounds(self):
        driver = RoundDriver()
        seen = []
        driver.subscribe(seen.append)
        assert driver.run(5) == 5
        assert seen == [1, 2, 3, 4, 5]

    def test_round_numbers_continue_across_runs(self):
        driver = RoundDriver()
        seen = []
        driver.subscribe(seen.append)
        driver.run(2)
        driver.run(3)
        assert seen == [1, 2, 3, 4, 5]
        assert driver.current_round == 5

    def test_clock_equals_round_number(self):
        driver = RoundDriver()
        times = []
        driver.subscribe(lambda rnd: times.append(driver.engine.now))
        driver.run(3)
        assert times == [1.0, 2.0, 3.0]

    def test_zero_rounds(self):
        assert RoundDriver().run(0) == 0

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            RoundDriver().run(-1)


class TestHooks:
    def test_priority_order(self):
        driver = RoundDriver()
        order = []
        driver.subscribe(lambda r: order.append("obs"), priority=PRIORITY_OBSERVER)
        driver.subscribe(lambda r: order.append("proto"), priority=PRIORITY_PROTOCOL)
        driver.subscribe(lambda r: order.append("churn"), priority=PRIORITY_CHURN)
        driver.run(1)
        assert order == ["churn", "proto", "obs"]

    def test_equal_priority_keeps_subscription_order(self):
        driver = RoundDriver()
        order = []
        driver.subscribe(lambda r: order.append("a"))
        driver.subscribe(lambda r: order.append("b"))
        driver.run(1)
        assert order == ["a", "b"]

    def test_unsubscribe(self):
        driver = RoundDriver()
        hits = []
        hook = driver.subscribe(hits.append)
        driver.run(1)
        driver.unsubscribe(hook)
        driver.run(1)
        assert hits == [1]

    def test_unsubscribe_twice_is_noop(self):
        driver = RoundDriver()
        hook = driver.subscribe(lambda r: None)
        driver.unsubscribe(hook)
        driver.unsubscribe(hook)  # must not raise

    def test_stop_from_hook(self):
        driver = RoundDriver()
        seen = []

        def hook(rnd):
            seen.append(rnd)
            if rnd == 3:
                driver.stop()

        driver.subscribe(hook)
        executed = driver.run(10)
        assert executed == 3
        assert seen == [1, 2, 3]

    def test_multiple_hooks_all_called_each_round(self):
        driver = RoundDriver()
        a, b = [], []
        driver.subscribe(a.append)
        driver.subscribe(b.append)
        driver.run(4)
        assert a == b == [1, 2, 3, 4]
