"""Tests for churn-trace persistence."""

from __future__ import annotations

import json

import pytest

from repro.churn.io import FORMAT_VERSION, TraceFormatError, load_trace, save_trace
from repro.churn.models import (
    ChurnEvent,
    ChurnTrace,
    catastrophic_trace,
    growing_trace,
)


class TestRoundTrip:
    def test_simple_trace(self, tmp_path):
        trace = ChurnTrace([
            ChurnEvent(time=1.0, joins=10),
            ChurnEvent(time=2.5, leaves=3),
            ChurnEvent(time=9.0, frac_leaves=0.25),
            ChurnEvent(time=12.0, frac_joins=0.5),
        ])
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded) == 4
        for a, b in zip(trace, loaded):
            assert (a.time, a.joins, a.leaves, a.frac_joins, a.frac_leaves) == (
                b.time, b.joins, b.leaves, b.frac_joins, b.frac_leaves
            )

    def test_scenario_factories_roundtrip(self, tmp_path):
        for i, trace in enumerate(
            [catastrophic_trace(), growing_trace(1_000, 0.5, steps=7)]
        ):
            path = tmp_path / f"t{i}.jsonl"
            save_trace(trace, path)
            loaded = load_trace(path)
            assert loaded.net_change(1_000) == trace.net_change(1_000)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_trace(ChurnTrace(), path)
        assert len(load_trace(path)) == 0

    def test_loaded_trace_is_replayable(self, tmp_path):
        trace = growing_trace(500, 0.2, start=1, end=5, steps=5)
        path = tmp_path / "replay.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert [e.time for e in loaded.due(3.0)] == [1.0, 2.0, 3.0]


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "nope.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="empty"):
            load_trace(path)

    def test_garbage_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceFormatError, match="invalid header"):
            load_trace(path)

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": "something-else", "version": 1}) + "\n")
        with pytest.raises(TraceFormatError, match="not a repro churn trace"):
            load_trace(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"format": "repro-churn-trace", "version": FORMAT_VERSION + 1})
            + "\n"
        )
        with pytest.raises(TraceFormatError, match="unsupported version"):
            load_trace(path)

    def test_bad_event_line_number_reported(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(
                {"format": "repro-churn-trace", "version": FORMAT_VERSION, "events": 1}
            )
            + "\n{broken\n"
        )
        with pytest.raises(TraceFormatError, match=":2:"):
            load_trace(path)

    def test_event_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(
                {"format": "repro-churn-trace", "version": FORMAT_VERSION, "events": 5}
            )
            + "\n"
            + json.dumps({"time": 1.0, "joins": 1})
            + "\n"
        )
        with pytest.raises(TraceFormatError, match="declares 5"):
            load_trace(path)

    def test_invalid_event_semantics(self, tmp_path):
        # joins and frac_joins together violate ChurnEvent's contract
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(
                {"format": "repro-churn-trace", "version": FORMAT_VERSION}
            )
            + "\n"
            + json.dumps({"time": 1.0, "joins": 1, "frac_joins": 0.5})
            + "\n"
        )
        with pytest.raises(TraceFormatError, match="bad event"):
            load_trace(path)
