"""Tests for applying churn traces to live overlays."""

from __future__ import annotations


from repro.churn.models import ChurnEvent, ChurnTrace, shrinking_trace
from repro.churn.scheduler import ChurnScheduler
from repro.overlay.builders import heterogeneous_random
from repro.sim.rounds import RoundDriver


def _graph(n=300, seed=2):
    return heterogeneous_random(n, rng=seed)


class TestAdvanceTo:
    def test_applies_due_events_once(self):
        g = _graph()
        trace = ChurnTrace([ChurnEvent(time=5, leaves=10)])
        sched = ChurnScheduler(g, trace, rng=1)
        assert sched.advance_to(4.0) == (0, 0)
        assert sched.advance_to(5.0) == (0, 10)
        assert g.size == 290
        # replay must not double-apply
        assert sched.advance_to(6.0) == (0, 0)
        assert g.size == 290

    def test_fractions_resolve_at_fire_time(self):
        g = _graph(400)
        trace = ChurnTrace([
            ChurnEvent(time=1, frac_leaves=0.25),
            ChurnEvent(time=2, frac_leaves=0.25),
        ])
        sched = ChurnScheduler(g, trace, rng=1)
        sched.advance_to(1.0)
        assert g.size == 300
        sched.advance_to(2.0)
        assert g.size == 225  # 25% of the *remaining* 300

    def test_joins_wire_into_overlay(self):
        g = _graph()
        trace = ChurnTrace([ChurnEvent(time=1, joins=50)])
        sched = ChurnScheduler(g, trace, rng=1)
        sched.advance_to(1.0)
        assert g.size == 350
        g.check_invariants()

    def test_multiple_events_same_call(self):
        g = _graph()
        trace = ChurnTrace([
            ChurnEvent(time=1, joins=10),
            ChurnEvent(time=2, leaves=5),
        ])
        sched = ChurnScheduler(g, trace, rng=1)
        joins, leaves = sched.advance_to(10.0)
        assert (joins, leaves) == (10, 5)
        assert g.size == 305

    def test_log_records_sizes(self):
        g = _graph()
        trace = ChurnTrace([ChurnEvent(time=1, leaves=100)])
        sched = ChurnScheduler(g, trace, rng=1)
        sched.advance_to(1.0)
        assert sched.applied_events == 1
        entry = sched.log[0]
        assert entry.leaves == 100
        assert entry.size_after == 200

    def test_total_applied(self):
        g = _graph()
        trace = ChurnTrace([
            ChurnEvent(time=1, joins=4),
            ChurnEvent(time=2, joins=6, leaves=3),
        ])
        sched = ChurnScheduler(g, trace, rng=1)
        sched.advance_to(5.0)
        assert sched.total_applied() == (10, 3)


class TestRoundDriverIntegration:
    def test_attach_applies_per_round(self):
        g = _graph(200)
        trace = shrinking_trace(200, 0.5, start=1, end=10, steps=10)
        sched = ChurnScheduler(g, trace, rng=3)
        driver = RoundDriver()
        sched.attach(driver)
        sizes = []
        driver.subscribe(lambda rnd: sizes.append(g.size))
        driver.run(10)
        assert sizes[-1] == 100
        assert sizes == sorted(sizes, reverse=True)

    def test_churn_runs_before_protocol_hooks(self):
        g = _graph(100)
        trace = ChurnTrace([ChurnEvent(time=1, leaves=50)])
        sched = ChurnScheduler(g, trace, rng=3)
        driver = RoundDriver()
        sched.attach(driver)
        observed = []
        driver.subscribe(lambda rnd: observed.append(g.size))  # protocol prio
        driver.run(1)
        assert observed == [50]  # protocol saw the post-churn overlay

    def test_determinism(self):
        results = []
        for _ in range(2):
            g = _graph(300, seed=9)
            sched = ChurnScheduler(
                g, shrinking_trace(300, 0.4, start=1, end=5, steps=5), rng=11
            )
            sched.advance_to(5.0)
            results.append(sorted(g.nodes()))
        assert results[0] == results[1]
