"""Tests for churn traces and scenario factories."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.churn.models import (
    ChurnEvent,
    ChurnTrace,
    _spread_counts,
    catastrophic_trace,
    growing_trace,
    shrinking_trace,
    steady_churn_trace,
)


class TestChurnEvent:
    def test_absolute_resolution(self):
        ev = ChurnEvent(time=1.0, joins=10, leaves=5)
        assert ev.resolve(100) == (10, 5)

    def test_fractional_resolution(self):
        ev = ChurnEvent(time=1.0, frac_leaves=0.25)
        assert ev.resolve(100) == (0, 25)

    def test_fractional_joins(self):
        ev = ChurnEvent(time=1.0, frac_joins=0.5)
        assert ev.resolve(200) == (100, 0)

    def test_leaves_capped_at_population(self):
        ev = ChurnEvent(time=1.0, leaves=50)
        assert ev.resolve(30) == (0, 30)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ChurnEvent(time=0, joins=-1)

    def test_mixed_absolute_and_fraction_rejected(self):
        with pytest.raises(ValueError):
            ChurnEvent(time=0, joins=1, frac_joins=0.5)
        with pytest.raises(ValueError):
            ChurnEvent(time=0, leaves=1, frac_leaves=0.5)

    def test_fraction_out_of_range(self):
        with pytest.raises(ValueError):
            ChurnEvent(time=0, frac_leaves=1.5)


class TestChurnTrace:
    def test_sorted_by_time(self):
        t = ChurnTrace([ChurnEvent(time=5, joins=1), ChurnEvent(time=1, joins=2)])
        assert [e.time for e in t] == [1, 5]

    def test_due_pops_incrementally(self):
        t = ChurnTrace([ChurnEvent(time=i, joins=1) for i in (1, 2, 3)])
        assert len(t.due(1.5)) == 1
        assert len(t.due(3.0)) == 2
        assert len(t.due(99)) == 0
        assert t.remaining == 0

    def test_reset(self):
        t = ChurnTrace([ChurnEvent(time=1, joins=1)])
        t.due(5)
        t.reset()
        assert t.remaining == 1

    def test_horizon(self):
        t = ChurnTrace([ChurnEvent(time=4, joins=1), ChurnEvent(time=9, joins=1)])
        assert t.horizon == 9
        assert ChurnTrace().horizon == 0.0

    def test_net_change_sequential_fractions(self):
        # two -25% events: 100 -> 75 -> 56 (not 50)
        t = ChurnTrace([
            ChurnEvent(time=1, frac_leaves=0.25),
            ChurnEvent(time=2, frac_leaves=0.25),
        ])
        assert t.net_change(100) == 56


class TestSpreadCounts:
    def test_exact_sum(self):
        assert sum(_spread_counts(10, 3)) == 10

    def test_near_equal(self):
        counts = _spread_counts(10, 3)
        assert max(counts) - min(counts) <= 1

    @given(st.integers(0, 10_000), st.integers(1, 200))
    @settings(max_examples=200, deadline=None)
    def test_property_sum_and_balance(self, total, steps):
        counts = _spread_counts(total, steps)
        assert sum(counts) == total
        assert len(counts) == steps
        assert max(counts) - min(counts) <= 1


class TestScenarioFactories:
    def test_catastrophic_default_schedule(self):
        t = catastrophic_trace()
        times = [e.time for e in t]
        assert times == [100.0, 500.0, 700.0]
        # 100k: -25%, -25%, +25000 => 56250 + 25000
        assert t.net_change(100_000) == 81_250

    def test_catastrophic_without_rejoin(self):
        t = catastrophic_trace(rejoin_time=None)
        assert len(t) == 2
        assert t.net_change(100_000) == 56_250

    def test_growing_total(self):
        t = growing_trace(10_000, 0.5, start=1, end=100, steps=99)
        assert t.net_change(10_000) == 15_000

    def test_growing_times_in_range(self):
        t = growing_trace(1_000, 0.5, start=5, end=50, steps=10)
        assert all(5 <= e.time <= 50 for e in t)

    def test_shrinking_total(self):
        t = shrinking_trace(10_000, 0.5, start=1, end=100, steps=99)
        assert t.net_change(10_000) == 5_000

    def test_steady_is_size_neutral(self):
        t = steady_churn_trace(rate_per_step=7, steps=20)
        assert t.net_change(1_000) == 1_000
        assert len(t) == 20

    def test_single_step_traces(self):
        assert growing_trace(100, 0.5, steps=1).net_change(100) == 150
        assert shrinking_trace(100, 0.5, steps=1).net_change(100) == 50

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            growing_trace(0, 0.5)
        with pytest.raises(ValueError):
            growing_trace(10, -0.1)
        with pytest.raises(ValueError):
            shrinking_trace(10, 1.5)
        with pytest.raises(ValueError):
            shrinking_trace(10, 0.5, steps=0)
        with pytest.raises(ValueError):
            steady_churn_trace(-1)

    @given(
        st.integers(100, 50_000),
        st.floats(0.0, 1.0),
        st.integers(1, 150),
    )
    @settings(max_examples=150, deadline=None)
    def test_shrink_then_grow_bounds(self, n, frac, steps):
        shrink = shrinking_trace(n, frac, steps=steps)
        assert shrink.net_change(n) == n - int(round(n * frac))
        grow = growing_trace(n, frac, steps=steps)
        assert grow.net_change(n) == n + int(round(n * frac))
