"""Tests for the ASCII chart/table renderer."""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_chart import line_chart, render_figure, render_table
from repro.analysis.curves import Curve, FigureResult, TableResult


class TestLineChart:
    def test_empty(self):
        assert "no data" in line_chart([])

    def test_all_nan(self):
        c = Curve("c", [1.0], [float("nan")])
        assert "non-finite" in line_chart([c])

    def test_markers_and_legend(self):
        a = Curve("alpha", [0, 1], [0, 1])
        b = Curve("beta", [0, 1], [1, 0])
        out = line_chart([a, b])
        assert "alpha" in out and "beta" in out
        assert "*" in out and "o" in out

    def test_flat_curve_visible(self):
        c = Curve("flat", range(10), [5.0] * 10)
        out = line_chart([c])
        assert out.count("*") >= 1

    def test_dimensions_respected(self):
        c = Curve("c", range(100), np.sin(np.arange(100) / 5))
        out = line_chart([c], width=40, height=10)
        body_lines = [l for l in out.splitlines() if "|" in l]
        assert len(body_lines) == 10

    def test_axis_labels(self):
        c = Curve("c", [0, 10], [0, 100])
        out = line_chart([c], ylabel="Quality %", xlabel="Round")
        assert "Quality %" in out
        assert "Round" in out


class TestRenderFigure:
    def test_contains_metadata(self):
        fig = FigureResult("fig9", "Title here", "xl", "yl",
                           params={"n": 5}, notes="a note")
        fig.add("c", [1, 2], [3, 4])
        out = render_figure(fig)
        assert "fig9" in out and "Title here" in out
        assert "n=5" in out and "a note" in out


class TestRenderTable:
    def test_alignment_and_content(self):
        t = TableResult("t1", "The table", columns=["alg", "msgs"])
        t.add_row(alg="sc", msgs=480_000)
        t.add_row(alg="agg", msgs=10_000_000)
        out = render_table(t)
        assert "480,000" in out
        assert "10,000,000" in out
        assert "alg" in out and "msgs" in out

    def test_float_formatting(self):
        t = TableResult("t2", "floats", columns=["v"])
        t.add_row(v=3.14159)
        assert "3.142" in render_table(t)

    def test_empty_table(self):
        t = TableResult("t3", "empty", columns=["a"])
        out = render_table(t)
        assert "t3" in out

    def test_notes_rendered(self):
        t = TableResult("t4", "x", columns=["a"], notes="important")
        t.add_row(a=1)
        assert "important" in render_table(t)
