"""Tests for figure/table result containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.curves import Curve, FigureResult, TableResult


class TestCurve:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Curve("x", np.arange(3), np.arange(4))

    def test_len(self):
        assert len(Curve("c", [1, 2, 3], [4, 5, 6])) == 3

    def test_tail_mean(self):
        c = Curve("c", range(4), [0.0, 0.0, 10.0, 20.0])
        assert c.tail_mean(0.5) == pytest.approx(15.0)

    def test_tail_mean_ignores_nan(self):
        c = Curve("c", range(4), [0.0, 0.0, float("nan"), 20.0])
        assert c.tail_mean(0.5) == pytest.approx(20.0)

    def test_tail_mean_validation(self):
        c = Curve("c", [1], [1])
        with pytest.raises(ValueError):
            c.tail_mean(0.0)
        with pytest.raises(ValueError):
            c.tail_mean(1.5)

    def test_final(self):
        assert Curve("c", [1, 2], [5.0, 9.0]).final() == 9.0

    def test_final_empty(self):
        with pytest.raises(ValueError):
            Curve("c", [], []).final()


class TestFigureResult:
    def _fig(self):
        fig = FigureResult("figX", "title", "x", "y")
        fig.add("a", [1, 2], [10, 20])
        fig.add("b", [1, 2], [30, 40])
        return fig

    def test_add_and_lookup(self):
        fig = self._fig()
        assert fig.curve("a").y[1] == 20
        assert len(fig.curves) == 2

    def test_unknown_curve(self):
        with pytest.raises(KeyError):
            self._fig().curve("zzz")

    def test_csv_long_format(self):
        csv = self._fig().to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "figure,curve,x,y"
        assert len(lines) == 5
        assert lines[1].startswith("figX,a,1.0,")


class TestTableResult:
    def _table(self):
        t = TableResult("tabX", "title", columns=["name", "value"])
        t.add_row(name="a", value=1)
        t.add_row(name="b", value=2)
        return t

    def test_rows_and_column(self):
        t = self._table()
        assert t.column("value") == [1, 2]

    def test_missing_column_key(self):
        t = self._table()
        with pytest.raises(ValueError, match="missing"):
            t.add_row(name="c")
        with pytest.raises(ValueError, match="extra"):
            t.add_row(name="c", value=3, extra=4)

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            self._table().column("zzz")

    def test_csv(self):
        lines = self._table().to_csv().strip().splitlines()
        assert lines[0] == "name,value"
        assert lines[1] == "a,1"
