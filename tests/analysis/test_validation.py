"""Tests for the statistical validation helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.validation import (
    bias_test,
    bootstrap_mean_ci,
    detect_convergence,
    variance_ratio_test,
)


class TestBootstrapCI:
    def test_contains_true_mean_for_clean_data(self):
        rng = np.random.default_rng(1)
        data = rng.normal(100, 5, size=200)
        ci = bootstrap_mean_ci(data, rng=2)
        assert ci.lower < 100 < ci.upper
        assert ci.contains(float(data.mean()))

    def test_width_shrinks_with_sample_size(self):
        rng = np.random.default_rng(3)
        small = bootstrap_mean_ci(rng.normal(0, 1, 20), rng=4)
        big = bootstrap_mean_ci(rng.normal(0, 1, 2_000), rng=4)
        assert big.halfwidth < small.halfwidth

    def test_nan_dropped(self):
        ci = bootstrap_mean_ci([1.0, float("nan"), 3.0], rng=5)
        assert ci.mean == pytest.approx(2.0)

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([float("nan")], rng=5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([], rng=5)

    def test_bad_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1, 2, 3], confidence=1.5)

    def test_too_few_resamples(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1, 2, 3], resamples=10)

    def test_constant_data_degenerate_interval(self):
        ci = bootstrap_mean_ci([7.0] * 50, rng=6)
        assert ci.lower == ci.upper == ci.mean == 7.0

    @given(st.lists(st.floats(-1e3, 1e3), min_size=3, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_interval_brackets_sample_mean(self, values):
        ci = bootstrap_mean_ci(values, rng=7)
        assert ci.lower - 1e-9 <= ci.mean <= ci.upper + 1e-9


class TestBiasTest:
    def test_unbiased_data_not_flagged(self):
        rng = np.random.default_rng(8)
        verdict = bias_test(rng.normal(100, 10, 100))
        assert not verdict.biased_low and not verdict.biased_high

    def test_low_bias_detected(self):
        # HopsSampling-style: everything below target.
        verdict = bias_test([88, 92, 85, 90, 95, 89, 91, 87, 93, 86])
        assert verdict.biased_low
        assert not verdict.biased_high
        assert verdict.p_value < 0.01

    def test_high_bias_detected(self):
        verdict = bias_test([110, 105, 120, 108, 111, 115, 109, 112, 107, 113])
        assert verdict.biased_high

    def test_ties_dropped(self):
        verdict = bias_test([100.0, 100.0, 100.0])
        assert verdict.n_below == verdict.n_above == 0
        assert verdict.p_value == 1.0

    def test_small_sample_not_significant(self):
        verdict = bias_test([95, 96])  # 2 points below: p = 0.5
        assert not verdict.biased_low


class TestConvergenceDetection:
    def test_basic_ramp(self):
        series = [10, 40, 70, 99.5, 100.2, 99.8, 100.0]
        assert detect_convergence(series) == 3

    def test_never_converges(self):
        assert detect_convergence([10, 20, 30]) is None

    def test_transient_spike_not_counted(self):
        # dips out of band after touching it
        series = [99.9, 80.0, 99.8, 100.1, 100.0]
        assert detect_convergence(series) == 2

    def test_hold_requirement(self):
        series = [50, 100.0, 100.0]
        assert detect_convergence(series, hold=3) is None
        assert detect_convergence(series, hold=2) == 1

    def test_custom_band(self):
        series = [880, 950, 1010, 1005]
        assert detect_convergence(series, target=1000, tolerance=20, hold=2) == 2

    def test_invalid_hold(self):
        with pytest.raises(ValueError):
            detect_convergence([1.0], hold=0)

    def test_matches_fig5_measurement(self, small_het_graph):
        # End-to-end: measure aggregation's convergence round like Fig 5.
        from repro.core.aggregation import AggregationProtocol

        proto = AggregationProtocol(small_het_graph, rng=9)
        proto.start_epoch()
        qualities = []
        for _ in range(60):
            proto.run_round()
            qualities.append(proto.read().quality(small_het_graph.size))
        conv = detect_convergence(qualities)
        assert conv is not None
        assert 5 < conv < 45


class TestVarianceRatio:
    def test_clear_difference_significant(self):
        rng = np.random.default_rng(10)
        noisy = rng.normal(100, 20, 200)
        tight = rng.normal(100, 2, 200)
        ratio, significant = variance_ratio_test(noisy, tight, rng=11)
        assert ratio > 5
        assert significant

    def test_equal_variance_not_significant(self):
        rng = np.random.default_rng(12)
        a = rng.normal(0, 5, 150)
        b = rng.normal(0, 5, 150)
        _, significant = variance_ratio_test(a, b, rng=13)
        assert not significant

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            variance_ratio_test([1, 2], [1, 2, 3], rng=14)

    def test_paper_claim_hops_noisier_than_sc(self, het_graph):
        # The §IV-C "noisier curves" statement, now with significance.
        from repro.core.hops_sampling import HopsSamplingEstimator
        from repro.core.sample_collide import SampleCollideEstimator

        hops = [
            HopsSamplingEstimator(het_graph, rng=s).estimate().quality(het_graph.size)
            for s in range(15)
        ]
        sc = [
            SampleCollideEstimator(het_graph, l=200, rng=s)
            .estimate()
            .quality(het_graph.size)
            for s in range(15)
        ]
        ratio, significant = variance_ratio_test(hops, sc, rng=15)
        assert ratio > 1.0
