"""Structural equivalence of the array twin with the dict overlay.

The exact half of the backend cross-validation gate (``docs/KERNELS.md``):
:class:`~repro.overlay.arraygraph.ArrayOverlayGraph` must be a *lossless*
re-encoding of the dict graph's behavioural state — identical node order,
per-node neighbour order, ``next_id`` and therefore byte-identical
``snapshot()`` payloads — including after churn, repair and
snapshot-restore round-trips (the PR-5 determinism contract).  The
distributional half lives in ``tests/core/test_kernel_distributions.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.churn.models import shrinking_trace, steady_churn_trace
from repro.churn.scheduler import ChurnScheduler
from repro.overlay.arraygraph import ArrayOverlayGraph
from repro.overlay.builders import heterogeneous_random
from repro.overlay.graph import GraphError, OverlayGraph


def assert_twin_matches(graph: OverlayGraph) -> None:
    """The full exactness contract between a graph and its array twin."""
    twin = graph.to_array()
    twin.check_invariants()
    assert twin.snapshot() == graph.snapshot()
    assert twin.n == graph.size
    assert twin.next_id == graph.next_id
    assert twin.nodes.tolist() == list(graph)
    np.testing.assert_array_equal(twin.degrees(), graph.degrees())
    # Per-node neighbour order carries over exactly.
    for node in list(graph)[:50]:
        assert twin.neighbor_ids(node).tolist() == list(graph.neighbors(node))
    # And the round-trip graph is behaviourally indistinguishable.
    back = OverlayGraph.from_array(twin)
    assert back.snapshot() == graph.snapshot()
    assert list(back) == list(graph)
    assert back.next_id == graph.next_id


class TestStaticEquivalence:
    def test_tiny_graph(self, tiny_graph):
        assert_twin_matches(tiny_graph)

    def test_heterogeneous(self, small_het_graph):
        assert_twin_matches(small_het_graph)

    def test_empty_graph(self):
        g = OverlayGraph()
        twin = g.to_array()
        twin.check_invariants()
        assert twin.n == 0
        assert twin.snapshot() == g.snapshot()

    def test_isolated_nodes(self):
        g = OverlayGraph(nodes=range(4), edges=[(0, 1)])
        assert_twin_matches(g)

    def test_twin_cached_until_mutation(self, tiny_graph):
        a = tiny_graph.to_array()
        assert tiny_graph.to_array() is a
        tiny_graph.add_node()
        b = tiny_graph.to_array()
        assert b is not a
        assert_twin_matches(tiny_graph)

    def test_every_mutation_invalidates(self):
        g = OverlayGraph(nodes=range(4), edges=[(0, 1), (1, 2)])
        for mutate in (
            lambda: g.add_node(),
            lambda: g.add_edge(2, 3),
            lambda: g.try_add_edge(0, 3),
            lambda: g.remove_edge(0, 1),
            lambda: g.remove_node(3),
        ):
            before = g.to_array()
            mutate()
            assert g.to_array() is not before
            assert_twin_matches(g)

    def test_neighbor_ids_departed_node_raises(self, tiny_graph):
        twin = tiny_graph.to_array()
        with pytest.raises(GraphError):
            twin.neighbor_ids(999)

    def test_sparse_id_space_fallback(self):
        # Ids far above the dense-LUT threshold exercise the
        # argsort/searchsorted translation path.
        ids = [7, 10_000_003, 51, 92_000_017]
        g = OverlayGraph(nodes=ids, edges=[(7, 51), (51, 92_000_017)])
        assert_twin_matches(g)


class TestChurnEquivalence:
    def test_shrinking_churn_round_trip(self):
        g = heterogeneous_random(400, rng=3)
        sched = ChurnScheduler(g, shrinking_trace(400, 0.5, steps=10), rng=5)
        for t in range(1, 11):
            sched.advance_to(float(t))
            assert_twin_matches(g)

    def test_steady_churn_with_repair(self):
        from repro.overlay.repair import DegreeRepair

        g = heterogeneous_random(300, rng=9)
        sched = ChurnScheduler(g, steady_churn_trace(8, end=10.0, steps=10), rng=2)
        repair = DegreeRepair(g, rng=4)
        for t in range(1, 11):
            sched.advance_to(float(t))
            repair.repair_round(t)
            assert_twin_matches(g)

    def test_snapshot_restore_round_trip_under_churn(self):
        g = heterogeneous_random(300, rng=13)
        sched = ChurnScheduler(g, shrinking_trace(300, 0.4, steps=6), rng=17)
        sched.advance_to(3.0)
        snap = g.snapshot()
        restored = OverlayGraph.restore(snap)
        # Restored graph and original produce bit-identical twins.
        a, b = g.to_array(), restored.to_array()
        np.testing.assert_array_equal(a.nodes, b.nodes)
        np.testing.assert_array_equal(a.indptr, b.indptr)
        np.testing.assert_array_equal(a.indices, b.indices)
        assert a.next_id == b.next_id

    def test_array_restore_classmethod(self, small_het_graph):
        twin = ArrayOverlayGraph.restore(small_het_graph.snapshot())
        assert twin.snapshot() == small_het_graph.snapshot()


class TestCsrConsistency:
    """The twin agrees with the sorted CsrView on order-free facts."""

    def test_same_edge_set(self, small_het_graph):
        twin = small_het_graph.to_array()
        view = small_het_graph.csr()
        assert twin.m == view.m
        twin_edges = {
            tuple(sorted((int(twin.nodes[r]), int(twin.nodes[c]))))
            for r in range(twin.n)
            for c in twin.neighbors(r)
        }
        view_edges = {
            tuple(sorted((int(view.nodes[r]), int(view.nodes[c]))))
            for r in range(view.n)
            for c in view.neighbors(r)
        }
        assert twin_edges == view_edges

    def test_same_degree_multiset(self, small_het_graph):
        twin = small_het_graph.to_array()
        view = small_het_graph.csr()
        assert sorted(twin.degrees().tolist()) == sorted(view.degrees().tolist())
        assert twin.average_degree() == pytest.approx(2.0 * view.m / view.n)


class TestBulkAccessors:
    """`OverlayGraph.degrees()` / `neighbour_arrays()` (the micro-fix)."""

    def test_degrees_matches_per_node(self, tiny_graph):
        degs = tiny_graph.degrees()
        assert degs.tolist() == [tiny_graph.degree(u) for u in tiny_graph]

    def test_neighbour_arrays_flat_layout(self, tiny_graph):
        nodes, indptr, flat = tiny_graph.neighbour_arrays()
        assert nodes.tolist() == list(tiny_graph)
        assert indptr[0] == 0 and indptr[-1] == flat.size
        for k, u in enumerate(nodes.tolist()):
            assert flat[indptr[k] : indptr[k + 1]].tolist() == list(
                tiny_graph.neighbors(u)
            )

    def test_empty_graph_accessors(self):
        g = OverlayGraph()
        assert g.degrees().size == 0
        nodes, indptr, flat = g.neighbour_arrays()
        assert nodes.size == 0 and flat.size == 0
        assert indptr.tolist() == [0]


class TestIncrementalPatch:
    """Edge cases of the incremental twin rebuild (mutation-log patching).

    ``to_array`` patches the previous twin once one exists, so every test
    here builds a base twin first, applies a tricky mutation sequence and
    then holds the full exactness contract — plus bit-identity with a
    from-scratch encoding of the same graph.
    """

    @staticmethod
    def _assert_patched_equals_fresh(graph: OverlayGraph) -> None:
        patched = graph.to_array()
        fresh = ArrayOverlayGraph.from_overlay(graph)
        np.testing.assert_array_equal(patched.nodes, fresh.nodes)
        np.testing.assert_array_equal(patched.indptr, fresh.indptr)
        np.testing.assert_array_equal(patched.indices, fresh.indices)
        assert patched.next_id == fresh.next_id
        assert_twin_matches(graph)

    def test_remove_then_readd_same_id(self):
        g = OverlayGraph(nodes=[0, 1, 2], edges=[(0, 1), (1, 2), (0, 2)])
        g.to_array()
        g.remove_node(1)
        g.add_node(1)
        g.add_edge(1, 2)
        # Row 1 must move to the *end* of the insertion order.
        assert list(g) == [0, 2, 1]
        self._assert_patched_equals_fresh(g)

    def test_add_remove_add_cycle(self):
        g = OverlayGraph(nodes=[0, 1], edges=[(0, 1)])
        g.to_array()
        new = g.add_node()
        g.add_edge(new, 0)
        g.remove_node(new)
        g.add_node(new)  # re-add the appended-then-removed id
        self._assert_patched_equals_fresh(g)

    def test_removed_node_was_already_dirty(self):
        g = OverlayGraph(nodes=[0, 1, 2, 3], edges=[(0, 1), (2, 3)])
        g.to_array()
        g.add_edge(1, 2)  # dirties rows 1 and 2 ...
        g.remove_node(2)  # ... then 2 departs outright
        self._assert_patched_equals_fresh(g)

    def test_appended_then_removed_never_materializes(self):
        g = OverlayGraph(nodes=[0, 1], edges=[(0, 1)])
        g.to_array()
        doomed = g.add_node()
        g.remove_node(doomed)
        assert list(g) == [0, 1]
        self._assert_patched_equals_fresh(g)

    def test_repeated_patches_accumulate(self, small_het_graph):
        rng = np.random.default_rng(3)
        g = small_het_graph
        g.to_array()
        for _ in range(10):
            victims = rng.choice(np.asarray(list(g)), size=5, replace=False)
            for u in victims.tolist():
                g.remove_node(u)
            joined = [g.add_node() for _ in range(3)]
            alive = list(g)
            for u in joined:
                g.try_add_edge(u, int(rng.choice(alive[:-3])))
            self._assert_patched_equals_fresh(g)

    def test_wholesale_change_falls_back_to_full_encode(self):
        g = OverlayGraph(nodes=range(40))
        g.to_array()
        for u in range(30):  # > half the base rows: full rebuild path
            g.remove_node(u)
        self._assert_patched_equals_fresh(g)
