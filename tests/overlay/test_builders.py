"""Tests for the overlay constructors (paper §IV-A topologies)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.overlay.builders import (
    erdos_renyi,
    heterogeneous_random,
    homogeneous_random,
    ring_lattice,
    scale_free,
)
from repro.overlay.graph import GraphError
from repro.overlay.views import (
    connectivity_margin,
    degree_stats,
    is_connected,
    largest_component_fraction,
    powerlaw_exponent,
)


class TestHeterogeneousRandom:
    def test_size(self):
        assert heterogeneous_random(300, rng=1).size == 300

    def test_degree_cap_respected(self):
        g = heterogeneous_random(1_000, max_degree=10, rng=2)
        assert degree_stats(g).max_degree <= 10

    def test_paper_average_degree(self):
        # Paper: max 10 neighbours leads to an average of ≈7.2.
        g = heterogeneous_random(5_000, max_degree=10, rng=3)
        assert 6.5 <= degree_stats(g).mean_degree <= 7.9

    def test_degrees_heterogeneous(self):
        g = heterogeneous_random(2_000, max_degree=10, rng=4)
        stats = degree_stats(g)
        assert stats.min_degree < stats.max_degree  # genuinely mixed

    def test_mostly_connected(self):
        g = heterogeneous_random(2_000, max_degree=10, rng=5)
        assert largest_component_fraction(g) > 0.99

    def test_connectivity_margin_above_one(self):
        # §IV-A: average degree over log10(N) ensures connectivity.
        g = heterogeneous_random(2_000, max_degree=10, rng=6)
        assert connectivity_margin(g) > 1.0

    def test_deterministic_given_seed(self):
        a = heterogeneous_random(200, rng=9)
        b = heterogeneous_random(200, rng=9)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = heterogeneous_random(200, rng=9)
        b = heterogeneous_random(200, rng=10)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_single_node(self):
        g = heterogeneous_random(1, rng=0)
        assert g.size == 1 and g.num_edges == 0

    def test_max_degree_clamped_for_tiny_graphs(self):
        g = heterogeneous_random(3, max_degree=10, rng=0)
        assert degree_stats(g).max_degree <= 2

    def test_invalid_n(self):
        with pytest.raises(GraphError):
            heterogeneous_random(0)

    def test_invalid_degree_bounds(self):
        with pytest.raises(GraphError):
            heterogeneous_random(10, max_degree=2, min_degree=5)
        with pytest.raises(GraphError):
            heterogeneous_random(10, max_degree=2, min_degree=0)

    def test_invariants(self):
        heterogeneous_random(500, rng=1).check_invariants()


class TestHomogeneousRandom:
    def test_degrees_near_k(self):
        g = homogeneous_random(1_000, k=8, rng=1)
        stats = degree_stats(g)
        assert stats.max_degree <= 8
        degs = np.diff(g.csr().indptr)
        assert (degs == 8).mean() > 0.95  # near-regular

    def test_connected(self):
        g = homogeneous_random(1_000, k=8, rng=2)
        assert largest_component_fraction(g) > 0.99

    def test_k_clamped(self):
        g = homogeneous_random(4, k=100, rng=0)
        assert degree_stats(g).max_degree <= 3

    def test_invalid_k(self):
        with pytest.raises(GraphError):
            homogeneous_random(10, k=0)

    def test_deterministic(self):
        a = homogeneous_random(100, k=4, rng=5)
        b = homogeneous_random(100, k=4, rng=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_invariants(self):
        homogeneous_random(300, k=6, rng=1).check_invariants()


class TestScaleFree:
    def test_size_and_min_degree(self):
        g = scale_free(2_000, m=3, rng=1)
        assert g.size == 2_000
        assert degree_stats(g).min_degree >= 3  # every arrival brings m links

    def test_hub_emergence(self):
        # Paper Fig 7 at 100k: max degree ~1177 ≈ 1.2% of n; hubs must be
        # orders of magnitude above the mean.
        g = scale_free(3_000, m=3, rng=2)
        stats = degree_stats(g)
        assert stats.max_degree > 10 * stats.mean_degree

    def test_average_degree_about_2m(self):
        g = scale_free(3_000, m=3, rng=3)
        assert 5.0 <= degree_stats(g).mean_degree <= 7.0

    def test_powerlaw_exponent_near_3(self):
        g = scale_free(5_000, m=3, rng=4)
        gamma = powerlaw_exponent(g, d_min=3)
        assert 2.0 < gamma < 4.0  # BA theory: gamma -> 3

    def test_connected(self):
        # growth + attachment yields a single component by construction
        assert is_connected(scale_free(1_000, m=3, rng=5))

    def test_deterministic(self):
        a = scale_free(300, m=2, rng=6)
        b = scale_free(300, m=2, rng=6)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_tiny_graph(self):
        g = scale_free(2, m=3, rng=0)
        assert g.size == 2

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            scale_free(0)
        with pytest.raises(GraphError):
            scale_free(10, m=0)

    def test_invariants(self):
        scale_free(500, m=3, rng=1).check_invariants()


class TestErdosRenyi:
    def test_edge_count_matches_target(self):
        g = erdos_renyi(1_000, avg_degree=8.0, rng=1)
        assert g.num_edges == pytest.approx(4_000, rel=0.01)

    def test_zero_degree(self):
        g = erdos_renyi(100, avg_degree=0.0, rng=1)
        assert g.num_edges == 0

    def test_dense_request_clamped(self):
        g = erdos_renyi(10, avg_degree=100.0, rng=1)
        assert g.num_edges <= 45  # complete graph bound

    def test_invalid(self):
        with pytest.raises(GraphError):
            erdos_renyi(0)
        with pytest.raises(GraphError):
            erdos_renyi(10, avg_degree=-1)

    def test_invariants(self):
        erdos_renyi(300, avg_degree=6, rng=2).check_invariants()


class TestRingLattice:
    def test_exact_degrees(self):
        g = ring_lattice(20, k=2)
        assert all(g.degree(u) == 4 for u in g.nodes())

    def test_connected(self):
        assert is_connected(ring_lattice(50, k=1))

    def test_deterministic_structure(self):
        g = ring_lattice(6, k=1)
        assert sorted(g.edges()) == [(0, 1), (0, 5), (1, 2), (2, 3), (3, 4), (4, 5)]

    def test_small_ring_no_duplicate_edges(self):
        g = ring_lattice(3, k=2)  # k wraps all the way round
        g.check_invariants()
        assert g.num_edges == 3

    def test_invalid(self):
        with pytest.raises(GraphError):
            ring_lattice(0)
        with pytest.raises(GraphError):
            ring_lattice(5, k=0)
