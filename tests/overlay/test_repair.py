"""Tests for overlay repair policies."""

from __future__ import annotations

import pytest

from repro.churn.models import shrinking_trace
from repro.churn.scheduler import ChurnScheduler
from repro.overlay.builders import heterogeneous_random
from repro.overlay.graph import OverlayGraph
from repro.overlay.membership import MembershipPolicy
from repro.overlay.repair import DegreeRepair, FullRepair, NoRepair
from repro.overlay.views import largest_component_fraction
from repro.sim.messages import MessageKind, MessageMeter
from repro.sim.rounds import RoundDriver


class TestNoRepair:
    def test_does_nothing(self):
        g = heterogeneous_random(200, rng=1)
        m_before = g.num_edges
        policy = NoRepair(g, rng=2)
        assert policy.repair_round(1) == 0
        assert g.num_edges == m_before
        assert policy.meter.total == 0


class TestDegreeRepair:
    def test_relinks_underconnected_nodes(self):
        # Star minus hub: all leaves isolated; repair reconnects them.
        g = OverlayGraph(nodes=range(30), edges=[(0, i) for i in range(1, 30)])
        g.remove_node(0)
        policy = DegreeRepair(g, min_degree=2, target_degree=3, rng=3)
        for rnd in range(10):
            policy.repair_round(rnd)
        assert min(g.degree(u) for u in g.nodes()) >= 2
        g.check_invariants()

    def test_budget_respected(self):
        g = OverlayGraph(nodes=range(100))  # all isolated
        policy = DegreeRepair(
            g, min_degree=2, target_degree=2, max_links_per_round=5, rng=4
        )
        formed = policy.repair_round(1)
        assert formed <= 5
        assert policy.links_formed == formed

    def test_healthy_overlay_untouched(self):
        g = heterogeneous_random(300, rng=5)
        m_before = g.num_edges
        # min degree of the heterogeneous builder is 1; require only 1
        policy = DegreeRepair(g, min_degree=1, target_degree=1, rng=6)
        policy.repair_round(1)
        assert g.num_edges == m_before

    def test_meters_control_messages(self):
        g = OverlayGraph(nodes=range(20))
        meter = MessageMeter()
        policy = DegreeRepair(g, min_degree=1, target_degree=2, rng=7, meter=meter)
        formed = policy.repair_round(1)
        assert meter.count(MessageKind.CONTROL) == formed > 0

    def test_validation(self):
        g = OverlayGraph(nodes=[0])
        with pytest.raises(ValueError):
            DegreeRepair(g, min_degree=0)
        with pytest.raises(ValueError):
            DegreeRepair(g, min_degree=5, target_degree=3)
        with pytest.raises(ValueError):
            DegreeRepair(g, max_links_per_round=0)

    def test_tiny_graphs_no_crash(self):
        for n in (0, 1, 2):
            g = OverlayGraph(nodes=range(n))
            DegreeRepair(g, min_degree=1, target_degree=1, rng=8).repair_round(1)


class TestFullRepair:
    def test_restores_target_degree(self):
        g = heterogeneous_random(300, rng=9)
        MembershipPolicy(g, rng=10).leave(150)
        policy = FullRepair(g, target_degree=6, rng=11)
        policy.repair_round(1)
        assert min(g.degree(u) for u in g.nodes()) >= 6
        g.check_invariants()

    def test_validation(self):
        with pytest.raises(ValueError):
            FullRepair(OverlayGraph(nodes=[0]), target_degree=0)


class TestRepairUnderChurn:
    def test_repair_preserves_connectivity_under_heavy_shrinkage(self):
        # The paper's fig17 setting: -50% with no repair fragments the
        # overlay; degree repair must keep the survivors connected.
        def final_connectivity(with_repair: bool) -> float:
            g = heterogeneous_random(1_000, rng=12)
            driver = RoundDriver()
            trace = shrinking_trace(1_000, 0.6, start=1, end=80, steps=40)
            ChurnScheduler(g, trace, rng=13).attach(driver)
            if with_repair:
                DegreeRepair(
                    g, min_degree=3, target_degree=5,
                    max_links_per_round=100, rng=14,
                ).attach(driver)
            driver.run(100)
            return largest_component_fraction(g)

        assert final_connectivity(True) >= final_connectivity(False)
        assert final_connectivity(True) > 0.99

    def test_repair_experiment_table(self, tiny_scale):
        from repro.experiments.repair_exp import repair_comparison

        table = repair_comparison(scale=tiny_scale)
        assert len(table.rows) == 3
        by = {r["policy"]: r for r in table.rows}
        assert by["none (paper)"]["repair_messages"] == 0
        assert by["full repair (ideal)"]["repair_messages"] > 0
        # repair reduces the late-run error relative to the paper baseline
        assert (
            by["full repair (ideal)"]["late_rel_error_pct"]
            <= by["none (paper)"]["late_rel_error_pct"] + 1.0
        )
