"""Property-based tests: the array twin under arbitrary operation sequences.

Hypothesis drives random graph constructions and churn-like mutation
sequences, then asserts the CSR ↔ dict round-trip is the identity on the
full behavioural state: node order, per-node neighbour order, degree
arrays, ``next_id`` and the content hash of the ``snapshot()`` payload.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.arraygraph import ArrayOverlayGraph
from repro.overlay.graph import OverlayGraph

# Same op-universe as test_graph_properties: a small node-id pool keeps
# collisions (dup edges, missing nodes) frequent.
_ops = st.lists(
    st.tuples(
        st.sampled_from(["add_node", "remove_node", "add_edge", "remove_edge", "join"]),
        st.integers(0, 14),
        st.integers(0, 14),
    ),
    max_size=60,
)


def _apply(g: OverlayGraph, ops) -> None:
    for kind, a, b in ops:
        if kind == "add_node":
            if a not in g:
                g.add_node(a)
        elif kind == "remove_node":
            if a in g:
                g.remove_node(a)
        elif kind == "add_edge":
            if a in g and b in g:
                g.try_add_edge(a, b)
        elif kind == "remove_edge":
            if g.has_edge(a, b):
                g.remove_edge(a, b)
        elif kind == "join":
            # Counter-allocated id, like a churn join.
            g.add_node()


def _snapshot_hash(g_or_twin) -> str:
    payload = json.dumps(g_or_twin.snapshot(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


@given(_ops)
@settings(max_examples=120, deadline=None)
def test_round_trip_is_identity(ops):
    g = OverlayGraph()
    _apply(g, ops)
    twin = ArrayOverlayGraph.from_overlay(g)
    twin.check_invariants()
    back = twin.to_overlay()
    assert list(back) == list(g)
    assert back.next_id == g.next_id
    for u in g:
        assert list(back.neighbors(u)) == list(g.neighbors(u))
    np.testing.assert_array_equal(back.degrees(), g.degrees())


@given(_ops)
@settings(max_examples=120, deadline=None)
def test_snapshot_hashes_match(ops):
    g = OverlayGraph()
    _apply(g, ops)
    twin = g.to_array()
    assert _snapshot_hash(twin) == _snapshot_hash(g)
    # Re-encoding the decoded graph is a fixed point.
    assert _snapshot_hash(twin.to_overlay().to_array()) == _snapshot_hash(g)


@given(_ops)
@settings(max_examples=120, deadline=None)
def test_degree_arrays_consistent(ops):
    g = OverlayGraph()
    _apply(g, ops)
    twin = g.to_array()
    np.testing.assert_array_equal(twin.degrees(), g.degrees())
    nodes, indptr, flat = g.neighbour_arrays()
    np.testing.assert_array_equal(np.diff(indptr), g.degrees())
    np.testing.assert_array_equal(nodes, twin.nodes)
    # Twin indices decode to the same raw ids neighbour_arrays lists.
    if flat.size:
        np.testing.assert_array_equal(twin.nodes[twin.indices], flat)


@given(_ops, st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_twin_cache_matches_fresh_encoding(ops, seed):
    g = OverlayGraph()
    _apply(g, ops)
    cached = g.to_array()
    fresh = ArrayOverlayGraph.from_overlay(g)
    np.testing.assert_array_equal(cached.nodes, fresh.nodes)
    np.testing.assert_array_equal(cached.indptr, fresh.indptr)
    np.testing.assert_array_equal(cached.indices, fresh.indices)
    assert cached.next_id == fresh.next_id
    # And sampling from either view draws from the same law-bearing state.
    if g.size:
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        pos = np.arange(cached.n, dtype=np.int64)
        np.testing.assert_array_equal(
            cached.sample_neighbors(pos, rng_a), fresh.sample_neighbors(pos, rng_b)
        )
