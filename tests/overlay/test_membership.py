"""Tests for membership dynamics (joins wire in, leaves sever without repair)."""

from __future__ import annotations

import pytest

from repro.overlay.builders import heterogeneous_random
from repro.overlay.graph import GraphError, OverlayGraph
from repro.overlay.membership import MembershipPolicy


@pytest.fixture
def policy_graph():
    g = heterogeneous_random(400, rng=3)
    return g, MembershipPolicy(g, rng=4)


class TestJoin:
    def test_join_grows_size(self, policy_graph):
        g, policy = policy_graph
        report = policy.join(25)
        assert g.size == 425
        assert len(report.node_ids) == 25

    def test_joiners_are_wired(self, policy_graph):
        g, policy = policy_graph
        report = policy.join(30)
        wired = sum(1 for u in report.node_ids if g.degree(u) >= 1)
        assert wired == 30  # a 400-node overlay always has capacity

    def test_join_respects_max_degree(self, policy_graph):
        g, policy = policy_graph
        policy.join(100)
        assert max(g.degree(u) for u in g.nodes()) <= 10

    def test_join_degree_in_policy_range(self, policy_graph):
        g, policy = policy_graph
        report = policy.join(50)
        for u in report.node_ids:
            assert g.degree(u) <= 10

    def test_join_empty_overlay(self):
        g = OverlayGraph()
        policy = MembershipPolicy(g, rng=1)
        report = policy.join(3)
        assert g.size == 3
        # First joiner had nobody to link to; later ones could link to
        # earlier joiners.
        assert g.degree(report.node_ids[0]) <= 2

    def test_join_zero(self, policy_graph):
        g, policy = policy_graph
        before = g.size
        assert policy.join(0).node_ids == []
        assert g.size == before

    def test_join_negative_rejected(self, policy_graph):
        _, policy = policy_graph
        with pytest.raises(GraphError):
            policy.join(-1)

    def test_invariants_after_mass_join(self, policy_graph):
        g, policy = policy_graph
        policy.join(200)
        g.check_invariants()

    def test_join_links_counted(self, policy_graph):
        g, policy = policy_graph
        m_before = g.num_edges
        report = policy.join(20)
        assert g.num_edges - m_before == report.links_created


class TestLeave:
    def test_leave_shrinks_size(self, policy_graph):
        g, policy = policy_graph
        removed = policy.leave(50)
        assert g.size == 350
        assert len(removed) == 50
        assert all(u not in g for u in removed)

    def test_leave_no_repair(self):
        # A star graph: removing the hub must leave all leaves isolated.
        g = OverlayGraph(nodes=range(5), edges=[(0, i) for i in range(1, 5)])
        MembershipPolicy(g, rng=1).remove_specific([0])
        assert all(g.degree(u) == 0 for u in g.nodes())

    def test_leave_all(self, policy_graph):
        g, policy = policy_graph
        policy.leave(g.size)
        assert g.size == 0

    def test_leave_too_many_rejected(self, policy_graph):
        g, policy = policy_graph
        with pytest.raises(GraphError):
            policy.leave(g.size + 1)

    def test_leave_negative_rejected(self, policy_graph):
        _, policy = policy_graph
        with pytest.raises(GraphError):
            policy.leave(-2)

    def test_invariants_after_mass_leave(self, policy_graph):
        g, policy = policy_graph
        policy.leave(300)
        g.check_invariants()

    def test_remove_specific(self, policy_graph):
        g, policy = policy_graph
        targets = g.nodes()[:5]
        policy.remove_specific(targets)
        assert all(t not in g for t in targets)


class TestPolicyValidation:
    def test_bad_degree_bounds(self):
        g = OverlayGraph()
        with pytest.raises(GraphError):
            MembershipPolicy(g, max_degree=2, min_degree=5)
        with pytest.raises(GraphError):
            MembershipPolicy(g, max_degree=5, min_degree=0)

    def test_determinism(self):
        g1 = heterogeneous_random(200, rng=5)
        g2 = heterogeneous_random(200, rng=5)
        r1 = MembershipPolicy(g1, rng=6).leave(20)
        r2 = MembershipPolicy(g2, rng=6).leave(20)
        assert r1 == r2
