"""Unit tests for the dynamic overlay graph and its CSR snapshots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.overlay.graph import GraphError, OverlayGraph


class TestConstruction:
    def test_empty_graph(self):
        g = OverlayGraph()
        assert g.size == 0
        assert g.num_edges == 0
        assert len(g) == 0
        assert list(g.nodes()) == []

    def test_init_with_nodes_and_edges(self):
        g = OverlayGraph(nodes=[0, 1, 2], edges=[(0, 1), (1, 2)])
        assert g.size == 3
        assert g.num_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_add_node_auto_id(self):
        g = OverlayGraph()
        assert g.add_node() == 0
        assert g.add_node() == 1

    def test_add_node_explicit_id_advances_counter(self):
        g = OverlayGraph()
        g.add_node(10)
        assert g.add_node() == 11

    def test_add_nodes_batch(self):
        g = OverlayGraph()
        ids = g.add_nodes(5)
        assert ids == [0, 1, 2, 3, 4]
        assert g.size == 5

    def test_add_nodes_negative_count_rejected(self):
        with pytest.raises(GraphError):
            OverlayGraph().add_nodes(-1)

    def test_duplicate_node_rejected(self):
        g = OverlayGraph(nodes=[3])
        with pytest.raises(GraphError, match="already present"):
            g.add_node(3)

    def test_negative_node_id_rejected(self):
        with pytest.raises(GraphError):
            OverlayGraph().add_node(-5)


class TestEdges:
    def test_add_edge_is_bidirectional(self):
        g = OverlayGraph(nodes=[0, 1])
        g.add_edge(0, 1)
        assert 1 in g.neighbors(0)
        assert 0 in g.neighbors(1)

    def test_self_loop_rejected(self):
        g = OverlayGraph(nodes=[0])
        with pytest.raises(GraphError, match="elf-loop"):
            g.add_edge(0, 0)

    def test_edge_to_missing_node_rejected(self):
        g = OverlayGraph(nodes=[0])
        with pytest.raises(GraphError):
            g.add_edge(0, 99)

    def test_duplicate_edge_rejected(self):
        g = OverlayGraph(nodes=[0, 1], edges=[(0, 1)])
        with pytest.raises(GraphError, match="already present"):
            g.add_edge(1, 0)

    def test_try_add_edge_returns_false_not_raises(self):
        g = OverlayGraph(nodes=[0, 1], edges=[(0, 1)])
        assert g.try_add_edge(0, 1) is False
        assert g.try_add_edge(0, 0) is False
        assert g.try_add_edge(0, 42) is False
        assert g.num_edges == 1

    def test_try_add_edge_success(self):
        g = OverlayGraph(nodes=[0, 1])
        assert g.try_add_edge(0, 1) is True
        assert g.num_edges == 1

    def test_remove_edge(self):
        g = OverlayGraph(nodes=[0, 1], edges=[(0, 1)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 0

    def test_remove_missing_edge_rejected(self):
        g = OverlayGraph(nodes=[0, 1])
        with pytest.raises(GraphError):
            g.remove_edge(0, 1)

    def test_edges_iterates_each_once(self, tiny_graph):
        edges = sorted(tiny_graph.edges())
        assert edges == [(0, 1), (1, 2), (1, 4), (2, 3)]

    def test_average_degree(self, tiny_graph):
        # 5 nodes, 4 edges -> mean degree 8/5.
        assert tiny_graph.average_degree() == pytest.approx(1.6)

    def test_average_degree_empty(self):
        assert OverlayGraph().average_degree() == 0.0


class TestRemoval:
    def test_remove_node_severs_links_without_repair(self, tiny_graph):
        tiny_graph.remove_node(1)  # hub of the path
        assert 1 not in tiny_graph
        # neighbours lost the link and gained nothing back
        assert tiny_graph.degree(0) == 0
        assert tiny_graph.degree(4) == 0
        assert tiny_graph.degree(2) == 1  # still linked to 3
        tiny_graph.check_invariants()

    def test_remove_missing_node_rejected(self):
        with pytest.raises(GraphError):
            OverlayGraph().remove_node(0)

    def test_removed_ids_not_reused(self):
        g = OverlayGraph()
        a = g.add_node()
        g.remove_node(a)
        b = g.add_node()
        assert b != a

    def test_edge_count_tracks_removals(self, tiny_graph):
        before = tiny_graph.num_edges
        tiny_graph.remove_node(1)  # degree 3
        assert tiny_graph.num_edges == before - 3


class TestAccessors:
    def test_neighbors_of_missing_node(self):
        with pytest.raises(GraphError):
            OverlayGraph().neighbors(7)

    def test_contains_and_iter(self, tiny_graph):
        assert 0 in tiny_graph
        assert 99 not in tiny_graph
        assert sorted(tiny_graph) == [0, 1, 2, 3, 4]

    def test_random_node_is_alive(self, tiny_graph):
        for seed in range(10):
            assert tiny_graph.random_node(seed) in tiny_graph

    def test_random_node_empty_rejected(self):
        with pytest.raises(GraphError):
            OverlayGraph().random_node(0)

    def test_random_neighbor(self, tiny_graph):
        for seed in range(10):
            v = tiny_graph.random_neighbor(1, seed)
            assert v in tiny_graph.neighbors(1)

    def test_random_neighbor_isolated_returns_none(self):
        g = OverlayGraph(nodes=[0])
        assert g.random_neighbor(0, 1) is None

    def test_copy_is_independent(self, tiny_graph):
        clone = tiny_graph.copy()
        clone.remove_node(1)
        assert 1 in tiny_graph
        assert tiny_graph.num_edges == 4
        clone.check_invariants()
        tiny_graph.check_invariants()


class TestCsrView:
    def test_shapes_and_counts(self, tiny_graph):
        view = tiny_graph.csr()
        assert view.n == 5
        assert view.m == 4
        assert view.indptr.shape == (6,)
        assert view.indices.shape == (8,)

    def test_nodes_sorted(self, tiny_graph):
        view = tiny_graph.csr()
        assert list(view.nodes) == sorted(view.nodes)

    def test_index_of_roundtrip(self, tiny_graph):
        view = tiny_graph.csr()
        for node, pos in view.index_of.items():
            assert int(view.nodes[pos]) == node

    def test_degrees_match_graph(self, tiny_graph):
        view = tiny_graph.csr()
        for node, pos in view.index_of.items():
            assert view.degrees()[pos] == tiny_graph.degree(node)

    def test_neighbors_match_graph(self, tiny_graph):
        view = tiny_graph.csr()
        for node, pos in view.index_of.items():
            got = {int(view.nodes[q]) for q in view.neighbors(pos)}
            assert got == tiny_graph.neighbors(node)

    def test_snapshot_cached_until_mutation(self, tiny_graph):
        v1 = tiny_graph.csr()
        assert tiny_graph.csr() is v1
        tiny_graph.add_node()
        assert tiny_graph.csr() is not v1

    def test_stale_after_edge_ops(self):
        g = OverlayGraph(nodes=[0, 1])
        v1 = g.csr()
        g.add_edge(0, 1)
        v2 = g.csr()
        assert v2 is not v1
        assert v2.m == 1
        g.remove_edge(0, 1)
        assert g.csr().m == 0

    def test_empty_graph_view(self):
        view = OverlayGraph().csr()
        assert view.n == 0
        assert view.m == 0

    def test_sample_neighbors_lands_on_neighbors(self, het_graph):
        view = het_graph.csr()
        rng = np.random.default_rng(0)
        positions = rng.integers(view.n, size=200)
        chosen = view.sample_neighbors(positions, rng)
        for p, c in zip(positions, chosen):
            if c >= 0:
                assert c in set(view.neighbors(int(p)))

    def test_sample_neighbors_isolated_gives_minus_one(self):
        g = OverlayGraph(nodes=[0, 1], edges=[])
        view = g.csr()
        rng = np.random.default_rng(0)
        out = view.sample_neighbors(np.array([0, 1]), rng)
        assert list(out) == [-1, -1]

    def test_sample_neighbors_empty_input(self, tiny_graph):
        view = tiny_graph.csr()
        out = view.sample_neighbors(np.empty(0, dtype=np.int64), np.random.default_rng(0))
        assert out.shape == (0,)


class TestBfsAndComponents:
    def test_bfs_distances_on_path(self, tiny_graph):
        view = tiny_graph.csr()
        dist = view.bfs_distances(view.index_of[0])
        by_node = {int(view.nodes[i]): int(d) for i, d in enumerate(dist)}
        assert by_node == {0: 0, 1: 1, 2: 2, 3: 3, 4: 2}

    def test_bfs_unreachable_is_minus_one(self):
        g = OverlayGraph(nodes=[0, 1, 2], edges=[(0, 1)])
        view = g.csr()
        dist = view.bfs_distances(view.index_of[0])
        assert dist[view.index_of[2]] == -1

    def test_bfs_empty_graph(self):
        view = OverlayGraph().csr()
        assert view.bfs_distances(0).shape == (0,)

    def test_component_sizes(self):
        g = OverlayGraph(nodes=range(6), edges=[(0, 1), (1, 2), (3, 4)])
        sizes = g.csr().connected_component_sizes()
        assert sizes == [3, 2, 1]

    def test_component_sizes_connected(self, het_graph):
        sizes = het_graph.csr().connected_component_sizes()
        assert sum(sizes) == het_graph.size


class TestInvariants:
    def test_check_invariants_clean(self, het_graph):
        het_graph.check_invariants()

    def test_detects_asymmetry(self):
        g = OverlayGraph(nodes=[0, 1], edges=[(0, 1)])
        g._adj[0].pop(1)  # corrupt deliberately
        with pytest.raises(GraphError):
            g.check_invariants()

    def test_detects_edge_count_drift(self):
        g = OverlayGraph(nodes=[0, 1], edges=[(0, 1)])
        g._edge_count = 5  # corrupt deliberately
        with pytest.raises(GraphError, match="drift"):
            g.check_invariants()

    def test_detects_self_loop(self):
        g = OverlayGraph(nodes=[0])
        g._adj[0][0] = None  # corrupt deliberately
        with pytest.raises(GraphError):
            g.check_invariants()
