"""Property-based tests: the overlay graph under arbitrary operation
sequences, and CSR/adjacency coherence.

These are the core structural invariants everything else relies on:
bidirectional symmetry, exact edge accounting, and snapshot fidelity.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.graph import OverlayGraph

# An operation is (kind, a, b) with node slots drawn from a small universe
# so that collisions (removing a missing node, duplicating an edge) are
# frequent and the error paths get exercised.
_ops = st.lists(
    st.tuples(
        st.sampled_from(["add_node", "remove_node", "add_edge", "remove_edge"]),
        st.integers(0, 14),
        st.integers(0, 14),
    ),
    max_size=60,
)


def _apply(g: OverlayGraph, ops) -> None:
    for kind, a, b in ops:
        if kind == "add_node":
            if a not in g:
                g.add_node(a)
        elif kind == "remove_node":
            if a in g:
                g.remove_node(a)
        elif kind == "add_edge":
            if a in g and b in g:
                g.try_add_edge(a, b)
        elif kind == "remove_edge":
            if g.has_edge(a, b):
                g.remove_edge(a, b)


@given(_ops)
@settings(max_examples=200, deadline=None)
def test_invariants_hold_under_any_op_sequence(ops):
    g = OverlayGraph()
    _apply(g, ops)
    g.check_invariants()


@given(_ops)
@settings(max_examples=150, deadline=None)
def test_csr_matches_adjacency_after_any_op_sequence(ops):
    g = OverlayGraph()
    _apply(g, ops)
    view = g.csr()
    assert view.n == g.size
    assert view.m == g.num_edges
    # Every adjacency entry appears in the CSR and vice versa.
    for node in g.nodes():
        pos = view.index_of[node]
        from_view = {int(view.nodes[q]) for q in view.neighbors(pos)}
        assert from_view == g.neighbors(node)


@given(_ops, st.integers(0, 2**31 - 1))
@settings(max_examples=100, deadline=None)
def test_sample_neighbors_always_valid(ops, seed):
    g = OverlayGraph()
    _apply(g, ops)
    view = g.csr()
    if view.n == 0:
        return
    rng = np.random.default_rng(seed)
    positions = rng.integers(view.n, size=min(view.n, 16))
    out = view.sample_neighbors(positions, rng)
    degs = view.degrees()
    for p, c in zip(positions, out):
        if degs[p] == 0:
            assert c == -1
        else:
            assert c in set(int(x) for x in view.neighbors(int(p)))


@given(_ops)
@settings(max_examples=100, deadline=None)
def test_edge_iteration_consistent_with_count(ops):
    g = OverlayGraph()
    _apply(g, ops)
    listed = list(g.edges())
    assert len(listed) == g.num_edges
    assert len(set(listed)) == len(listed)  # no duplicates
    for u, v in listed:
        assert u < v
        assert g.has_edge(u, v)


@given(_ops)
@settings(max_examples=100, deadline=None)
def test_copy_equivalence(ops):
    g = OverlayGraph()
    _apply(g, ops)
    clone = g.copy()
    assert clone.size == g.size
    assert clone.num_edges == g.num_edges
    assert sorted(clone.edges()) == sorted(g.edges())


@given(_ops)
@settings(max_examples=100, deadline=None)
def test_bfs_distances_are_metric_like(ops):
    """BFS distances: 0 at source, and adjacent nodes differ by at most 1."""
    g = OverlayGraph()
    _apply(g, ops)
    view = g.csr()
    if view.n == 0:
        return
    dist = view.bfs_distances(0)
    assert dist[0] == 0
    for pos in range(view.n):
        for q in view.neighbors(pos):
            q = int(q)
            if dist[pos] >= 0 and dist[q] >= 0:
                assert abs(dist[pos] - dist[q]) <= 1
            # a reachable node's neighbour is always reachable
            if dist[pos] >= 0:
                assert dist[q] >= 0
