"""Tests for graph analyses (degree stats, connectivity, power-law fit)."""

from __future__ import annotations

import pytest

from repro.overlay.builders import ring_lattice, scale_free
from repro.overlay.graph import OverlayGraph
from repro.overlay.views import (
    connectivity_margin,
    degree_histogram,
    degree_stats,
    is_connected,
    largest_component_fraction,
    powerlaw_exponent,
)


class TestDegreeStats:
    def test_empty(self):
        s = degree_stats(OverlayGraph())
        assert s.n == 0 and s.m == 0 and s.mean_degree == 0.0

    def test_tiny_graph(self, tiny_graph):
        s = degree_stats(tiny_graph)
        assert s.n == 5
        assert s.m == 4
        assert s.min_degree == 1
        assert s.max_degree == 3
        assert s.mean_degree == pytest.approx(1.6)
        assert s.isolated == 0

    def test_isolated_counted(self):
        g = OverlayGraph(nodes=[0, 1, 2], edges=[(0, 1)])
        assert degree_stats(g).isolated == 1

    def test_as_dict_keys(self, tiny_graph):
        d = degree_stats(tiny_graph).as_dict()
        assert set(d) == {
            "n", "m", "min_degree", "max_degree",
            "mean_degree", "median_degree", "isolated",
        }


class TestDegreeHistogram:
    def test_counts_sum_to_n(self, het_graph):
        hist = degree_histogram(het_graph)
        assert sum(c for _, c in hist) == het_graph.size

    def test_sorted_ascending(self, het_graph):
        degs = [d for d, _ in degree_histogram(het_graph)]
        assert degs == sorted(degs)

    def test_empty(self):
        assert degree_histogram(OverlayGraph()) == []

    def test_regular_graph_single_bin(self):
        hist = degree_histogram(ring_lattice(10, k=2))
        assert hist == [(4, 10)]


class TestConnectivity:
    def test_connected_graph(self, het_graph):
        assert largest_component_fraction(het_graph) > 0.99

    def test_disconnected(self):
        g = OverlayGraph(nodes=range(4), edges=[(0, 1)])
        assert not is_connected(g)
        assert largest_component_fraction(g) == pytest.approx(0.5)

    def test_empty_and_singleton(self):
        assert is_connected(OverlayGraph())
        assert largest_component_fraction(OverlayGraph()) == 0.0
        assert is_connected(OverlayGraph(nodes=[0]))

    def test_margin_small_graphs(self):
        assert connectivity_margin(OverlayGraph()) == float("inf")
        assert connectivity_margin(OverlayGraph(nodes=[0])) == float("inf")

    def test_margin_value(self):
        g = ring_lattice(100, k=2)  # degree 4, log10(100)=2
        assert connectivity_margin(g) == pytest.approx(2.0)


class TestPowerlaw:
    def test_exponent_on_scale_free(self, sf_graph):
        gamma = powerlaw_exponent(sf_graph, d_min=3)
        assert 2.0 < gamma < 4.5

    def test_requires_enough_nodes(self):
        g = OverlayGraph(nodes=[0, 1], edges=[(0, 1)])
        with pytest.raises(ValueError):
            powerlaw_exponent(g, d_min=3)

    def test_exponent_increases_for_tighter_distribution(self):
        # A regular graph has no tail above its own degree: fitting at
        # d_min = degree yields a far larger exponent than a genuinely
        # heavy-tailed graph fit at its minimum degree.
        regular = ring_lattice(2_000, k=3)  # all degree 6
        heavy = scale_free(2_000, m=3, rng=8)
        assert powerlaw_exponent(regular, d_min=6) > 2 * powerlaw_exponent(heavy, d_min=3)
