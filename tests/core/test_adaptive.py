"""Tests for adaptive parameter selection and the self-tuning monitor."""

from __future__ import annotations

import math

import pytest

from repro.churn.models import growing_trace
from repro.churn.scheduler import ChurnScheduler
from repro.core.adaptive import (
    AdaptiveMonitor,
    choose_l,
    choose_l_for_budget,
    plan_estimation,
)
from repro.overlay.builders import heterogeneous_random


class TestChooseL:
    def test_paper_configurations(self):
        # l=200 <-> ~7% relative std; l=10 <-> ~32%.
        assert choose_l(0.0708) == 200
        assert choose_l(0.317) == 10

    def test_monotone(self):
        assert choose_l(0.05) > choose_l(0.1) > choose_l(0.3)

    def test_inverse_identity(self):
        for target in (0.05, 0.1, 0.2):
            l = choose_l(target)
            assert 1.0 / math.sqrt(l) <= target

    def test_bounds(self):
        with pytest.raises(ValueError):
            choose_l(0.0)
        with pytest.raises(ValueError):
            choose_l(-0.1)
        with pytest.raises(ValueError):
            choose_l(0.0001, l_max=100)


class TestChooseLForBudget:
    def test_table1_configuration(self):
        # The paper's 480k messages at N=100k funds approximately l=200.
        l = choose_l_for_budget(480_000, size_hint=100_000)
        assert 150 <= l <= 260

    def test_fig18_configuration(self):
        # ~100k messages at N=100k funds approximately l=10.
        l = choose_l_for_budget(100_000, size_hint=100_000)
        assert 5 <= l <= 15

    def test_monotone_in_budget(self):
        assert choose_l_for_budget(10**6, 10**5) > choose_l_for_budget(10**5, 10**5)

    def test_budget_too_small(self):
        with pytest.raises(ValueError, match="cannot fund"):
            choose_l_for_budget(10, size_hint=100_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            choose_l_for_budget(0, 100)
        with pytest.raises(ValueError):
            choose_l_for_budget(100, 0)


class TestPlanEstimation:
    def test_loose_target_prefers_sample_collide(self):
        plan = plan_estimation(size_hint=100_000, target_rel_error=0.1)
        assert plan.algorithm == "sample_collide"
        assert plan.parameters["l"] == 100
        assert plan.projected_messages < 2 * 100_000 * 50

    def test_tight_target_prefers_aggregation(self):
        # at 0.1% the required l makes S&C dearer than 50 rounds of gossip
        plan = plan_estimation(size_hint=100_000, target_rel_error=0.001)
        assert plan.algorithm == "aggregation"
        assert plan.projected_rel_error == 0.0

    def test_crossover_moves_with_n(self):
        # Aggregation costs Θ(N) while S&C costs Θ(sqrt(N)): for a fixed
        # target, bigger overlays favour S&C.
        small = plan_estimation(size_hint=2_000, target_rel_error=0.02)
        big = plan_estimation(size_hint=10_000_000, target_rel_error=0.02)
        assert big.algorithm == "sample_collide"
        # the rationale strings document the decision
        assert "msgs" in small.rationale

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_estimation(0, 0.1)
        with pytest.raises(ValueError):
            plan_estimation(100, 0.0)
        with pytest.raises(ValueError):
            plan_estimation(100, 1.5)


class TestAdaptiveMonitor:
    def test_probes_accumulate(self, het_graph):
        monitor = AdaptiveMonitor(het_graph, target_rel_std=0.15, rng=1)
        ests = monitor.probe_many(5)
        assert len(ests) == len(monitor.history) == 5
        assert monitor.total_cost() == sum(e.messages for e in ests)

    def test_accuracy_target_met(self, het_graph):
        monitor = AdaptiveMonitor(het_graph, target_rel_std=0.1, rng=2)
        monitor.probe_many(12)
        assert monitor.current_estimate == pytest.approx(het_graph.size, rel=0.12)

    def test_l_derived_from_target(self, het_graph):
        assert AdaptiveMonitor(het_graph, target_rel_std=0.1, rng=3).l == 100
        assert AdaptiveMonitor(het_graph, target_rel_std=0.32, rng=3).l == 10

    def test_tracks_growth(self):
        g = heterogeneous_random(1_000, rng=4)
        monitor = AdaptiveMonitor(g, target_rel_std=0.1, window=5, rng=5)
        trace = growing_trace(1_000, 1.0, start=1, end=10, steps=10)  # double it
        sched = ChurnScheduler(g, trace, rng=6)
        for i in range(1, 11):
            sched.advance_to(i)
            monitor.probe()
        for _ in range(5):  # settle the window on the final size
            monitor.probe()
        assert monitor.current_estimate == pytest.approx(2_000, rel=0.15)

    def test_probe_many_validation(self, het_graph):
        monitor = AdaptiveMonitor(het_graph, rng=7)
        with pytest.raises(ValueError):
            monitor.probe_many(-1)
