"""Tests for the birthday-paradox mathematics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.birthday import (
    collision_probability,
    expected_collisions,
    expected_draws_for_collisions,
    expected_first_collision,
    first_collision_pmf,
    invert_first_collision,
    relative_std,
    sample_collide_estimate,
)


class TestCollisionProbability:
    def test_classic_birthday_23(self):
        # The paper's motivating fact: 23 people, 365 days => p >= 1/2.
        assert collision_probability(365, 23) >= 0.5
        assert collision_probability(365, 22) < 0.5

    def test_boundaries(self):
        assert collision_probability(100, 0) == 0.0
        assert collision_probability(100, 1) == 0.0
        assert collision_probability(100, 101) == 1.0

    def test_two_draws(self):
        assert collision_probability(4, 2) == pytest.approx(0.25)

    def test_exhausts_to_one(self):
        assert collision_probability(5, 6) == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            collision_probability(0, 5)
        with pytest.raises(ValueError):
            collision_probability(10, -1)

    @given(st.integers(1, 10_000), st.integers(0, 200))
    @settings(max_examples=200, deadline=None)
    def test_is_probability(self, n, k):
        p = collision_probability(n, k)
        assert 0.0 <= p <= 1.0

    @given(st.integers(2, 5_000), st.integers(2, 100))
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_k(self, n, k):
        assert collision_probability(n, k) <= collision_probability(n, k + 1) + 1e-12

    @given(st.integers(2, 2_000), st.integers(2, 60))
    @settings(max_examples=200, deadline=None)
    def test_monotone_decreasing_in_n(self, n, k):
        assert collision_probability(n, k) + 1e-12 >= collision_probability(n + 1, k)


class TestFirstCollisionPmf:
    def test_matches_difference_identity(self):
        # The paper's §III-A identity: P[X=K] = p(N,K) - p(N,K-1).
        for k in range(2, 30):
            expect = collision_probability(50, k) - collision_probability(50, k - 1)
            assert first_collision_pmf(50, k) == pytest.approx(expect)

    def test_zero_below_two(self):
        assert first_collision_pmf(10, 0) == 0.0
        assert first_collision_pmf(10, 1) == 0.0

    def test_sums_to_one(self):
        n = 40
        total = sum(first_collision_pmf(n, k) for k in range(2, n + 2))
        assert total == pytest.approx(1.0, abs=1e-9)


class TestExpectedFirstCollision:
    def test_exact_small_case(self):
        # n=2: X=2 w.p. 1/2, X=3 w.p. 1/2 => E[X] = 2.5
        assert expected_first_collision(2) == pytest.approx(2.5)

    def test_matches_pmf_expectation(self):
        n = 60
        via_pmf = sum(k * first_collision_pmf(n, k) for k in range(2, n + 2))
        assert expected_first_collision(n) == pytest.approx(via_pmf, rel=1e-6)

    def test_asymptotic_branch_agrees(self):
        # At the crossover the exact sum and sqrt(pi n/2)+2/3 agree closely.
        n = 50_000
        exact = expected_first_collision(n, exact_limit=100_000)
        asym = expected_first_collision(n, exact_limit=10)
        assert asym == pytest.approx(exact, rel=0.005)

    def test_sqrt_scaling(self):
        assert expected_first_collision(40_000) == pytest.approx(
            2 * expected_first_collision(10_000), rel=0.02
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            expected_first_collision(0)


class TestEstimators:
    def test_invert_first_collision(self):
        assert invert_first_collision(10) == 50.0

    def test_invert_requires_two(self):
        with pytest.raises(ValueError):
            invert_first_collision(1)

    def test_expected_collisions_identity(self):
        assert expected_collisions(100, 10) == pytest.approx(0.45)

    def test_draws_inverts_collisions(self):
        n, l = 5_000, 37
        c = expected_draws_for_collisions(n, l)
        assert expected_collisions(n, int(round(c))) == pytest.approx(l, rel=0.05)

    def test_sample_collide_estimate_roundtrip(self):
        # With C = sqrt(2 l N) draws, the estimate recovers N.
        n, l = 20_000, 200
        c = int(round(math.sqrt(2 * l * n)))
        assert sample_collide_estimate(c, l) == pytest.approx(n, rel=0.05)

    def test_sample_collide_estimate_validation(self):
        with pytest.raises(ValueError):
            sample_collide_estimate(10, 0)
        with pytest.raises(ValueError):
            sample_collide_estimate(1, 1)

    def test_relative_std_values(self):
        assert relative_std(200) == pytest.approx(1 / math.sqrt(200))
        assert relative_std(10) == pytest.approx(0.316, rel=0.01)
        with pytest.raises(ValueError):
            relative_std(0)

    @given(st.integers(2, 10**6), st.integers(1, 1_000))
    @settings(max_examples=200, deadline=None)
    def test_estimator_positive(self, draws, l):
        assert sample_collide_estimate(draws, l) > 0

    @given(st.integers(1, 10**7), st.integers(1, 500))
    @settings(max_examples=200, deadline=None)
    def test_draws_monotone_in_both(self, n, l):
        assert expected_draws_for_collisions(n, l) <= expected_draws_for_collisions(n + 1, l)
        assert expected_draws_for_collisions(n, l) <= expected_draws_for_collisions(n, l + 1)
