"""Tests for the estimator base types."""

from __future__ import annotations

import pytest

from repro.core.base import Estimate, EstimatorError, SizeEstimator
from repro.overlay.graph import OverlayGraph
from repro.sim.messages import MessageMeter


class TestEstimate:
    def test_quality(self):
        est = Estimate(value=150.0, messages=10, algorithm="x")
        assert est.quality(100) == pytest.approx(150.0)

    def test_quality_invalid_true_size(self):
        est = Estimate(value=150.0, messages=10, algorithm="x")
        with pytest.raises(ValueError):
            est.quality(0)

    def test_meta_defaults_empty(self):
        est = Estimate(value=1.0, messages=0, algorithm="x")
        assert est.meta == {}

    def test_frozen(self):
        est = Estimate(value=1.0, messages=0, algorithm="x")
        with pytest.raises(AttributeError):
            est.value = 2.0


class _Constant(SizeEstimator):
    name = "constant"

    def estimate(self):
        self._require_nonempty()
        return Estimate(value=float(self.graph.size), messages=0, algorithm=self.name)


class TestSizeEstimatorBase:
    def test_subclass_machinery(self, small_het_graph):
        est = _Constant(small_het_graph, rng=1)
        assert est.estimate().value == small_het_graph.size

    def test_default_meter_created(self, small_het_graph):
        est = _Constant(small_het_graph, rng=1)
        assert isinstance(est.meter, MessageMeter)

    def test_shared_meter_used(self, small_het_graph):
        meter = MessageMeter()
        est = _Constant(small_het_graph, rng=1, meter=meter)
        assert est.meter is meter

    def test_require_nonempty(self):
        with pytest.raises(EstimatorError):
            _Constant(OverlayGraph(), rng=1).estimate()

    def test_abstract_cannot_instantiate(self, small_het_graph):
        with pytest.raises(TypeError):
            SizeEstimator(small_het_graph)  # type: ignore[abstract]
