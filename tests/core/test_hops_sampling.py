"""Tests for HopsSampling (minHopsReporting) and the gossipSample variant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import EstimatorError
from repro.core.hops_sampling import (
    GossipSampleEstimator,
    HopsSamplingEstimator,
    _gossip_spread,
)
from repro.overlay.builders import heterogeneous_random
from repro.overlay.graph import OverlayGraph
from repro.sim.messages import MessageKind, MessageMeter


class TestSpread:
    def test_coverage_band(self, het_graph):
        # Fanout 2 with one duplicate-triggered re-gossip reaches most but
        # not all of the overlay — the paper measured ≈89%.
        view = het_graph.csr()
        rng = np.random.default_rng(1)
        spread = _gossip_spread(view, 0, gossip_to=2, gossip_for=1, gossip_until=1, rng=rng)
        assert 0.80 <= spread.coverage() <= 0.99

    def test_initiator_at_distance_zero(self, small_het_graph):
        view = small_het_graph.csr()
        spread = _gossip_spread(view, 5, 2, 1, 1, np.random.default_rng(2))
        assert spread.hops[5] == 0

    def test_recorded_distances_bounded_by_bfs_below(self, small_het_graph):
        # Gossip paths are never shorter than shortest paths.
        view = small_het_graph.csr()
        spread = _gossip_spread(view, 0, 2, 1, 1, np.random.default_rng(3))
        bfs = view.bfs_distances(0)
        reached = spread.hops >= 0
        assert (spread.hops[reached] >= bfs[reached]).all()

    def test_higher_fanout_improves_coverage(self, het_graph):
        view = het_graph.csr()
        c2 = _gossip_spread(view, 0, 2, 1, 1, np.random.default_rng(4)).coverage()
        c5 = _gossip_spread(view, 0, 5, 1, 1, np.random.default_rng(4)).coverage()
        assert c5 > c2

    def test_message_count_tracks_fanout(self, het_graph):
        view = het_graph.csr()
        s = _gossip_spread(view, 0, 2, 1, 1, np.random.default_rng(5))
        # every informed node sends gossip_to messages at least once
        assert s.spread_messages >= 2 * 0.8 * s.reached
        assert s.spread_messages <= 5 * view.n

    def test_single_node_spread(self):
        g = OverlayGraph(nodes=[0])
        view = g.csr()
        s = _gossip_spread(view, 0, 2, 1, 1, np.random.default_rng(6))
        assert s.reached == 1
        assert s.spread_messages == 0


class TestEstimator:
    def test_positive_estimate(self, het_graph):
        est = HopsSamplingEstimator(het_graph, rng=1).estimate()
        assert est.value > 0
        assert est.algorithm == "hops_sampling"

    def test_under_estimation_bias(self, het_graph):
        # The paper's signature finding: consistent under-estimation from
        # unreached nodes.
        quals = [
            HopsSamplingEstimator(het_graph, rng=100 + s).estimate().quality(het_graph.size)
            for s in range(20)
        ]
        assert np.mean(quals) < 100.0
        assert np.mean(quals) > 60.0

    def test_oracle_distances_remove_bias(self, het_graph):
        # §V verification: exact distances => unbiased estimate.
        quals = [
            HopsSamplingEstimator(het_graph, rng=200 + s, oracle_distances=True)
            .estimate()
            .quality(het_graph.size)
            for s in range(20)
        ]
        assert np.mean(quals) == pytest.approx(100.0, abs=6)

    def test_estimate_tracks_reached_count(self, het_graph):
        # Unbiased w.r.t. the reached population: over repetitions, the mean
        # estimate matches the mean number of reached nodes.
        ests, reached = [], []
        for s in range(20):
            e = HopsSamplingEstimator(het_graph, rng=300 + s).estimate()
            ests.append(e.value)
            reached.append(e.meta["reached"])
        assert np.mean(ests) == pytest.approx(np.mean(reached), rel=0.1)

    def test_meta_fields(self, het_graph):
        est = HopsSamplingEstimator(het_graph, rng=2).estimate()
        for key in ("reached", "coverage", "replies", "spread_rounds", "initiator"):
            assert key in est.meta

    def test_min_hops_zero_still_works(self, small_het_graph):
        est = HopsSamplingEstimator(small_het_graph, min_hops_reporting=0, rng=3).estimate()
        assert est.value > 0

    def test_large_min_hops_replies_from_everyone_reached(self, small_het_graph):
        est = HopsSamplingEstimator(small_het_graph, min_hops_reporting=100, rng=4).estimate()
        # everyone reached replies with probability 1
        assert est.meta["replies"] == est.meta["reached"] - 1
        assert est.value == pytest.approx(est.meta["reached"])

    def test_fixed_initiator(self, small_het_graph):
        init = small_het_graph.random_node(0)
        est = HopsSamplingEstimator(small_het_graph, initiator=init, rng=5).estimate()
        assert est.meta["initiator"] == init

    def test_departed_initiator_rejected(self):
        g = heterogeneous_random(100, rng=6)
        est = HopsSamplingEstimator(g, initiator=0, rng=6)
        g.remove_node(0)
        with pytest.raises(EstimatorError):
            est.estimate()

    def test_empty_overlay_rejected(self):
        with pytest.raises(EstimatorError):
            HopsSamplingEstimator(OverlayGraph()).estimate()

    def test_parameter_validation(self, small_het_graph):
        with pytest.raises(ValueError):
            HopsSamplingEstimator(small_het_graph, gossip_to=0)
        with pytest.raises(ValueError):
            HopsSamplingEstimator(small_het_graph, gossip_for=0)
        with pytest.raises(ValueError):
            HopsSamplingEstimator(small_het_graph, gossip_until=0)
        with pytest.raises(ValueError):
            HopsSamplingEstimator(small_het_graph, min_hops_reporting=-1)

    def test_deterministic(self, small_het_graph):
        a = HopsSamplingEstimator(small_het_graph, rng=9).estimate()
        b = HopsSamplingEstimator(small_het_graph, rng=9).estimate()
        assert a.value == b.value

    def test_single_node_overlay(self):
        g = OverlayGraph(nodes=[0])
        est = HopsSamplingEstimator(g, rng=1).estimate()
        assert est.value == 1.0


class TestOverhead:
    def test_messages_are_spread_plus_replies(self, het_graph):
        meter = MessageMeter()
        est = HopsSamplingEstimator(het_graph, rng=11, meter=meter).estimate()
        assert est.messages == meter.count(MessageKind.SPREAD) + meter.count(
            MessageKind.REPLY
        )
        assert meter.count(MessageKind.REPLY) == est.meta["replies"]

    def test_overhead_theta_n(self):
        small = heterogeneous_random(500, rng=12)
        big = heterogeneous_random(2_000, rng=13)
        m_small = np.mean(
            [HopsSamplingEstimator(small, rng=s).estimate().messages for s in range(6)]
        )
        m_big = np.mean(
            [HopsSamplingEstimator(big, rng=s).estimate().messages for s in range(6)]
        )
        assert m_big / m_small == pytest.approx(4.0, rel=0.3)


class TestGossipSample:
    def test_positive_estimate(self, het_graph):
        est = GossipSampleEstimator(het_graph, rng=1).estimate()
        assert est.value > 0
        assert est.algorithm == "gossip_sample"

    def test_tracks_reached_population(self, het_graph):
        ests, reached = [], []
        for s in range(20):
            e = GossipSampleEstimator(het_graph, reply_probability=0.1, rng=s).estimate()
            ests.append(e.value)
            reached.append(e.meta["reached"])
        assert np.mean(ests) == pytest.approx(np.mean(reached), rel=0.15)

    def test_noisier_than_min_hops_at_small_p(self, het_graph):
        gs = [
            GossipSampleEstimator(het_graph, reply_probability=0.01, rng=s)
            .estimate()
            .value
            for s in range(20)
        ]
        mh = [
            HopsSamplingEstimator(het_graph, rng=s).estimate().value for s in range(20)
        ]
        assert np.std(gs) > np.std(mh)

    def test_reply_probability_validation(self, small_het_graph):
        with pytest.raises(ValueError):
            GossipSampleEstimator(small_het_graph, reply_probability=0.0)
        with pytest.raises(ValueError):
            GossipSampleEstimator(small_het_graph, reply_probability=1.5)

    def test_departed_initiator(self):
        g = heterogeneous_random(80, rng=3)
        est = GossipSampleEstimator(g, initiator=0, rng=3)
        g.remove_node(0)
        with pytest.raises(EstimatorError):
            est.estimate()

    def test_empty_overlay(self):
        with pytest.raises(EstimatorError):
            GossipSampleEstimator(OverlayGraph()).estimate()
