"""Distributional equivalence of the array-kernel backend with the reference.

The statistical half of the backend cross-validation gate
(``docs/KERNELS.md``): the batched kernels of :mod:`repro.core.kernels`
consume RNG output in a different order and quantity than the serial
reference, so their estimates are *not* bit-identical — they must instead
be exchangeable samples of the same estimator law.  Fixed-seed ensembles
are compared with the shared :mod:`statcheck` gates (two-sample KS +
bootstrap-CI overlap) under the tolerances recorded in
``baselines/kernel_tolerances.json``.

Also covered here: exact unit semantics of the kernels themselves
(pairwise collision counting vs a naive reference, walker edge cases) and
worker-count bit-identity of array-backend batches (the runtime
determinism contract extends to the new backend, since trial randomness
still derives from ``(hub_seed, index)`` alone).
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest
import statcheck

from repro.churn.models import shrinking_trace
from repro.core.hops_sampling import HopsSamplingEstimator
from repro.core.kernels import (
    GRAPH_BACKENDS,
    advance_walkers,
    bfs_frontier_distances,
    collision_cutoff,
)
from repro.core.sample_collide import SampleCollideEstimator
from repro.core.sampling import UniformWalkSampler
from repro.overlay.graph import OverlayGraph
from repro.runtime import (
    EstimatorSpec,
    OverlaySpec,
    TrialSpec,
    run_trials,
    trace_to_payload,
)
from repro.runtime.api import RuntimeOptions
from repro.runtime.trials import BACKEND_KINDS, apply_graph_backend

TOLERANCES = json.loads(
    (pathlib.Path(__file__).resolve().parents[2] / "baselines" / "kernel_tolerances.json")
    .read_text()
)
SEED_BASE = TOLERANCES["seed_base"]
ENSEMBLE = TOLERANCES["ensemble_size"]


def _ensemble(make_estimator, backend: str) -> np.ndarray:
    values = []
    for k in range(ENSEMBLE):
        est = make_estimator(np.random.default_rng(SEED_BASE + k), backend)
        values.append(float(est.estimate().value))
    return np.asarray(values)


class TestEstimatorDistributions:
    def test_sample_collide_backends_agree(self, small_het_graph):
        tol = TOLERANCES["sample_collide"]

        def make(rng, backend):
            return SampleCollideEstimator(
                small_het_graph,
                l=tol["l"],
                timer=tol["timer"],
                rng=rng,
                backend=backend,
            )

        statcheck.assert_distributions_close(
            _ensemble(make, "dict"),
            _ensemble(make, "array"),
            ks_alpha=tol["ks_alpha"],
            ci_level=tol["ci_level"],
            label="sample_collide dict vs array",
        )

    def test_hops_sampling_backends_agree(self, small_het_graph):
        tol = TOLERANCES["hops_sampling"]

        def make(rng, backend):
            return HopsSamplingEstimator(small_het_graph, rng=rng, backend=backend)

        statcheck.assert_distributions_close(
            _ensemble(make, "dict"),
            _ensemble(make, "array"),
            ks_alpha=tol["ks_alpha"],
            ci_level=tol["ci_level"],
            label="hops_sampling dict vs array",
        )

    def test_walker_samples_match_serial_sampler(self, small_het_graph):
        # Below the estimator: the raw sample law of the batched walkers
        # must match UniformWalkSampler draw-for-law (not draw-for-draw).
        view = small_het_graph.to_array()
        initiator = next(iter(small_het_graph))
        init_pos = view.position_of[initiator]
        serial = UniformWalkSampler(
            small_het_graph, timer=5.0, rng=np.random.default_rng(SEED_BASE)
        )
        dict_samples = serial.sample_batch(initiator, 1500, meter=None).samples
        pos, _hops = advance_walkers(
            view, init_pos, 1500, 5.0, np.random.default_rng(SEED_BASE + 1)
        )
        array_samples = view.nodes[pos]
        statcheck.assert_distributions_close(
            np.asarray(dict_samples, dtype=float),
            array_samples.astype(float),
            ks_alpha=0.005,
            ci_level=0.99,
            label="walker sample law",
        )


class TestCollisionCutoff:
    def _naive(self, samples, l):
        seen = {}
        collisions = 0
        for i, s in enumerate(samples):
            copies = seen.get(s, 0)
            seen[s] = copies + 1
            collisions += copies
            if collisions >= l:
                return i + 1, collisions, len(seen)
        return len(samples), collisions, len(seen)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_naive_reference(self, seed):
        rng = np.random.default_rng(seed)
        samples = rng.integers(0, 40, size=300)
        for l in (1, 5, 25, 10_000):
            naive = self._naive(samples.tolist(), l)
            assert collision_cutoff(samples, l) == naive

    def test_empty(self):
        assert collision_cutoff(np.zeros(0, dtype=np.int64), 5) == (0, 0, 0)

    def test_no_collisions(self):
        out = collision_cutoff(np.arange(10), 3)
        assert out == (10, 0, 10)

    def test_multiplicity_counting(self):
        # Four equal draws = 0+1+2+3 = 6 pairwise collisions.
        samples = np.array([7, 7, 7, 7])
        assert collision_cutoff(samples, 6) == (4, 6, 1)
        assert collision_cutoff(samples, 2) == (3, 3, 1)


class TestWalkerSemantics:
    def test_isolated_initiator_returns_self(self):
        g = OverlayGraph(nodes=[0, 1, 2], edges=[(1, 2)])
        view = g.to_array()
        pos, hops = advance_walkers(
            view, view.position_of[0], 8, 10.0, np.random.default_rng(0)
        )
        assert (pos == view.position_of[0]).all()
        assert (hops == 0).all()

    def test_dead_end_absorbs_walks(self):
        # 0-1 only: every walk from 0 hops to 1... and back, forever
        # budget allows; a *pendant* on a path can terminate anywhere.
        g = OverlayGraph(nodes=[0, 1], edges=[(0, 1)])
        view = g.to_array()
        pos, hops = advance_walkers(
            view, view.position_of[0], 16, 3.0, np.random.default_rng(1)
        )
        assert set(pos.tolist()) <= {view.position_of[0], view.position_of[1]}
        assert (hops >= 1).all()

    def test_max_hops_stops_in_place(self, tiny_graph):
        view = tiny_graph.to_array()
        _pos, hops = advance_walkers(
            view, 0, 32, 1e9, np.random.default_rng(2), max_hops=5
        )
        assert (hops <= 5).all()
        assert (hops == 5).any()

    def test_zero_walkers(self, tiny_graph):
        view = tiny_graph.to_array()
        pos, hops = advance_walkers(view, 0, 0, 10.0, np.random.default_rng(3))
        assert pos.size == 0 and hops.size == 0

    def test_bfs_matches_csr_reference(self, small_het_graph):
        view = small_het_graph.to_array()
        csr = small_het_graph.csr()
        src_id = int(view.nodes[0])
        ours = bfs_frontier_distances(view, 0)
        theirs = csr.bfs_distances(csr.index_of[src_id])
        # Same distance *multiset* and same per-node distances under the
        # id translation (row orders differ between the two views).
        by_id_ours = {int(view.nodes[i]): int(d) for i, d in enumerate(ours)}
        by_id_theirs = {int(csr.nodes[i]): int(d) for i, d in enumerate(theirs)}
        assert by_id_ours == by_id_theirs


class TestRuntimeIntegration:
    def _specs(self, backend=None, count=8, n=250):
        trace = shrinking_trace(n, 0.4, start=1.0, end=float(count), steps=count - 1)
        params = {
            "trace": trace_to_payload(trace),
            "time_per_estimation": 1.0,
            "max_degree": 10,
        }
        specs = [
            TrialSpec(
                "multi_probe",
                41,
                i,
                overlay=OverlaySpec.heterogeneous(n),
                estimator=EstimatorSpec.sample_collide(l=20, timer=5.0),
                params=params,
                stream=k,
            )
            for i in range(1, count + 1)
            for k in range(2)
        ]
        if backend is not None:
            specs = apply_graph_backend(specs, backend)
        return specs

    def test_backend_kinds_registry(self):
        assert BACKEND_KINDS == {"sample_collide", "hops_sampling"}
        assert GRAPH_BACKENDS == ("dict", "array")

    def test_apply_dict_backend_is_identity(self):
        specs = self._specs()
        assert apply_graph_backend(specs, "dict") == specs

    def test_apply_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            apply_graph_backend(self._specs(), "gpu")

    def test_backend_perturbs_content_address(self):
        from repro.runtime.api import batch_config
        from repro.runtime.store import content_key

        plain = content_key(batch_config(self._specs()))
        array = content_key(batch_config(self._specs(backend="array")))
        assert plain != array
        # "dict" is never recorded, keeping historical addresses stable.
        assert content_key(batch_config(self._specs(backend="dict"))) == plain

    def test_array_backend_worker_count_invariance(self):
        specs = self._specs(backend="array")
        serial = run_trials(specs, runtime=RuntimeOptions(workers=1))
        parallel = run_trials(
            specs, runtime=RuntimeOptions(workers=4, chunk_size=4)
        )
        assert [(r.index, r.stream, r.value, r.true_size) for r in serial] == [
            (r.index, r.stream, r.value, r.true_size) for r in parallel
        ]

    def test_graph_backend_runtime_option_applies(self):
        specs = self._specs()
        via_option = run_trials(
            specs, runtime=RuntimeOptions(graph_backend="array")
        )
        explicit = run_trials(self._specs(backend="array"), runtime=None)
        assert [r.value for r in via_option] == [r.value for r in explicit]
        # And the array results genuinely differ from the dict lineage.
        dict_results = run_trials(specs, runtime=None)
        assert [r.value for r in via_option] != [r.value for r in dict_results]
