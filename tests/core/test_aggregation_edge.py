"""Edge-path tests for AggregationProtocol left uncovered by the main suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregation import AggregationProtocol
from repro.core.base import EstimatorError
from repro.overlay.builders import heterogeneous_random
from repro.overlay.graph import OverlayGraph


class TestReadPaths:
    def test_value_of_unknown_node(self, small_het_graph):
        proto = AggregationProtocol(small_het_graph, rng=1)
        proto.start_epoch()
        with pytest.raises(EstimatorError, match="not alive"):
            proto.value_of(10**9)

    def test_value_of_alive_but_unprojected_joiner(self, small_het_graph):
        # a node that joined after epoch start but before any round has no
        # value yet; value_of must say "not participating", not crash
        proto = AggregationProtocol(small_het_graph, rng=1)
        proto.start_epoch()
        newcomer = small_het_graph.add_node()
        with pytest.raises(EstimatorError, match="not participating"):
            proto.value_of(newcomer)
        small_het_graph.remove_node(newcomer)  # restore the shared fixture

    def test_read_explicit_node(self, small_het_graph):
        proto = AggregationProtocol(small_het_graph, rng=2)
        proto.start_epoch()
        proto.run_rounds(40)
        node = small_het_graph.random_node(3)
        est = proto.read(node=node)
        assert est.meta["read_node"] == node

    def test_read_all_marks_unreached_as_inf(self):
        g = OverlayGraph(nodes=[0, 1, 2], edges=[(0, 1)])
        proto = AggregationProtocol(g, rng=4)
        proto.start_epoch(initiator=0)
        proto.run_rounds(5)
        ests = proto.read_all()
        view = g.csr()
        assert np.isinf(ests[view.index_of[2]])
        assert np.isfinite(ests[view.index_of[0]])

    def test_best_informed_fallback_requires_alive_participant(self):
        g = heterogeneous_random(20, rng=5)
        proto = AggregationProtocol(g, rng=6)
        proto.start_epoch()
        for u in list(g.nodes()):
            g.remove_node(u)
        with pytest.raises(EstimatorError):
            proto.read()

    def test_run_round_on_emptied_overlay(self):
        g = heterogeneous_random(10, rng=7)
        proto = AggregationProtocol(g, rng=8)
        proto.start_epoch()
        for u in list(g.nodes()):
            g.remove_node(u)
        assert proto.run_round() == 0

    def test_isolated_nodes_do_not_contact(self):
        g = OverlayGraph(nodes=[0, 1, 2])  # no edges at all
        proto = AggregationProtocol(g, rng=9)
        proto.start_epoch(initiator=0)
        contacts = proto.run_round()
        assert contacts == 0
        # initiator keeps the whole mass
        assert proto.value_of(0) == 1.0

    def test_estimate_meta_round_count(self, small_het_graph):
        proto = AggregationProtocol(small_het_graph, rng=10)
        est = proto.estimate(rounds=7)
        assert est.meta["rounds"] == 7
        assert est.meta["epoch"] == 1

    def test_second_epoch_resets_values(self, small_het_graph):
        proto = AggregationProtocol(small_het_graph, rng=11)
        proto.start_epoch()
        proto.run_rounds(20)
        proto.start_epoch()
        assert proto.total_mass() == pytest.approx(1.0)
        assert proto.rounds_in_epoch == 0
