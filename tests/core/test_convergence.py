"""Tests for the analytic convergence models vs measured behaviour."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.aggregation import AggregationProtocol
from repro.core.convergence import (
    IDEAL_CONTRACTION,
    aggregation_contraction_rate,
    aggregation_rounds_needed,
    epidemic_fixed_point,
    epidemic_rounds_to_saturation,
    sample_collide_expected_messages,
    sample_collide_expected_samples,
)
from repro.core.hops_sampling import HopsSamplingEstimator
from repro.core.sample_collide import SampleCollideEstimator
from repro.overlay.builders import heterogeneous_random


class TestAggregationModel:
    def test_paper_pair(self):
        # The paper's observation: ~40 rounds at 1e5, ~50 at 1e6 (plot
        # resolution ±5); the rho=0.5 model brackets both.
        r_100k = aggregation_rounds_needed(100_000, eps=0.001)
        r_1m = aggregation_rounds_needed(1_000_000, eps=0.001)
        assert 32 <= r_100k <= 45
        assert 35 <= r_1m <= 55
        assert r_1m > r_100k

    def test_log_n_scaling(self):
        base = aggregation_rounds_needed(10_000)
        # multiplying N by rho^-1 = 2 adds exactly one round (log base 1/rho)
        assert aggregation_rounds_needed(20_000) == base + 1

    def test_rates(self):
        assert aggregation_contraction_rate(ideal=True) == IDEAL_CONTRACTION
        assert IDEAL_CONTRACTION == pytest.approx(1 / (2 * math.sqrt(math.e)))
        assert 0 < IDEAL_CONTRACTION < aggregation_contraction_rate() < 1

    def test_validation(self):
        with pytest.raises(ValueError):
            aggregation_rounds_needed(0)
        with pytest.raises(ValueError):
            aggregation_rounds_needed(10, eps=0.0)
        with pytest.raises(ValueError):
            aggregation_rounds_needed(10, rho=1.0)

    def test_measured_contraction_matches_rate(self):
        """Empirical per-round variance contraction on the paper's overlay
        sits near the model's rho=0.25 (and above the ideal 0.1839)."""
        g = heterogeneous_random(2_000, rng=1)
        proto = AggregationProtocol(g, rng=2)
        proto.start_epoch()
        proto.run_rounds(5)  # skip the spiky transient
        ratios = []
        prev = None
        for _ in range(10):
            proto.run_round()
            vals = np.array([proto.value_of(u) for u in g.nodes()])
            var = float(vals.var())
            if prev and prev > 0:
                ratios.append(var / prev)
            prev = var
        measured = float(np.mean(ratios))
        # above the ideal uniform-peer rate, in the neighbourhood of the
        # model's empirical rho=0.5
        assert IDEAL_CONTRACTION < measured < 0.65

    def test_prediction_matches_measured_convergence(self):
        g = heterogeneous_random(2_000, rng=3)
        proto = AggregationProtocol(g, rng=4)
        proto.start_epoch()
        predicted = aggregation_rounds_needed(2_000, eps=0.01)
        for r in range(1, 100):
            proto.run_round()
            if abs(proto.read().value - g.size) / g.size < 0.01:
                measured = r
                break
        else:  # pragma: no cover
            pytest.fail("never converged")
        assert abs(measured - predicted) <= 8


class TestEpidemicModel:
    def test_fixed_point_values(self):
        assert epidemic_fixed_point(1.0) == 0.0
        assert epidemic_fixed_point(0.5) == 0.0
        assert epidemic_fixed_point(2.0) == pytest.approx(0.7968, abs=0.001)
        assert epidemic_fixed_point(5.0) > 0.99

    def test_fixed_point_monotone(self):
        zs = [epidemic_fixed_point(c) for c in (1.5, 2.0, 3.0, 4.0)]
        assert zs == sorted(zs)

    def test_matches_measured_coverage(self):
        """Measured spread coverage implies an effective fanout between the
        raw 2 and 2 + gossip_until extra sends."""
        g = heterogeneous_random(3_000, rng=5)
        covs = [
            HopsSamplingEstimator(g, rng=s).estimate().meta["coverage"]
            for s in range(8)
        ]
        measured = float(np.mean(covs))
        assert epidemic_fixed_point(2.0) - 0.03 < measured < epidemic_fixed_point(3.2)

    def test_rounds_to_saturation(self):
        assert epidemic_rounds_to_saturation(100_000, 2.0) == pytest.approx(20, abs=2)
        with pytest.raises(ValueError):
            epidemic_rounds_to_saturation(100, 1.0)
        with pytest.raises(ValueError):
            epidemic_rounds_to_saturation(0, 2.0)

    def test_bounds_measured_spread_rounds(self):
        # Growth-phase prediction lower-bounds the measured quiescence
        # (which includes the re-gossip endgame) and stays within 4x.
        g = heterogeneous_random(3_000, rng=6)
        est = HopsSamplingEstimator(g, rng=7).estimate()
        predicted = epidemic_rounds_to_saturation(3_000, 2.4)
        assert predicted <= est.meta["spread_rounds"] <= 4 * predicted


class TestSampleCollideModel:
    def test_expected_samples(self):
        assert sample_collide_expected_samples(100_000, 200) == pytest.approx(6_325, abs=5)

    def test_table1_cell(self):
        msgs = sample_collide_expected_messages(100_000, 200)
        assert msgs == pytest.approx(480_000, rel=0.05)  # the paper's 0.5M

    def test_matches_measured_draws(self):
        g = heterogeneous_random(3_000, rng=8)
        draws = [
            SampleCollideEstimator(g, l=100, rng=s).estimate().meta["draws"]
            for s in range(8)
        ]
        predicted = sample_collide_expected_samples(3_000, 100)
        assert np.mean(draws) == pytest.approx(predicted, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_collide_expected_samples(0, 10)
        with pytest.raises(ValueError):
            sample_collide_expected_messages(100, 10, timer=0)
